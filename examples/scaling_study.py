"""Mini scaling study: regenerate the paper's Figures 12-13 at a chosen scale.

Run with ``python examples/scaling_study.py [n_rows]`` (default 16 384 rows).
Pass the paper's 524 288 rows for the full-size study (slow in pure Python).

Prints the strong- and weak-scaling communication-time series and the headline
speedups of the locality-aware collectives over standard Hypre communication,
mirroring Section 4.2 of the paper.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    run_strong_scaling,
    run_weak_scaling,
)


def main() -> int:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 16384
    config = ExperimentConfig(n_rows=n_rows, n_ranks=128,
                              scaling_ranks=(16, 32, 64, 128),
                              weak_rows_per_rank=128)
    print(f"Scaling study of the rotated anisotropic diffusion SpMV "
          f"({n_rows} rows, up to {max(config.scaling_ranks)} simulated ranks)\n")

    context = ExperimentContext.build(config)
    strong = run_strong_scaling(context)
    print(strong.to_table())
    print("\nStrong-scaling speedup over standard Hypre at the largest scale:")
    print(f"  partially optimized: "
          f"{strong.speedup_at_largest_scale('partially_optimized_neighbor'):.2f}x")
    print(f"  fully optimized:     "
          f"{strong.speedup_at_largest_scale('fully_optimized_neighbor'):.2f}x\n")

    weak = run_weak_scaling(config)
    print(weak.to_table())
    print("\nWeak-scaling speedup over standard Hypre at the largest scale:")
    print(f"  partially optimized: "
          f"{weak.speedup_at_largest_scale('partially_optimized_neighbor'):.2f}x")
    print(f"  fully optimized:     "
          f"{weak.speedup_at_largest_scale('fully_optimized_neighbor'):.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
