"""Locality-aware aggregation on a structured halo exchange.

Run with ``python examples/irregular_halo_exchange.py``.

This is the "simulation" workload of the paper's introduction: every rank on a
2-D process grid exchanges boundary layers with its four neighbours.  The
script compares the three collective variants on that pattern, executes the
partially optimized one on the simulated runtime while a traffic profiler
watches every message, and then cross-checks the observed per-locality traffic
against the planner's prediction — the planner and the functional runtime must
agree exactly.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.collectives import Variant, all_plans, neighbor_alltoallv_init
from repro.pattern import halo_exchange_pattern
from repro.pattern.builders import neighbor_lists
from repro.perfmodel import lassen_parameters
from repro.simmpi import SimWorld, TrafficProfiler, dist_graph_create_adjacent
from repro.topology import paper_mapping
from repro.utils import format_table


def main() -> int:
    grid = (8, 8)                      # 64 ranks on an 8x8 process grid
    n_ranks = grid[0] * grid[1]
    mapping = paper_mapping(n_ranks, ranks_per_node=16)
    pattern = halo_exchange_pattern(grid, points_per_cell=32)
    model = lassen_parameters()

    print(f"Halo exchange on an {grid[0]}x{grid[1]} process grid "
          f"({mapping.n_regions} nodes, 16 ranks each)")
    print(f"Pattern: {pattern.n_messages} messages, {pattern.total_bytes} bytes\n")

    plans = all_plans(pattern, mapping)
    rows = []
    for variant in (Variant.STANDARD, Variant.PARTIAL, Variant.FULL):
        plan = plans[variant]
        stats = plan.statistics()
        rows.append((variant.value, stats.max_global_messages,
                     stats.max_global_bytes, stats.max_local_messages,
                     f"{plan.modeled_time(model) * 1e6:.2f}"))
    print(format_table(
        ["variant", "max global msgs", "max global bytes", "max local msgs",
         "modeled time (us)"],
        rows, title="Halo exchange under each collective variant"))

    # Execute the partially optimized variant with a traffic profiler attached.
    profiler = TrafficProfiler(mapping)
    world = SimWorld(n_ranks, timeout=120, profiler=profiler)

    def program(comm):
        rank = comm.rank
        send_items = {d: pattern.send_items(rank, d).tolist()
                      for d in pattern.send_ranks(rank)}
        recv_items = {s: pattern.recv_items(rank, s).tolist()
                      for s in pattern.recv_ranks(rank)}
        sources, dests = neighbor_lists(pattern, rank)
        graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
        collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                             variant=Variant.PARTIAL)
        # Array-native exchange: owned values in, dense halo out.
        values = collective.owned_item_ids.astype("float64")
        return collective.exchange(values)

    world.run(program)

    observed_inter_region = len(profiler.inter_region_records())
    planned_inter_region = sum(
        1 for m in plans[Variant.PARTIAL].messages()
        if not mapping.same_region(m.src, m.dest))
    print("\nFunctional execution cross-check (partially optimized variant):")
    print(f"  inter-region messages observed by the profiler: {observed_inter_region}")
    print(f"  inter-region messages predicted by the planner:  {planned_inter_region}")
    assert observed_inter_region == planned_inter_region
    print("  planner and simulated runtime agree.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
