"""BoomerAMG-style solve of the paper's rotated anisotropic diffusion problem.

Run with ``python examples/amg_solve.py [grid]`` (default grid 128, i.e. a
128x128 = 16 384-row system distributed over 64 simulated ranks).

The script mirrors the paper's evaluation workload end to end: build the
operator, run the AMG setup phase, solve with V-cycles, and then analyse the
SpMV communication of every level, reporting which collective variant the
model-driven selection picks per level — the "simple performance measure" the
paper's conclusions call for.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro.amg import (
    BoomerAMGSolver,
    WorldAMGSolver,
    build_hierarchy,
    hierarchy_comm_profiles,
)
from repro.collectives import Variant, select_variant
from repro.perfmodel import lassen_parameters
from repro.sparse import ParCSRMatrix, RowPartition, rotated_anisotropic_diffusion
from repro.topology import paper_mapping
from repro.utils import format_table


def main() -> int:
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    n_ranks = 64
    n_rows = grid * grid
    print(f"Problem: rotated anisotropic diffusion, {grid}x{grid} grid "
          f"({n_rows} rows), epsilon=0.001, theta=45 degrees")
    print(f"Distribution: {n_ranks} simulated ranks, 16 per node\n")

    matrix = ParCSRMatrix(rotated_anisotropic_diffusion((grid, grid)),
                          RowPartition.even(n_rows, n_ranks))
    hierarchy = build_hierarchy(matrix)
    print(hierarchy.describe(), "\n")

    solver = BoomerAMGSolver(matrix, hierarchy=hierarchy)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n_rows)
    result = solver.solve(b, tol=1e-8, max_iterations=100)
    print(f"V-cycle solve: {result.iterations} iterations, "
          f"residual {result.final_residual:.3e} "
          f"(convergence factor {result.convergence_factor():.3f})\n")

    mapping = paper_mapping(n_ranks)

    # The same solve, world-stepped: every smoother sweep, residual SpMV,
    # grid transfer, and the coarse gather run through the batched exchange
    # engine — the distributed solve phase the paper times, executed.
    world_solver = WorldAMGSolver(matrix, mapping, hierarchy=hierarchy,
                                  variant=Variant.FULL)
    world_result = world_solver.solve(b, tol=1e-8, max_iterations=100)
    print(f"World-stepped solve (fully optimized collectives): "
          f"{world_result.iterations} iterations, "
          f"residual {world_result.final_residual:.3e} — "
          f"matches the sequential solver to "
          f"{np.max(np.abs(world_result.solution - result.solution)):.1e}\n")

    model = lassen_parameters()
    profiles = hierarchy_comm_profiles(hierarchy, mapping, model=model)

    rows = []
    for profile in profiles:
        selection = select_variant(profile.pattern, mapping, model,
                                   expected_iterations=result.iterations or 100)
        std = profile.statistics[Variant.STANDARD]
        rows.append((profile.level, profile.n_rows,
                     std.max_global_messages,
                     profile.statistics[Variant.PARTIAL].max_global_messages,
                     f"{profile.times[Variant.STANDARD] * 1e6:.2f}",
                     f"{profile.times[Variant.FULL] * 1e6:.2f}",
                     selection.variant.value))
    print(format_table(
        ["level", "rows", "std global msgs", "opt global msgs",
         "standard time (us)", "full time (us)", "selected variant"],
        rows, title="Per-level SpMV communication and dynamic selection"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
