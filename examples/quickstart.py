"""Quickstart: plan, analyse, and execute a locality-aware neighborhood collective.

Run with ``python examples/quickstart.py``.

The script builds a random irregular communication pattern on 32 simulated
ranks (4 nodes x 8 ranks), plans the three collective variants the paper
compares, prints their message statistics and modeled Start+Wait times, and
finally executes the fully optimized variant on the simulated MPI runtime to
show that it delivers exactly the same values as plain point-to-point.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro.collectives import Variant, all_plans, neighbor_alltoallv_init
from repro.pattern import random_pattern, pattern_statistics
from repro.pattern.builders import neighbor_lists
from repro.perfmodel import lassen_parameters
from repro.simmpi import dist_graph_create_adjacent, run_spmd
from repro.topology import paper_mapping
from repro.utils import format_table


def main() -> int:
    n_ranks = 32
    mapping = paper_mapping(n_ranks, ranks_per_node=8)
    pattern = random_pattern(n_ranks, avg_neighbors=8, avg_items_per_message=16,
                             duplicate_fraction=0.5, seed=7)
    model = lassen_parameters(active_per_node=8)

    print(f"Machine: {mapping.describe()}")
    print(f"Pattern: {pattern.n_messages} point-to-point messages, "
          f"{pattern.total_items} values ({pattern.total_bytes} bytes)\n")

    # 1. Plan every variant and compare them.
    plans = all_plans(pattern, mapping)
    rows = []
    for variant in (Variant.STANDARD, Variant.PARTIAL, Variant.FULL):
        plan = plans[variant]
        plan.validate()
        stats = plan.statistics()
        rows.append((variant.value,
                     plan.n_messages,
                     stats.max_local_messages,
                     stats.max_global_messages,
                     stats.max_global_bytes,
                     f"{plan.modeled_time(model) * 1e6:.2f}"))
    print(format_table(
        ["variant", "total msgs", "max local msgs", "max global msgs",
         "max global bytes", "modeled time (us)"],
        rows, title="Collective variants on one irregular pattern"))

    # 2. Execute the fully optimized variant on the simulated runtime and
    #    verify it against the pattern.  The exchange is array-native: a dense
    #    vector of owned values goes in, a dense halo comes out, and the
    #    collective's index metadata says which item each slot is.
    def program(comm):
        rank = comm.rank
        send_items = {d: pattern.send_items(rank, d).tolist()
                      for d in pattern.send_ranks(rank)}
        recv_items = {s: pattern.recv_items(rank, s).tolist()
                      for s in pattern.recv_ranks(rank)}
        sources, dests = neighbor_lists(pattern, rank)
        graph = dist_graph_create_adjacent(comm, sources, dests)
        collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                             variant=Variant.FULL)
        values = 100.0 * rank + collective.owned_item_ids.astype(np.float64)
        received = collective.exchange(values)
        expected = 100.0 * collective.recv_item_sources \
            + collective.recv_item_ids
        assert np.array_equal(received, expected.astype(np.float64))
        return len(received)

    received_counts = run_spmd(n_ranks, program, timeout=120)
    print("\nFunctional execution on the simulated runtime: every rank received "
          "its halo values correctly.")
    print(f"Values received per rank: min={min(received_counts)}, "
          f"max={max(received_counts)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
