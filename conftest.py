"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test-suite and benchmarks run even when
the package has not been pip-installed (handy on air-gapped machines).  When
``repro`` is already installed the installed copy wins because editable
installs place it earlier on the path.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
