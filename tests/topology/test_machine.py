"""Unit tests for MachineSpec and Locality."""

import pytest

from repro.topology.machine import Locality, MachineSpec
from repro.utils.errors import TopologyError, ValidationError


@pytest.fixture
def node():
    return MachineSpec(name="test", nodes=4, sockets_per_node=2, cores_per_socket=8)


class TestMachineSpec:
    def test_core_counts(self, node):
        assert node.cores_per_node == 16
        assert node.total_cores == 64
        assert node.total_sockets == 8

    def test_core_location_first_core(self, node):
        assert node.core_location(0) == (0, 0, 0)

    def test_core_location_last_core(self, node):
        assert node.core_location(63) == (3, 1, 7)

    def test_core_location_second_socket(self, node):
        node_id, socket, core = node.core_location(8)
        assert (node_id, socket, core) == (0, 1, 0)

    def test_core_location_out_of_range(self, node):
        with pytest.raises(TopologyError):
            node.core_location(64)

    def test_invalid_spec(self):
        with pytest.raises(ValidationError):
            MachineSpec(name="bad", nodes=0, sockets_per_node=1, cores_per_socket=1)

    def test_with_nodes(self, node):
        bigger = node.with_nodes(16)
        assert bigger.nodes == 16
        assert bigger.cores_per_node == node.cores_per_node

    def test_describe_mentions_counts(self, node):
        assert "4 nodes" in node.describe()


class TestLocalityClassification:
    def test_self(self, node):
        assert node.locality_between(5, 5) is Locality.SELF

    def test_intra_socket(self, node):
        assert node.locality_between(0, 7) is Locality.INTRA_SOCKET

    def test_inter_socket(self, node):
        assert node.locality_between(0, 8) is Locality.INTER_SOCKET

    def test_inter_node(self, node):
        assert node.locality_between(0, 16) is Locality.INTER_NODE

    def test_ordering_reflects_distance(self):
        assert Locality.SELF < Locality.INTRA_SOCKET < Locality.INTER_SOCKET \
            < Locality.INTER_NODE

    def test_is_local_property(self):
        assert Locality.INTRA_SOCKET.is_local
        assert Locality.INTER_SOCKET.is_local
        assert not Locality.INTER_NODE.is_local
