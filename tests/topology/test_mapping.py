"""Unit tests for RankMapping."""

import numpy as np
import pytest

from repro.topology.machine import Locality, MachineSpec
from repro.topology.mapping import MappingKind, RankMapping
from repro.utils.errors import TopologyError


@pytest.fixture
def machine():
    return MachineSpec(name="test", nodes=8, sockets_per_node=2, cores_per_socket=8)


class TestBlockMapping:
    def test_block_fills_nodes_in_order(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16)
        assert mapping.node_of(0) == 0
        assert mapping.node_of(15) == 0
        assert mapping.node_of(16) == 1

    def test_region_equals_node_by_default(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16)
        assert mapping.n_regions == 2
        assert mapping.region_of(0) == mapping.region_of(15)
        assert mapping.region_of(0) != mapping.region_of(16)

    def test_local_index_within_region(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16)
        assert mapping.local_index(0) == 0
        assert mapping.local_index(17) == 1

    def test_ranks_in_region(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16)
        assert mapping.ranks_in_region(1).tolist() == list(range(16, 32))

    def test_partial_last_node(self, machine):
        mapping = RankMapping(machine, 20, ranks_per_node=16)
        assert mapping.n_regions == 2
        assert mapping.region_size(1) == 4

    def test_too_many_ranks_raises(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 1000, ranks_per_node=16)

    def test_locality_classes(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16)
        assert mapping.locality(0, 0) is Locality.SELF
        assert mapping.locality(0, 1) is Locality.INTRA_SOCKET
        assert mapping.locality(0, 8) is Locality.INTER_SOCKET
        assert mapping.locality(0, 16) is Locality.INTER_NODE


class TestRoundRobinMapping:
    def test_round_robin_spreads_consecutive_ranks(self, machine):
        mapping = RankMapping(machine, 16, ranks_per_node=2,
                              kind=MappingKind.ROUND_ROBIN)
        assert mapping.node_of(0) == 0
        assert mapping.node_of(1) == 1
        assert mapping.node_of(8) == 0

    def test_round_robin_overflow_raises(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 100, ranks_per_node=2, kind=MappingKind.ROUND_ROBIN)


class TestCustomMapping:
    def test_from_cores(self, machine):
        cores = [0, 1, 16, 17]   # two ranks on node 0, two on node 1
        mapping = RankMapping.from_cores(machine, cores)
        assert mapping.n_regions == 2
        assert mapping.same_region(0, 1)
        assert not mapping.same_region(1, 2)

    def test_custom_requires_cores(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 4, kind=MappingKind.CUSTOM)

    def test_custom_rejects_duplicate_cores(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 2, kind=MappingKind.CUSTOM, custom_cores=[3, 3],
                        ranks_per_node=16)

    def test_custom_rejects_out_of_range(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 1, kind=MappingKind.CUSTOM, custom_cores=[9999],
                        ranks_per_node=16)


class TestSocketRegions:
    def test_socket_regions_split_nodes(self, machine):
        mapping = RankMapping(machine, 32, ranks_per_node=16, region="socket")
        # 16 ranks per node over 2 sockets of 8 cores: 4 socket regions.
        assert mapping.n_regions == 4
        assert mapping.same_region(0, 7)
        assert not mapping.same_region(0, 8)

    def test_invalid_region_kind(self, machine):
        with pytest.raises(TopologyError):
            RankMapping(machine, 8, region="rack")


class TestQueries:
    def test_regions_array_matches_region_of(self, machine):
        mapping = RankMapping(machine, 48, ranks_per_node=16)
        regions = mapping.regions_array()
        assert all(regions[r] == mapping.region_of(r) for r in range(48))

    def test_region_of_many(self, machine):
        mapping = RankMapping(machine, 48, ranks_per_node=16)
        np.testing.assert_array_equal(mapping.region_of_many([0, 16, 32]),
                                      np.array([0, 1, 2]))

    def test_rank_out_of_range(self, machine):
        mapping = RankMapping(machine, 8, ranks_per_node=8)
        with pytest.raises(TopologyError):
            mapping.region_of(8)

    def test_describe(self, machine):
        mapping = RankMapping(machine, 8, ranks_per_node=8)
        assert "8 ranks" in mapping.describe()
