"""Unit tests for region views and machine presets."""

import pytest

from repro.topology.machine import MachineSpec
from repro.topology.mapping import RankMapping
from repro.topology.presets import (
    bluegene_q_like,
    frontier_like,
    generic_cluster,
    lassen_like,
    paper_mapping,
    smp_example_node,
)
from repro.topology.regions import (
    bytes_by_region,
    destination_regions,
    ranks_by_region,
    region_histogram,
    RegionView,
)


@pytest.fixture
def mapping():
    machine = MachineSpec(name="t", nodes=4, sockets_per_node=1, cores_per_socket=4)
    return RankMapping(machine, 16, ranks_per_node=4)


class TestRegionViews:
    def test_ranks_by_region_covers_all_ranks(self, mapping):
        views = ranks_by_region(mapping)
        all_ranks = sorted(r for view in views for r in view.ranks)
        assert all_ranks == list(range(16))

    def test_region_view_contains(self, mapping):
        view = ranks_by_region(mapping)[1]
        assert 4 in view and 0 not in view
        assert view.local_rank(5) == 1
        assert view.size == 4

    def test_region_view_is_frozen(self):
        view = RegionView(region=0, ranks=(0, 1))
        with pytest.raises(Exception):
            view.region = 5  # type: ignore[misc]

    def test_region_histogram(self, mapping):
        histogram = region_histogram(mapping, [0, 1, 4, 8, 9, 9])
        assert histogram == {0: 2, 1: 1, 2: 3}

    def test_region_histogram_empty(self, mapping):
        assert region_histogram(mapping, []) == {}

    def test_destination_regions(self, mapping):
        regions = destination_regions(mapping, [15, 0, 7])
        assert regions.tolist() == [0, 1, 3]

    def test_bytes_by_region(self, mapping):
        totals = bytes_by_region(mapping, [(0, 100), (1, 50), (4, 8)])
        assert totals == {0: 150, 1: 8}


class TestPresets:
    def test_lassen_node_shape(self):
        machine = lassen_like()
        assert machine.sockets_per_node == 2
        assert machine.cores_per_socket == 22

    def test_frontier_node_shape(self):
        machine = frontier_like()
        assert machine.sockets_per_node == 4
        assert machine.cores_per_node == 64

    def test_bluegene_q_node_shape(self):
        machine = bluegene_q_like()
        assert machine.cores_per_node == 16

    def test_smp_example_matches_figure_1(self):
        machine = smp_example_node()
        assert machine.sockets_per_node == 2
        assert machine.cores_per_socket == 16

    def test_generic_cluster_divisibility(self):
        with pytest.raises(ValueError):
            generic_cluster(4, 10, sockets_per_node=3)

    def test_generic_cluster(self):
        machine = generic_cluster(4, 12, sockets_per_node=2, name="c")
        assert machine.cores_per_socket == 6

    def test_paper_mapping_uses_16_ranks_per_node(self):
        mapping = paper_mapping(64)
        assert mapping.ranks_per_node == 16
        assert mapping.n_regions == 4
        assert mapping.machine.name == "lassen-like"

    def test_paper_mapping_small_rank_count(self):
        mapping = paper_mapping(8)
        assert mapping.n_regions == 1

    def test_paper_mapping_rounds_up_nodes(self):
        mapping = paper_mapping(33)
        assert mapping.n_regions == 3
