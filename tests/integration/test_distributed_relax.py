"""Integration: distributed Jacobi relaxation over the array-native exchange.

The smoother's halo exchange runs through the persistent neighborhood
collective; its sweeps must be numerically identical to the sequential
weighted-Jacobi reference on the assembled global system — the same
correctness argument the distributed SpMV makes, one layer up in the AMG
stack where the paper's timed communication actually happens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg.relax import DistributedJacobi, jacobi
from repro.collectives.plan import Variant
from repro.simmpi.world import run_spmd
from repro.sparse.spmv import DistributedSpMV
from repro.topology.presets import paper_mapping


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
def test_distributed_jacobi_matches_sequential(small_poisson_matrix, variant, rng):
    matrix = small_poisson_matrix
    n = matrix.n_rows
    mapping = paper_mapping(matrix.n_ranks, ranks_per_node=4)
    b = rng.standard_normal(n)
    x0 = rng.standard_normal(n)
    sweeps = 3

    def program(comm):
        spmv = DistributedSpMV(comm, matrix, mapping, variant=variant)
        smoother = DistributedJacobi(spmv)
        first, last = spmv.row_range
        result = smoother.smooth(b[first:last], x0[first:last], sweeps=sweeps)
        return result.tolist()

    per_rank = run_spmd(matrix.n_ranks, program, timeout=120)
    distributed = np.concatenate([np.asarray(values) for values in per_rank])
    reference = jacobi(matrix.matrix, b, x0, sweeps=sweeps)
    np.testing.assert_allclose(distributed, reference, rtol=1e-12, atol=1e-12)
