"""Integration: world-stepped SpMV and relaxation vs the threaded reference.

``distributed_spmv_results`` defaults to the batched engine; these tests pin
it byte-identical to the envelope-routed thread-per-rank path (the pinned
reference) and to the sequential product, and do the same one layer up for
the Jacobi smoother — for every collective variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg.relax import DistributedJacobi, WorldJacobi, jacobi
from repro.collectives.plan import Variant
from repro.simmpi.world import run_spmd
from repro.sparse.spmv import (
    DistributedSpMV,
    WorldSpMV,
    distributed_spmv_results,
    sequential_spmv,
)
from repro.topology.presets import paper_mapping

ALL_VARIANTS = (Variant.POINT_TO_POINT, Variant.STANDARD,
                Variant.PARTIAL, Variant.FULL)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_engine_spmv_byte_identical_to_threaded_reference(
        small_anisotropic_matrix, variant, rng):
    matrix = small_anisotropic_matrix
    mapping = paper_mapping(matrix.n_ranks, ranks_per_node=4)
    x = rng.standard_normal(matrix.n_rows)
    engine_result = distributed_spmv_results(matrix, mapping, x,
                                             variant=variant, runtime="engine")
    threads_result = distributed_spmv_results(matrix, mapping, x,
                                              variant=variant, runtime="threads")
    assert np.array_equal(engine_result, threads_result)
    np.testing.assert_allclose(engine_result, sequential_spmv(matrix, x),
                               rtol=1e-12, atol=1e-12)


def test_world_spmv_reusable_across_iterations(small_poisson_matrix, rng):
    matrix = small_poisson_matrix
    mapping = paper_mapping(matrix.n_ranks, ranks_per_node=4)
    spmv = WorldSpMV(matrix, mapping, variant=Variant.FULL)
    for _ in range(3):
        x = rng.standard_normal(matrix.n_rows)
        np.testing.assert_allclose(spmv.multiply(x), sequential_spmv(matrix, x),
                                   rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
def test_world_jacobi_byte_identical_to_threaded_smoother(
        small_poisson_matrix, variant, rng):
    matrix = small_poisson_matrix
    n = matrix.n_rows
    mapping = paper_mapping(matrix.n_ranks, ranks_per_node=4)
    b = rng.standard_normal(n)
    x0 = rng.standard_normal(n)
    sweeps = 3

    def program(comm):
        spmv = DistributedSpMV(comm, matrix, mapping, variant=variant)
        smoother = DistributedJacobi(spmv)
        first, last = spmv.row_range
        return smoother.smooth(b[first:last], x0[first:last], sweeps=sweeps)

    per_rank = run_spmd(matrix.n_ranks, program, timeout=120)
    threaded = np.concatenate([np.asarray(values) for values in per_rank])

    smoother = WorldJacobi(WorldSpMV(matrix, mapping, variant=variant))
    world_stepped = smoother.smooth(b, x0, sweeps=sweeps)

    assert np.array_equal(world_stepped, threaded)
    np.testing.assert_allclose(world_stepped,
                               jacobi(matrix.matrix, b, x0, sweeps=sweeps),
                               rtol=1e-12, atol=1e-12)


def test_invalid_runtime_rejected(small_poisson_matrix, rng):
    matrix = small_poisson_matrix
    mapping = paper_mapping(matrix.n_ranks, ranks_per_node=4)
    x = rng.standard_normal(matrix.n_rows)
    with pytest.raises(Exception, match="runtime"):
        distributed_spmv_results(matrix, mapping, x, runtime="mailbox")
