"""End-to-end integration: AMG solve whose level-0 SpMV runs on the simulated
runtime through each neighborhood-collective variant.

This stitches every layer together the way the paper's evaluation does:
BoomerAMG-style hierarchy -> per-level communication patterns -> optimized
collectives -> distributed SpMV -> identical numerical results.
"""

import numpy as np
import pytest

from repro.amg.comm_analysis import hierarchy_comm_profiles
from repro.amg.hierarchy import build_hierarchy
from repro.amg.solver import BoomerAMGSolver
from repro.collectives.plan import Variant
from repro.perfmodel.params import lassen_parameters
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.spmv import distributed_spmv_results, sequential_spmv
from repro.sparse.stencils import rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping


@pytest.fixture(scope="module")
def problem():
    matrix = ParCSRMatrix(rotated_anisotropic_diffusion((24, 24)),
                          RowPartition.even(576, 12))
    hierarchy = build_hierarchy(matrix, seed=5)
    mapping = paper_mapping(12, ranks_per_node=4)
    return matrix, hierarchy, mapping


class TestEndToEnd:
    def test_every_level_spmv_runs_distributed(self, problem, rng):
        """Distributed SpMV with the fully optimized collective on every level."""
        _, hierarchy, mapping = problem
        for level in hierarchy.levels:
            if level.matrix.n_rows < hierarchy.levels[0].matrix.n_ranks:
                continue  # tiny coarsest grids leave most ranks idle; covered elsewhere
            x = rng.random(level.matrix.n_rows)
            expected = sequential_spmv(level.matrix, x)
            result = distributed_spmv_results(level.matrix, mapping, x,
                                              variant=Variant.FULL)
            np.testing.assert_allclose(result, expected, rtol=1e-12, atol=1e-12)

    def test_variants_agree_with_each_other(self, problem, rng):
        matrix, _, mapping = problem
        x = rng.random(matrix.n_rows)
        results = {variant: distributed_spmv_results(matrix, mapping, x, variant=variant)
                   for variant in (Variant.STANDARD, Variant.PARTIAL, Variant.FULL)}
        np.testing.assert_allclose(results[Variant.PARTIAL], results[Variant.STANDARD])
        np.testing.assert_allclose(results[Variant.FULL], results[Variant.STANDARD])

    def test_solver_convergence_independent_of_comm_analysis(self, problem):
        matrix, hierarchy, mapping = problem
        solver = BoomerAMGSolver(matrix, hierarchy=hierarchy)
        b = np.ones(matrix.n_rows)
        result = solver.solve(b, tol=1e-8, max_iterations=80)
        assert result.residual_norms[-1] < 1e-4 * result.residual_norms[0]
        # Communication analysis of the very same hierarchy must not perturb
        # the operators used by the solver.
        model = lassen_parameters(active_per_node=4)
        profiles = hierarchy_comm_profiles(hierarchy, mapping, model=model)
        result_after = solver.solve(b, tol=1e-8, max_iterations=80)
        assert result_after.iterations == result.iterations
        assert len(profiles) == hierarchy.n_levels

    def test_paper_narrative_holds_on_hierarchy(self, problem):
        """The qualitative claims of Section 4.1 hold for this hierarchy."""
        _, hierarchy, mapping = problem
        model = lassen_parameters(active_per_node=4)
        profiles = hierarchy_comm_profiles(hierarchy, mapping, model=model)
        std_peak = max(p.statistics[Variant.STANDARD].max_global_messages
                       for p in profiles)
        opt_peak = max(p.statistics[Variant.PARTIAL].max_global_messages
                       for p in profiles)
        assert opt_peak <= std_peak
        # Aggregation increases local traffic somewhere.
        assert any(p.statistics[Variant.PARTIAL].max_local_messages >
                   p.statistics[Variant.STANDARD].max_local_messages
                   for p in profiles)
        # Dedup helps on at least one level of the rotated anisotropic problem.
        assert any(p.statistics[Variant.FULL].max_global_bytes <
                   p.statistics[Variant.PARTIAL].max_global_bytes
                   for p in profiles)
        # The optimized collectives win in total.
        total_std = sum(p.times[Variant.STANDARD] for p in profiles)
        total_full = sum(min(p.times[Variant.FULL], p.times[Variant.STANDARD])
                         for p in profiles)
        assert total_full <= total_std
