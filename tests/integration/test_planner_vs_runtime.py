"""Integration: the pure planner and the functional runtime must agree.

The figures come from the planner (statistics, modeled times); the correctness
argument comes from the functional runtime.  These tests run both on the same
patterns and require the observed traffic (message counts, byte counts, and
locality split) to match the plan exactly.
"""

import numpy as np
import pytest

from repro.collectives.api import neighbor_alltoallv_init
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.builders import neighbor_lists, random_pattern
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.simmpi.world import SimWorld
from repro.sparse.comm_pkg import pattern_from_parcsr
from repro.topology.machine import Locality
from repro.topology.presets import paper_mapping


def _run_with_profiler(pattern, mapping, variant):
    """Execute one exchange of ``variant`` and return the recorded traffic."""
    profiler = TrafficProfiler(mapping)
    world = SimWorld(pattern.n_ranks, timeout=120, profiler=profiler)

    def program(comm):
        rank = comm.rank
        send_items = {d: pattern.send_items(rank, d).tolist()
                      for d in pattern.send_ranks(rank)}
        recv_items = {s: pattern.recv_items(rank, s).tolist()
                      for s in pattern.recv_ranks(rank)}
        sources, dests = neighbor_lists(pattern, rank)
        graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
        collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                             variant=variant)
        owned = {int(i) for items in send_items.values() for i in items}
        profiler_was_quiet = profiler.total().message_count
        comm.barrier()
        collective.exchange({i: float(i) for i in owned})
        return profiler_was_quiet

    world.run(program)
    return profiler


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL, Variant.FULL])
class TestObservedTrafficMatchesPlan:
    def test_message_and_byte_counts(self, variant):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=6, duplicate_fraction=0.5,
                                 seed=77)
        plan = make_plan(pattern, mapping, variant)
        profiler = _run_with_profiler(pattern, mapping, variant)

        observed = profiler.total()
        assert observed.message_count == plan.n_messages
        expected_bytes = sum(m.nbytes(plan.item_bytes) for m in plan.messages())
        assert observed.byte_count == expected_bytes

    def test_per_locality_split(self, variant):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=6, seed=78)
        plan = make_plan(pattern, mapping, variant)
        profiler = _run_with_profiler(pattern, mapping, variant)

        observed = profiler.by_locality()
        planned_inter = sum(1 for m in plan.messages()
                            if mapping.locality(m.src, m.dest) is Locality.INTER_NODE)
        observed_inter = observed.get(Locality.INTER_NODE)
        assert (observed_inter.message_count if observed_inter else 0) == planned_inter

    def test_per_rank_maximum_matches_statistics(self, variant):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=7, seed=79)
        plan = make_plan(pattern, mapping, variant)
        profiler = _run_with_profiler(pattern, mapping, variant)

        stats = plan.statistics()
        observed_max_global = profiler.max_messages_per_rank(
            localities=[Locality.INTER_NODE, Locality.INTER_SOCKET])
        # Regions are nodes here, so inter-region == inter-node (+ inter-socket).
        assert observed_max_global == stats.max_global_messages


class TestSpMVPatternOnRuntime:
    def test_spmv_halo_traffic_matches_plan(self, small_anisotropic_matrix):
        mapping = paper_mapping(16, ranks_per_node=4)
        pattern = pattern_from_parcsr(small_anisotropic_matrix)
        plan = make_plan(pattern, mapping, Variant.FULL)
        profiler = _run_with_profiler(pattern, mapping, Variant.FULL)
        assert profiler.total().message_count == plan.n_messages

    def test_dedup_reduces_observed_bytes(self):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=8, duplicate_fraction=0.7,
                                 seed=80)
        partial_bytes = _run_with_profiler(pattern, mapping, Variant.PARTIAL).total().byte_count
        full_bytes = _run_with_profiler(pattern, mapping, Variant.FULL).total().byte_count
        assert full_bytes < partial_bytes
