"""Tests of the experiment harness at smoke scale (shapes, not absolute numbers)."""

import pytest

from repro.collectives.plan import Variant
from repro.experiments.ablation import run_balance_ablation, run_selection_ablation
from repro.experiments.config import ExperimentConfig, ExperimentContext
from repro.experiments.crossover import run_crossover
from repro.experiments.graph_creation import run_graph_creation
from repro.experiments.per_level import run_per_level
from repro.experiments.runner import render_report, run_all_experiments
from repro.experiments.scaling import run_strong_scaling, run_weak_scaling


@pytest.fixture(scope="module")
def smoke_config():
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def smoke_context(smoke_config):
    return ExperimentContext.build(smoke_config)


class TestConfig:
    def test_reduced_and_paper_configs(self):
        reduced = ExperimentConfig.reduced()
        paper = ExperimentConfig.paper()
        assert paper.n_rows == 524288 and paper.n_ranks == 2048
        assert reduced.n_rows < paper.n_rows

    def test_from_environment_default_is_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert ExperimentConfig.from_environment().n_rows == ExperimentConfig.reduced().n_rows

    def test_from_environment_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert ExperimentConfig.from_environment().n_rows == 524288

    def test_with_ranks(self, smoke_config):
        assert smoke_config.with_ranks(128).n_ranks == 128

    def test_context_profiles_cached(self, smoke_context):
        assert smoke_context.profiles is smoke_context.profiles

    def test_context_redistribution(self, smoke_context):
        scaled = smoke_context.redistributed(16)
        assert scaled.config.n_ranks == 16
        assert scaled.hierarchy.levels[0].matrix.n_ranks == 16


class TestGraphCreation:
    def test_series_cover_all_scales(self, smoke_config):
        result = run_graph_creation(smoke_config)
        assert result.process_counts == list(smoke_config.graph_creation_ranks)
        assert set(result.costs) == {"spectrum", "mvapich"}
        assert all(len(v) == len(result.process_counts) for v in result.costs.values())

    def test_costs_grow_with_scale(self, smoke_config):
        result = run_graph_creation(smoke_config)
        for series in result.costs.values():
            assert series[-1] > series[0]

    def test_table_rendering(self, smoke_config):
        text = run_graph_creation(smoke_config).to_table()
        assert "Figure 6" in text and "mvapich" in text


class TestCrossover:
    def test_totals_linear_in_iterations(self, smoke_context):
        result = run_crossover(smoke_context)
        for variant, totals in result.totals.items():
            deltas = [b - a for a, b in zip(totals, totals[1:])]
            assert all(abs(d - deltas[0]) < 1e-12 for d in deltas)

    def test_optimized_variants_have_crossovers(self, smoke_context):
        result = run_crossover(smoke_context)
        assert result.crossovers[Variant.PARTIAL] is not None
        assert result.crossovers[Variant.FULL] is not None
        assert result.crossovers[Variant.FULL] <= result.crossovers[Variant.PARTIAL]

    def test_partial_init_higher_than_full(self, smoke_context):
        result = run_crossover(smoke_context)
        assert result.init_costs[Variant.PARTIAL] > result.init_costs[Variant.FULL]
        assert result.init_costs[Variant.STANDARD] < result.init_costs[Variant.FULL]

    def test_table_mentions_crossovers(self, smoke_context):
        assert "crossover" in run_crossover(smoke_context).to_table()


class TestPerLevel:
    def test_series_lengths_match_levels(self, smoke_context):
        result = run_per_level(smoke_context)
        n_levels = smoke_context.hierarchy.n_levels
        assert len(result.levels) == n_levels
        for series in (result.local_messages, result.global_messages,
                       result.global_bytes, result.times):
            for values in series.values():
                assert len(values) == n_levels

    def test_optimized_global_counts_never_worse(self, smoke_context):
        result = run_per_level(smoke_context)
        for std, opt in zip(result.global_messages["standard_global"],
                            result.global_messages["optimized_global"]):
            assert opt <= max(std, 1)

    def test_dedup_only_shrinks_messages(self, smoke_context):
        result = run_per_level(smoke_context)
        for partial, full in zip(result.global_bytes["partially_optimized"],
                                 result.global_bytes["fully_optimized"]):
            assert full <= partial
        assert result.max_dedup_saving() >= 0.0

    def test_unoptimized_neighbor_equals_hypre(self, smoke_context):
        result = run_per_level(smoke_context)
        assert result.times["unoptimized_neighbor"] == result.times["standard_hypre"]

    def test_tables_render(self, smoke_context):
        result = run_per_level(smoke_context)
        for table in (result.table_fig8(), result.table_fig9(),
                      result.table_fig10(), result.table_fig11()):
            assert "level" in table


class TestScaling:
    def test_strong_scaling_series(self, smoke_context):
        result = run_strong_scaling(smoke_context)
        assert result.mode == "strong"
        assert len(result.times["standard_hypre"]) == len(result.process_counts)
        speedups = result.speedup("partially_optimized_neighbor")
        assert all(s >= 0.999 for s in speedups)
        assert result.speedup_at_largest_scale("fully_optimized_neighbor") >= \
            result.speedup_at_largest_scale("partially_optimized_neighbor") - 1e-9

    def test_weak_scaling_series(self, smoke_config):
        result = run_weak_scaling(smoke_config, process_counts=(16, 32),
                                  rows_per_rank=64)
        assert result.mode == "weak"
        assert len(result.times["fully_optimized_neighbor"]) == 2
        assert all(s >= 0.999 for s in result.speedup("fully_optimized_neighbor"))

    def test_unknown_protocol_rejected(self, smoke_context):
        result = run_strong_scaling(smoke_context)
        with pytest.raises(Exception):
            result.speedup("nonexistent")

    def test_best_per_level_fallback_never_hurts(self, smoke_context):
        with_fallback = run_strong_scaling(smoke_context, best_per_level=True)
        without = run_strong_scaling(smoke_context, best_per_level=False)
        for a, b in zip(with_fallback.times["partially_optimized_neighbor"],
                        without.times["partially_optimized_neighbor"]):
            assert a <= b + 1e-15


class TestAblationsAndRunner:
    def test_selection_ablation(self, smoke_context):
        result = run_selection_ablation(smoke_context)
        assert len(result.model_choice) == smoke_context.hierarchy.n_levels
        assert result.policy_times["oracle"] <= \
            result.policy_times["model_selection"] + 1e-12
        assert 0.0 <= result.agreement <= 1.0
        assert "Ablation" in result.to_table()

    def test_balance_ablation(self, smoke_context):
        result = run_balance_ablation(smoke_context)
        assert set(result.strategies) == {"round_robin", "bytes"}
        by_name = dict(zip(result.strategies, result.max_global_bytes))
        assert by_name["bytes"] <= by_name["round_robin"]

    def test_run_all_and_render(self, smoke_config):
        results = run_all_experiments(smoke_config, include_weak_scaling=False,
                                      include_ablations=False)
        assert "fig06_graph_creation" in results
        report = render_report(results)
        assert "Figure 6" in report and "Figure 12" in report

    def test_figures_subset_selector(self, smoke_config):
        results = run_all_experiments(smoke_config,
                                      figures=["fig06_graph_creation"])
        assert list(results) == ["fig06_graph_creation"]
        report = render_report(results)
        assert "Figure 6" in report and "Figure 12" not in report

    def test_figures_selector_preserves_report_order(self, smoke_context,
                                                     smoke_config):
        results = run_all_experiments(
            smoke_config,
            figures=["fig07_crossover", "fig06_graph_creation"])
        assert list(results) == ["fig06_graph_creation", "fig07_crossover"]

    def test_unknown_figure_key_rejected(self, smoke_config):
        with pytest.raises(Exception, match="unknown figure"):
            run_all_experiments(smoke_config, figures=["fig99_nope"])

    def test_report_is_exactly_the_joined_sections(self, smoke_config):
        results = run_all_experiments(smoke_config,
                                      figures=["fig06_graph_creation",
                                               "fig13_weak_scaling"])
        report = render_report(results)
        expected = "\n\n".join([results["fig06_graph_creation"].to_table(),
                                results["fig13_weak_scaling"].to_table()])
        assert report == expected


class TestWorldSteppedDrivers:
    """The drivers' world-stepped execution paths (batched exchange engine)."""

    def test_per_level_executed_series_match_planned(self, smoke_context):
        planned = run_per_level(smoke_context)
        executed = run_per_level(smoke_context, execute=True)
        assert executed.local_messages == planned.local_messages
        assert executed.global_messages == planned.global_messages
        assert executed.global_bytes == planned.global_bytes

    def test_measured_level_times_shape(self, smoke_context):
        times = smoke_context.measured_level_times(iterations=1)
        assert len(times) == smoke_context.hierarchy.n_levels
        for per_variant in times:
            assert set(per_variant) == {Variant.POINT_TO_POINT, Variant.STANDARD,
                                        Variant.PARTIAL, Variant.FULL}
            assert all(t > 0.0 for t in per_variant.values())

    def test_crossover_with_measured_iteration(self, smoke_context):
        result = run_crossover(smoke_context, use_measured_iteration=True)
        assert all(t > 0.0 for t in result.per_iteration.values())
        assert len(result.totals[Variant.FULL]) == len(result.iteration_counts)

    def test_strong_scaling_with_measured_iteration(self, smoke_context):
        result = run_strong_scaling(smoke_context, process_counts=(16, 32),
                                    use_measured_iteration=True)
        assert len(result.times["standard_hypre"]) == 2
        assert all(t > 0.0 for t in result.times["fully_optimized_neighbor"])


class TestSolvePhaseDrivers:
    """The drivers' solve-phase mode: whole executed V-cycles, not rounds."""

    def test_per_level_solve_phase_series_exceed_single_rounds(self,
                                                               smoke_context):
        """A V-cycle exchanges each level's pattern several times (smoother
        sweeps + residual) plus the grid transfers, so the executed
        solve-phase traffic dominates the planned single-round traffic on
        every level with communication."""
        planned = run_per_level(smoke_context)
        solved = run_per_level(smoke_context, solve_phase=True)
        assert solved.levels == planned.levels
        for key in ("standard_global",):
            for single, cycle in zip(planned.global_messages[key],
                                     solved.global_messages[key]):
                assert cycle >= single
        assert sum(solved.global_bytes["fully_optimized"]) > \
            sum(planned.global_bytes["fully_optimized"])

    def test_executed_cycle_statistics_per_level(self, smoke_context):
        from repro.experiments.per_level import executed_cycle_statistics

        stats = executed_cycle_statistics(smoke_context.hierarchy,
                                          smoke_context.mapping,
                                          variant=Variant.FULL)
        assert len(stats) == smoke_context.hierarchy.n_levels
        assert stats[0].max_global_messages > 0

    def test_measured_cycle_times_shape(self, smoke_context):
        times = smoke_context.measured_cycle_times(iterations=1)
        assert set(times) == {Variant.POINT_TO_POINT, Variant.STANDARD,
                              Variant.PARTIAL, Variant.FULL}
        assert all(t > 0.0 for t in times.values())

    def test_crossover_solve_phase(self, smoke_context):
        result = run_crossover(smoke_context, solve_phase=True)
        assert all(t > 0.0 for t in result.per_iteration.values())
        assert len(result.totals[Variant.FULL]) == len(result.iteration_counts)

    def test_scaling_solve_phase(self, smoke_context, smoke_config):
        strong = run_strong_scaling(smoke_context, process_counts=(16,),
                                    solve_phase=True)
        assert all(t > 0.0 for t in strong.times["standard_hypre"])
        weak = run_weak_scaling(smoke_config, process_counts=(16,),
                                solve_phase=True)
        assert all(t > 0.0 for t in weak.times["fully_optimized_neighbor"])


class TestAutoSeries:
    """The drivers' online-autotuned ("auto") series (ISSUE 9)."""

    def test_crossover_auto_series_is_opt_in(self, smoke_context):
        result = run_crossover(smoke_context)
        assert "auto" not in result.totals
        assert result.decision_trace is None

    def test_crossover_auto_series_and_trace(self, smoke_context):
        result = run_crossover(smoke_context, variants=("auto",))
        assert "auto" in result.totals
        assert len(result.totals["auto"]) == len(result.iteration_counts)
        assert result.decision_trace is not None
        result.decision_trace.validate()
        # Steady state is the oracle: never worse than any fixed variant.
        for variant in (Variant.STANDARD, Variant.PARTIAL, Variant.FULL):
            assert result.per_iteration["auto"] <= \
                result.per_iteration[variant] + 1e-15
        # Registering every candidate costs standard + partial init (the
        # partial setup already wraps the full one).
        assert result.init_costs["auto"] == pytest.approx(
            result.init_costs[Variant.STANDARD]
            + result.init_costs[Variant.PARTIAL])
        assert "auto" in result.crossovers
        assert "auto" in result.to_table()

    def test_crossover_auto_totals_include_probe_overhead(self, smoke_context):
        result = run_crossover(smoke_context, variants=("auto",))
        for n, total in zip(result.iteration_counts, result.totals["auto"]):
            floor = result.init_costs["auto"] + n * result.per_iteration["auto"]
            assert total >= floor - 1e-15

    def test_crossover_auto_rejects_solve_phase(self, smoke_context):
        from repro.utils.errors import ValidationError
        with pytest.raises(ValidationError, match="per-level"):
            run_crossover(smoke_context, variants=("auto",), solve_phase=True)
        with pytest.raises(ValueError):
            run_crossover(smoke_context, variants=("warp_drive",))

    def test_per_level_auto_selected_is_the_per_level_best(self, smoke_context):
        result = run_per_level(smoke_context)
        auto = result.times["auto_selected"]
        assert len(auto) == len(result.levels)
        candidates = ("unoptimized_neighbor", "partially_optimized_neighbor",
                      "fully_optimized_neighbor")
        for index in range(len(result.levels)):
            best = min(result.times[series][index] for series in candidates)
            assert auto[index] == pytest.approx(best)
        assert result.decision_trace is not None
        result.decision_trace.validate()
        assert sorted(result.decision_trace.levels()) == sorted(result.levels)

    def test_selection_ablation_online_auto_matches_oracle(self, smoke_context):
        result = run_selection_ablation(smoke_context)
        # Fed exact modeled measurements the online selector lands on the
        # oracle's cost (choices may differ only on exact ties).
        assert result.policy_times["online_auto"] == \
            pytest.approx(result.policy_times["oracle"])
        assert len(result.auto_choice) == len(result.levels)
        assert result.decision_trace is not None
        result.decision_trace.validate()
        assert "online choice" in result.to_table()
