"""Unit tests for pattern statistics (the Figures 8-10 quantities)."""

import numpy as np
import pytest

from repro.pattern.builders import halo_exchange_pattern, pattern_from_edges
from repro.pattern.statistics import (
    PatternStatistics,
    average_neighbors,
    locality_byte_counts,
    locality_message_counts,
    pattern_statistics,
)
from repro.topology.machine import Locality
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError


class TestPatternStatisticsContainer:
    def test_add_message_local_vs_global(self):
        stats = PatternStatistics(n_ranks=4)
        stats.add_message(0, True, 100)
        stats.add_message(0, False, 40)
        stats.add_message(1, False, 60)
        assert stats.max_local_messages == 1
        assert stats.max_global_messages == 1
        assert stats.total_global_messages == 2
        assert stats.max_global_bytes == 60
        assert stats.total_global_bytes == 100

    def test_merge(self):
        a = PatternStatistics(n_ranks=2)
        a.add_message(0, True, 8)
        b = PatternStatistics(n_ranks=2)
        b.add_message(0, True, 8)
        b.add_message(1, False, 16)
        merged = a.merged_with(b)
        assert merged.local_messages.tolist() == [2, 0]
        assert merged.global_bytes.tolist() == [0, 16]

    def test_merge_size_mismatch(self):
        with pytest.raises(ValidationError):
            PatternStatistics(n_ranks=2).merged_with(PatternStatistics(n_ranks=3))

    def test_rank_out_of_range(self):
        with pytest.raises(ValidationError):
            PatternStatistics(n_ranks=2).add_message(5, True, 1)

    def test_as_dict_keys(self):
        keys = PatternStatistics(n_ranks=1).as_dict().keys()
        assert "max_global_messages" in keys and "total_global_bytes" in keys

    def test_empty_statistics(self):
        stats = PatternStatistics(n_ranks=3)
        assert stats.max_local_messages == 0
        assert stats.max_global_bytes == 0


class TestPatternStatisticsFromPattern:
    def test_known_pattern(self):
        mapping = paper_mapping(8, ranks_per_node=4)
        # Rank 0: one local message (to 1), two global (to 4 and 5).
        pattern = pattern_from_edges(8, [(0, 1, [1, 2]), (0, 4, [3]), (0, 5, [4, 5, 6])],
                                     item_bytes=8)
        stats = pattern_statistics(pattern, mapping)
        assert stats.local_messages[0] == 1
        assert stats.global_messages[0] == 2
        assert stats.local_bytes[0] == 16
        assert stats.global_bytes[0] == 32

    def test_self_messages_ignored(self):
        mapping = paper_mapping(4, ranks_per_node=4)
        pattern = pattern_from_edges(4, [(1, 1, [7])])
        stats = pattern_statistics(pattern, mapping)
        assert stats.total_local_messages == 0

    def test_mapping_must_cover_pattern(self):
        mapping = paper_mapping(4, ranks_per_node=4)
        pattern = pattern_from_edges(8, [(0, 7, [1])])
        with pytest.raises(ValidationError):
            pattern_statistics(pattern, mapping)

    def test_halo_pattern_statistics(self):
        # 16 ranks on one node: every halo message is intra-region.
        mapping = paper_mapping(16, ranks_per_node=16)
        pattern = halo_exchange_pattern((4, 4), points_per_cell=8)
        stats = pattern_statistics(pattern, mapping)
        assert stats.total_global_messages == 0
        assert stats.max_local_messages == 4


class TestLocalityBreakdowns:
    def test_locality_message_counts(self):
        mapping = paper_mapping(32, ranks_per_node=16)
        pattern = pattern_from_edges(32, [(0, 1, [1]), (0, 16, [2]), (17, 0, [3])])
        counts = locality_message_counts(pattern, mapping)
        assert counts[Locality.INTRA_SOCKET] == 1
        assert counts[Locality.INTER_NODE] == 2
        assert counts[Locality.INTER_SOCKET] == 0

    def test_locality_byte_counts(self):
        mapping = paper_mapping(32, ranks_per_node=16)
        pattern = pattern_from_edges(32, [(0, 16, [1, 2, 3])], item_bytes=8)
        counts = locality_byte_counts(pattern, mapping)
        assert counts[Locality.INTER_NODE] == 24

    def test_average_neighbors(self):
        pattern = pattern_from_edges(4, [(0, 1, [1]), (0, 2, [2]), (1, 0, [3])])
        assert average_neighbors(pattern) == pytest.approx((2 + 1 + 0 + 0) / 4)
        assert average_neighbors(pattern, [0, 1]) == pytest.approx(1.5)
        assert average_neighbors(pattern, []) == 0.0
