"""Unit tests for CommPattern and its builders."""

import numpy as np
import pytest

from repro.pattern.builders import (
    halo_exchange_pattern,
    neighbor_lists,
    pattern_from_edges,
    random_pattern,
)
from repro.pattern.comm_pattern import CommPattern
from repro.pattern.validation import patterns_equivalent, validate_pattern
from repro.utils.errors import ValidationError


class TestCommPatternBasics:
    def test_send_and_recv_views_are_transposes(self):
        pattern = pattern_from_edges(4, [(0, 1, [10, 11]), (2, 1, [12]), (0, 3, [13])])
        assert pattern.send_ranks(0) == [1, 3]
        assert pattern.recv_ranks(1) == [0, 2]
        assert pattern.recv_items(1, 0).tolist() == [10, 11]
        assert pattern.send_items(2, 1).tolist() == [12]

    def test_empty_edges_dropped(self):
        pattern = CommPattern(3, {0: {1: [], 2: [5]}})
        assert pattern.send_ranks(0) == [2]
        assert pattern.n_messages == 1

    def test_missing_edge_returns_empty(self):
        pattern = pattern_from_edges(3, [(0, 1, [1])])
        assert pattern.send_items(1, 2).size == 0
        assert pattern.recv_items(0, 2).size == 0

    def test_counts(self):
        pattern = pattern_from_edges(4, [(0, 1, [1, 2]), (1, 0, [3])], item_bytes=4)
        assert pattern.n_messages == 2
        assert pattern.total_items == 3
        assert pattern.total_bytes == 12
        assert pattern.message_size(0, 1) == 8

    def test_out_of_range_ranks_rejected(self):
        with pytest.raises(ValidationError):
            CommPattern(2, {0: {5: [1]}})
        with pytest.raises(ValidationError):
            CommPattern(2, {7: {0: [1]}})

    def test_transpose_twice_is_identity(self):
        pattern = random_pattern(12, seed=4)
        assert patterns_equivalent(pattern.transpose().transpose(), pattern)

    def test_active_ranks(self):
        pattern = pattern_from_edges(6, [(0, 3, [1])])
        assert pattern.active_ranks().tolist() == [0, 3]

    def test_restrict_to(self):
        pattern = pattern_from_edges(4, [(0, 1, [1]), (0, 2, [2]), (2, 3, [3])])
        restricted = pattern.restrict_to([0, 1, 3])
        assert restricted.n_messages == 1
        assert restricted.send_items(0, 1).tolist() == [1]

    def test_equality(self):
        a = pattern_from_edges(3, [(0, 1, [1, 2])])
        b = pattern_from_edges(3, [(0, 1, [1, 2])])
        c = pattern_from_edges(3, [(0, 1, [2, 1])])
        assert a == b
        assert a != c  # order matters for strict equality
        assert patterns_equivalent(a, c)  # but not for equivalence

    def test_edges_deterministic_order(self):
        pattern = pattern_from_edges(4, [(2, 0, [5]), (0, 3, [1]), (0, 1, [2])])
        edges = [(s, d) for s, d, _ in pattern.edges()]
        assert edges == sorted(edges)

    def test_repeated_edges_concatenate(self):
        pattern = pattern_from_edges(3, [(0, 1, [1]), (0, 1, [2])])
        assert pattern.send_items(0, 1).tolist() == [1, 2]

    def test_equal_patterns_hash_equal(self):
        a = pattern_from_edges(3, [(0, 1, [1, 2]), (1, 2, [3])])
        b = pattern_from_edges(3, [(0, 1, [1, 2]), (1, 2, [3])])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1                      # usable as dict/set keys
        assert hash(a) != hash(pattern_from_edges(3, [(0, 1, [1, 2])]))

    def test_hash_respects_item_bytes(self):
        a = pattern_from_edges(3, [(0, 1, [1])], item_bytes=8)
        b = pattern_from_edges(3, [(0, 1, [1])], item_bytes=4)
        assert a != b
        assert hash(a) != hash(b)

    def test_eq_and_hash_respect_dtype_and_item_size(self):
        # Same wire size (8 bytes/item) but incompatible exchange element types
        # must not collide as dict/set keys.
        a = pattern_from_edges(3, [(0, 1, [1, 2])], dtype=np.float64, item_size=1)
        b = pattern_from_edges(3, [(0, 1, [1, 2])], dtype=np.float32, item_size=2)
        assert a != b
        assert hash(a) != hash(b)

    def test_accessors_return_read_only_views_without_copying(self):
        pattern = pattern_from_edges(4, [(0, 1, [1, 2]), (2, 1, [3])])
        items = pattern.send_items(0, 1)
        assert not items.flags.writeable
        assert pattern.send_items(0, 1) is items     # no per-call copy
        for _, _, edge_items in pattern.edges():
            assert not edge_items.flags.writeable
        assert not pattern.recv_items(1, 0).flags.writeable
        assert not pattern.send_map(0)[1].flags.writeable
        with pytest.raises(ValueError):
            items[0] = 99

    def test_caller_array_not_frozen_by_construction(self):
        mine = np.array([4, 5, 6], dtype=np.int64)
        pattern = CommPattern(2, {0: {1: mine}})
        mine[0] = 40                                  # caller's array untouched
        assert pattern.send_items(0, 1).tolist() == [4, 5, 6]

    def test_readonly_view_of_writable_buffer_copied(self):
        base = np.array([4, 5, 6], dtype=np.int64)
        view = base.view()
        view.flags.writeable = False
        pattern = CommPattern(2, {0: {1: view}})
        hash_before = hash(pattern)
        base[0] = 99                                  # mutation through the base
        assert pattern.send_items(0, 1).tolist() == [4, 5, 6]
        assert hash(pattern) == hash_before

    def test_edge_lists_columns_are_frozen(self):
        pattern = pattern_from_edges(4, [(0, 1, [1, 2]), (2, 3, [3])])
        srcs, dests, item_arrays = pattern.edge_lists()
        assert not srcs.flags.writeable and not dests.flags.writeable
        assert isinstance(item_arrays, tuple)   # cache cannot be mutated

    def test_edge_arrays_expand_pattern(self):
        pattern = pattern_from_edges(4, [(0, 1, [1, 2]), (2, 3, [3])])
        origins, dests, items = pattern.edge_arrays()
        assert origins.tolist() == [0, 0, 2]
        assert dests.tolist() == [1, 1, 3]
        assert items.tolist() == [1, 2, 3]
        assert pattern.edge_arrays() is not None     # cached path
        assert not items.flags.writeable

    def test_unique_edge_table_dedups_within_edge(self):
        pattern = pattern_from_edges(4, [(1, 0, [5, 5, 4]), (0, 1, [9])])
        origins, dests, items = pattern.unique_edge_table()
        assert origins.tolist() == [0, 1, 1]
        assert dests.tolist() == [1, 0, 0]
        assert items.tolist() == [9, 4, 5]


class TestValidation:
    def test_validate_accepts_good_pattern(self, small_pattern):
        validate_pattern(small_pattern)

    def test_validate_rejects_duplicate_items_when_requested(self):
        pattern = pattern_from_edges(2, [(0, 1, [3, 3])])
        validate_pattern(pattern)  # allowed by default
        with pytest.raises(ValidationError):
            validate_pattern(pattern, require_unique_items=True)

    def test_validate_rejects_self_messages_when_requested(self):
        pattern = pattern_from_edges(2, [(0, 0, [1])])
        with pytest.raises(ValidationError):
            validate_pattern(pattern, allow_self_messages=False)


class TestRandomPattern:
    def test_deterministic_for_seed(self):
        assert patterns_equivalent(random_pattern(16, seed=9), random_pattern(16, seed=9))

    def test_different_seeds_differ(self):
        a, b = random_pattern(16, seed=1), random_pattern(16, seed=2)
        assert not patterns_equivalent(a, b)

    def test_no_self_messages(self):
        pattern = random_pattern(16, seed=3)
        assert all(src != dest for src, dest, _ in pattern.edges())

    def test_items_owned_by_sender(self):
        pattern = random_pattern(8, items_per_rank=16, seed=5)
        for src, _, items in pattern.edges():
            assert np.all(items // 16 == src)

    def test_duplicate_fraction_controls_sharing(self):
        """Higher duplicate_fraction -> larger share of transfers that are duplicates
        (i.e. more payload the deduplicating collective can remove)."""
        def duplicate_share(fraction):
            pattern = random_pattern(8, duplicate_fraction=fraction, seed=6)
            transfers = 0
            duplicates = 0
            for src in range(8):
                seen = {}
                for dest in pattern.send_ranks(src):
                    for item in pattern.send_items(src, dest).tolist():
                        seen.setdefault(item, set()).add(dest)
                        transfers += 1
                duplicates += sum(len(dests) - 1 for dests in seen.values())
            return duplicates / transfers

        assert duplicate_share(0.9) > duplicate_share(0.0)

    def test_single_rank_pattern_is_empty(self):
        assert random_pattern(1, seed=0).n_messages == 0

    def test_invalid_duplicate_fraction(self):
        with pytest.raises(ValidationError):
            random_pattern(4, duplicate_fraction=1.5)


class TestHaloPattern:
    def test_interior_rank_has_four_neighbors(self):
        pattern = halo_exchange_pattern((4, 4), points_per_cell=8)
        interior = 1 * 4 + 1
        assert len(pattern.send_ranks(interior)) == 4

    def test_corner_rank_has_two_neighbors(self):
        pattern = halo_exchange_pattern((4, 4), points_per_cell=8)
        assert len(pattern.send_ranks(0)) == 2

    def test_periodic_gives_four_neighbors_everywhere(self):
        pattern = halo_exchange_pattern((4, 4), points_per_cell=8, periodic=True)
        assert all(len(pattern.send_ranks(r)) == 4 for r in range(16))

    def test_message_sizes_uniform(self):
        pattern = halo_exchange_pattern((3, 3), points_per_cell=10, width=2)
        sizes = {items.size for _, _, items in pattern.edges()}
        assert sizes == {20}

    def test_symmetry(self):
        pattern = halo_exchange_pattern((4, 4))
        assert patterns_equivalent(pattern.transpose().transpose(), pattern)
        for src, dest, _ in pattern.edges():
            assert pattern.send_items(dest, src).size > 0  # symmetric neighbours


class TestNeighborLists:
    def test_matches_pattern_views(self, small_pattern):
        for rank in range(small_pattern.n_ranks):
            sources, destinations = neighbor_lists(small_pattern, rank)
            assert sources.tolist() == small_pattern.recv_ranks(rank)
            assert destinations.tolist() == small_pattern.send_ranks(rank)
