"""Chaos suite: deterministic fault injection against the procs runtime.

Every test drives the supervision/recovery machinery of
:mod:`repro.simmpi.procs` through a :class:`~repro.simmpi.faults.FaultPlan`
— worker crashes (SIGKILL), hangs, dropped pipes, and corrupted wire bytes,
each injected at a chosen (round, phase, worker, attempt) — and asserts the
contract of ISSUE 7:

* **detection** — a dead worker is diagnosed via its process sentinel in
  well under the ack timeout (and far under the legacy 120 s poll);
* **recovery** — the pool respawns, re-registers every retained shared
  program, retries the failed command, and the results stay byte-identical
  to the single-process engine;
* **degradation** — with retries exhausted, ``on_failure="fallback"``
  finishes the round on the serial fused-kernel path, records a structured
  event, and keeps the engine serviceable;
* **hygiene** — no deadlocked ``close``, no zombie processes, no leaked
  shared-memory segments, pinned in a ``python -W error`` subprocess.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.collectives import Variant, WorldNeighborCollective, make_plan
from repro.collectives.exchange import ExchangeSpec, compile_world_exchange
from repro.pattern import random_pattern
from repro.simmpi import (
    FAULTS_ENV,
    ON_FAILURE_ENV,
    TIMEOUT_ENV,
    ExchangeEngine,
    FaultPlan,
    FaultSpec,
    default_on_failure,
    default_worker_timeout,
)
from repro.topology import paper_mapping
from repro.utils.errors import (
    CommunicationError,
    ValidationError,
    WorkerCrash,
    WorkerError,
)

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

N_RANKS = 6
N_WORKERS = 2

#: The acceptance bound: detection and diagnosis of a mid-round fault must
#: land well under the (legacy, hard-coded) 120 s timeout.
DETECTION_BOUND_S = 5.0


@pytest.fixture(scope="module")
def plan():
    pattern = random_pattern(N_RANKS, avg_neighbors=3,
                             duplicate_fraction=0.3, seed=13)
    mapping = paper_mapping(N_RANKS, ranks_per_node=3)
    return make_plan(pattern, mapping, Variant.FULL)


@pytest.fixture(scope="module")
def expected(plan):
    """Reference results from the single-process engine (explicitly, so the
    chaos CI job's ``REPRO_RUNTIME=procs`` cannot redirect the baseline)."""
    with WorldNeighborCollective(plan, runtime="engine") as collective:
        return collective.exchange(_values(collective))


def _values(collective, scale: float = 1.0):
    return [scale * (100.0 * rank
                     + collective.owned_item_ids(rank).astype(np.float64))
            for rank in range(N_RANKS)]


def _world_values(world, scale: float = 1.0):
    return np.concatenate([
        scale * (100.0 * rank + world.owned_item_ids(rank).astype(np.float64))
        for rank in range(N_RANKS)
    ])


def _faulty_engine(faults, *, timeout=30.0, **kwargs) -> ExchangeEngine:
    return ExchangeEngine(N_RANKS, runtime="procs", n_workers=N_WORKERS,
                          fault_plan=FaultPlan(faults), timeout=timeout,
                          retry_backoff=0.01, **kwargs)


def _registered(engine, plan):
    world = compile_world_exchange(
        plan, ExchangeSpec(dtype=np.dtype(np.float64), item_size=1))
    return world, engine.register(world)


class TestFaultPlanParsing:
    def test_round_trip(self):
        text = "crash:1:send:0;hang:2:recv:1:*;corrupt:0:register:3:4"
        plan = FaultPlan.parse(text)
        assert len(plan) == 3
        assert plan.specs[0] == FaultSpec("crash", 1, "send", 0, 0)
        assert plan.specs[1] == FaultSpec("hang", 2, "recv", 1, None)
        assert plan.specs[2] == FaultSpec("corrupt", 0, "register", 3, 4)
        assert FaultPlan.parse(plan.describe()).specs == plan.specs

    def test_empty_entries_are_skipped(self):
        assert len(FaultPlan.parse("; crash:0:send:0 ; ;")) == 1
        assert not FaultPlan.parse("")

    @pytest.mark.parametrize("text", [
        "explode:0:send:0",          # unknown kind
        "crash:0:sideways:0",        # unknown phase
        "crash:0:send",              # too few fields
        "crash:0:send:0:1:2",        # too many fields
        "crash:x:send:0",            # non-integer round
        "crash:-1:send:0",           # negative round
    ])
    def test_rejects_malformed_entries(self, text):
        with pytest.raises(ValidationError):
            FaultPlan.parse(text)

    def test_from_environment(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_environment() is None
        monkeypatch.setenv(FAULTS_ENV, "pipe_drop:3:recv:1")
        plan = FaultPlan.from_environment()
        assert plan.specs == (FaultSpec("pipe_drop", 3, "recv", 1, 0),)

    def test_match_semantics(self):
        plan = FaultPlan([FaultSpec("crash", 1, "send", 0, None),
                          FaultSpec("hang", 2, "recv", 1, 3)])
        hit = plan.match(phases=("send", "recv"), round=1, worker=0, attempt=7)
        assert hit is plan.specs[0]          # wildcard attempt matches any
        assert plan.match(phases=("send",), round=2, worker=1,
                          attempt=3) is None  # phase filter applies
        assert plan.match(phases=("recv",), round=2, worker=1,
                          attempt=2) is None  # pinned attempt must match
        assert plan.match(phases=("recv",), round=2, worker=1,
                          attempt=3) is plan.specs[1]


class TestStructuredCrashes:
    def test_signal_and_describe(self):
        killed = WorkerCrash(worker_id=2, exitcode=-9, command="run",
                             detail="worker process died")
        assert killed.signal == 9
        assert "killed by signal 9" in killed.describe()
        exited = WorkerCrash(worker_id=0, exitcode=1, command="register",
                             detail="pipe closed")
        assert exited.signal is None
        assert "exited with code 1" in exited.describe()
        wedged = WorkerCrash(worker_id=1, exitcode=None, command="run",
                             detail="no acknowledgement")
        assert "stopped answering" in wedged.describe()

    def test_worker_error_is_a_communication_error(self):
        error = WorkerError("boom", crashes=(
            WorkerCrash(worker_id=0, exitcode=-9, command="run",
                        detail="died"),))
        assert isinstance(error, CommunicationError)
        assert error.crashes[0].signal == 9


class TestDetection:
    """A dead worker is diagnosed immediately, not after the timeout."""

    @pytest.mark.parametrize("kind", ["crash", "pipe_drop", "corrupt"])
    def test_dead_or_corrupt_worker_detected_fast(self, plan, kind):
        # The generous timeout proves detection is sentinel/EOF-driven, not
        # timeout-driven: with the legacy sequential poll this would block
        # the full 60 s before diagnosing anything.
        engine = _faulty_engine(
            [FaultSpec(kind, round=0, phase="send", worker=1)],
            timeout=60.0, on_failure="raise")
        try:
            world, handle = _registered(engine, plan)
            start = time.monotonic()
            with pytest.raises(WorkerError) as info:
                engine.run(handle, _world_values(world))
            elapsed = time.monotonic() - start
            assert elapsed < DETECTION_BOUND_S
            crashes = info.value.crashes
            assert [crash.worker_id for crash in crashes] == [1]
            assert crashes[0].command == "run"
            if kind == "crash":
                assert crashes[0].signal == 9
        finally:
            engine.close()

    def test_hung_worker_detected_at_the_configured_timeout(self, plan):
        engine = _faulty_engine(
            [FaultSpec("hang", round=0, phase="recv", worker=0)],
            timeout=1.0, on_failure="raise")
        try:
            world, handle = _registered(engine, plan)
            start = time.monotonic()
            with pytest.raises(WorkerError) as info:
                engine.run(handle, _world_values(world))
            elapsed = time.monotonic() - start
            # 1 s primary timeout + <= 1 s drain grace, nowhere near 120 s.
            assert elapsed < DETECTION_BOUND_S
            wedged = [crash for crash in info.value.crashes
                      if crash.worker_id == 0]
            assert wedged and wedged[0].exitcode is None
            assert "stopped answering" in wedged[0].describe()
        finally:
            engine.close()


class TestRecovery:
    """Respawn + retry reproduces the serial results byte for byte."""

    @pytest.mark.parametrize("kind", ["crash", "hang", "pipe_drop", "corrupt"])
    @pytest.mark.parametrize("phase", ["send", "recv"])
    def test_mid_round_fault_recovers_byte_identical(self, plan, expected,
                                                     kind, phase):
        timeout = 1.0 if kind == "hang" else 30.0
        engine = _faulty_engine(
            [FaultSpec(kind, round=1, phase=phase, worker=0)],
            timeout=timeout)
        try:
            world, handle = _registered(engine, plan)
            for round_index, scale in enumerate([1.0, 2.0, 3.0]):
                results = engine.run(handle, _world_values(world, scale))
                for rank in range(N_RANKS):
                    assert np.array_equal(results[rank],
                                          scale * expected[rank]), \
                        (kind, phase, round_index, rank)
            actions = [event.action for event in engine.events]
            assert actions == ["retry"]
            assert engine.events[0].command == "run"
            assert not engine.degraded
        finally:
            engine.close()

    @pytest.mark.parametrize("kind", ["crash", "hang", "pipe_drop", "corrupt"])
    def test_register_fault_recovers(self, plan, expected, kind):
        timeout = 1.0 if kind == "hang" else 30.0
        engine = _faulty_engine(
            [FaultSpec(kind, round=0, phase="register", worker=1)],
            timeout=timeout)
        try:
            world, handle = _registered(engine, plan)
            results = engine.run(handle, _world_values(world))
            for rank in range(N_RANKS):
                assert np.array_equal(results[rank], expected[rank])
            assert [event.action for event in engine.events] == ["retry"]
            assert engine.events[0].command == "register"
        finally:
            engine.close()

    def test_recovered_pool_serves_many_more_rounds(self, plan, expected):
        """No stale acks: a recovered pool keeps answering round after round."""
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="recv", worker=1)])
        try:
            world, handle = _registered(engine, plan)
            pool = engine._pool
            for scale in [1.0, 0.5, -2.0, 7.0, 11.0]:
                results = engine.run(handle, _world_values(world, scale))
                for rank in range(N_RANKS):
                    assert np.array_equal(results[rank],
                                          scale * expected[rank])
            assert engine._pool is pool  # same pool object, respawned workers
            assert pool.started and not engine.degraded
        finally:
            engine.close()

    def test_second_program_registered_after_recovery(self, plan, expected):
        """Respawn re-registers retained programs; new ones still register."""
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0)])
        try:
            world, handle = _registered(engine, plan)
            first = engine.run(handle, _world_values(world))
            world2, handle2 = _registered(engine, plan)
            second = engine.run(handle2, _world_values(world2, 3.0))
            for rank in range(N_RANKS):
                assert np.array_equal(first[rank], expected[rank])
                assert np.array_equal(second[rank], 3.0 * expected[rank])
        finally:
            engine.close()


class TestFallback:
    """Retries exhausted -> the round completes on the serial path."""

    def test_persistent_crash_falls_back_byte_identical(self, plan, expected):
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0,
                       attempt=None)],  # fires on every attempt
            max_retries=1, on_failure="fallback")
        try:
            world, handle = _registered(engine, plan)
            results = engine.run(handle, _world_values(world))
            for rank in range(N_RANKS):
                assert np.array_equal(results[rank], expected[rank])
            actions = [event.action for event in engine.events]
            assert actions == ["retry", "give-up", "fallback"]
            fallback = engine.events[-1]
            assert fallback.command == "run"
            assert fallback.crashes  # the structured diagnosis rides along
            assert "single-process" in fallback.chosen
            assert engine.degraded
            # The quarantined pool's workers are gone; later rounds run
            # serially on the retained shared segments and stay correct.
            assert not engine._pool.started
            again = engine.run(handle, _world_values(world, 2.0))
            for rank in range(N_RANKS):
                assert np.array_equal(again[rank], 2.0 * expected[rank])
        finally:
            engine.close()

    def test_persistent_register_fault_falls_back(self, plan, expected):
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="register", worker=1,
                       attempt=None)],
            max_retries=1, on_failure="fallback")
        try:
            world, handle = _registered(engine, plan)
            assert engine.degraded
            assert [event.action for event in engine.events][-1] == "fallback"
            results = engine.run(handle, _world_values(world))
            for rank in range(N_RANKS):
                assert np.array_equal(results[rank], expected[rank])
        finally:
            engine.close()

    def test_event_trace_is_readable(self, plan):
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0,
                       attempt=None)],
            max_retries=0, on_failure="fallback")
        try:
            world, handle = _registered(engine, plan)
            engine.run(handle, _world_values(world))
            lines = [event.describe() for event in engine.events]
            assert any("give-up" in line for line in lines)
            assert any("killed by signal 9" in line for line in lines)
            assert any("->" in line for line in lines)
        finally:
            engine.close()


class TestPolicyAndConfiguration:
    def test_raise_policy_fails_fast_without_retry(self, plan):
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0)],
            on_failure="raise")
        try:
            world, handle = _registered(engine, plan)
            with pytest.raises(WorkerError):
                engine.run(handle, _world_values(world))
            actions = [event.action for event in engine.events]
            assert actions == ["give-up"]  # no retry was attempted
        finally:
            engine.close()

    def test_retry_policy_raises_after_exhaustion(self, plan):
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0,
                       attempt=None)],
            max_retries=1, on_failure="retry")
        try:
            world, handle = _registered(engine, plan)
            with pytest.raises(WorkerError):
                engine.run(handle, _world_values(world))
            actions = [event.action for event in engine.events]
            assert actions == ["retry", "give-up"]
            assert not engine.degraded  # "retry" never falls back
        finally:
            engine.close()

    def test_on_failure_validation_and_env_default(self, monkeypatch):
        with pytest.raises(ValidationError, match="on_failure"):
            ExchangeEngine(4, on_failure="shrug")
        monkeypatch.delenv(ON_FAILURE_ENV, raising=False)
        assert default_on_failure() == "retry"
        monkeypatch.setenv(ON_FAILURE_ENV, "fallback")
        assert default_on_failure() == "fallback"
        engine = ExchangeEngine(4, runtime="procs", n_workers=2)
        assert engine.on_failure == "fallback"
        engine.close()
        monkeypatch.setenv(ON_FAILURE_ENV, "quantum")
        assert default_on_failure() == "retry"

    def test_timeout_env_and_validation(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert default_worker_timeout() == 120.0
        monkeypatch.setenv(TIMEOUT_ENV, "7.5")
        assert default_worker_timeout() == 7.5
        engine = ExchangeEngine(4, runtime="procs", n_workers=2)
        assert engine._pool.timeout == 7.5
        engine.close()
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(ValidationError, match=TIMEOUT_ENV):
            default_worker_timeout()
        monkeypatch.setenv(TIMEOUT_ENV, "-3")
        with pytest.raises(ValidationError, match="positive"):
            default_worker_timeout()
        with pytest.raises(ValidationError, match="positive"):
            ExchangeEngine(4, runtime="procs", n_workers=2, timeout=0.0)

    def test_faults_env_drives_injection_end_to_end(self, plan, expected,
                                                    monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:0:send:1")
        with WorldNeighborCollective(plan, runtime="procs",
                                     n_workers=N_WORKERS) as collective:
            results = collective.exchange(_values(collective))
            for rank in range(N_RANKS):
                assert np.array_equal(results[rank], expected[rank])
            assert [event.action
                    for event in collective.engine.events] == ["retry"]


class TestCloseHygiene:
    def test_close_does_not_deadlock_on_barrier_blocked_worker(self, plan):
        """A worker whose peer died mid-round is parked in ``Barrier.wait``;
        ``close`` must abort the barrier so it reads the close command
        instead of forcing the 10 s join-then-terminate path."""
        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0)],
            on_failure="raise")
        try:
            world, handle = _registered(engine, plan)
            pool = engine._pool
            # Dispatch without collecting: worker 0 dies at its first send
            # step, worker 1 completes the step and parks in Barrier.wait.
            pool._dispatch(("run", handle, 0, 0), "run")
            deadline = time.monotonic() + DETECTION_BOUND_S
            while pool._processes[0].is_alive() \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            time.sleep(0.2)  # give worker 1 time to commit to the barrier
            start = time.monotonic()
        finally:
            engine.close()
        assert time.monotonic() - start < 5.0

    def test_quarantined_and_closed_pools_leave_no_processes(self, plan):
        import multiprocessing as mp

        engine = _faulty_engine(
            [FaultSpec("crash", round=0, phase="send", worker=0,
                       attempt=None)],
            max_retries=0, on_failure="fallback")
        world, handle = _registered(engine, plan)
        engine.run(handle, _world_values(world))
        assert engine.degraded
        workers = [process for process in mp.active_children()
                   if process.name.startswith("repro-exchange-worker")]
        assert workers == []  # quarantine already reaped the pool
        engine.close()


#: Run in a subprocess so interpreter shutdown is part of the test: one
#: engine recovers from an injected crash, one falls back permanently, with
#: every warning (ResourceWarning included) promoted to an error and a
#: zombie/segment sweep at exit.
_CHAOS_HYGIENE_SCRIPT = textwrap.dedent("""
    import gc
    import multiprocessing as mp
    import numpy as np
    from repro.collectives import Variant, make_plan
    from repro.collectives.exchange import ExchangeSpec, compile_world_exchange
    from repro.pattern import random_pattern
    from repro.simmpi import ExchangeEngine, FaultPlan, FaultSpec
    from repro.topology import paper_mapping

    pattern = random_pattern(6, avg_neighbors=3, seed=13)
    mapping = paper_mapping(6, ranks_per_node=3)
    plan = make_plan(pattern, mapping, Variant.FULL)
    spec = ExchangeSpec(dtype=np.dtype(np.float64), item_size=1)

    def world_values(world):
        return np.concatenate([
            100.0 * rank + world.owned_item_ids(rank).astype(np.float64)
            for rank in range(6)])

    # Crash -> respawn -> recover, then explicit close.
    recovered = ExchangeEngine(
        6, runtime="procs", n_workers=2, timeout=30.0, retry_backoff=0.01,
        fault_plan=FaultPlan([FaultSpec("crash", 0, "send", 0)]))
    world = compile_world_exchange(plan, spec)
    handle = recovered.register(world)
    recovered.run(handle, world_values(world))
    assert [event.action for event in recovered.events] == ["retry"]
    recovered.close()

    # Persistent crash -> serial fallback, engine dropped for the finalizer.
    degraded = ExchangeEngine(
        6, runtime="procs", n_workers=2, timeout=30.0, retry_backoff=0.01,
        max_retries=0, on_failure="fallback",
        fault_plan=FaultPlan([FaultSpec("crash", 0, "recv", 1, None)]))
    world = compile_world_exchange(plan, spec)
    handle = degraded.register(world)
    degraded.run(handle, world_values(world))
    assert degraded.degraded
    del degraded
    gc.collect()

    leftovers = [process for process in mp.active_children()
                 if process.name.startswith("repro-exchange-worker")]
    assert leftovers == [], f"zombie workers: {leftovers}"
    print("OK")
""")


def test_no_leaks_or_zombies_after_chaos_under_w_error():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop(FAULTS_ENV, None)
    result = subprocess.run(
        [sys.executable, "-W", "error", "-c", _CHAOS_HYGIENE_SCRIPT],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
    assert "ResourceWarning" not in result.stderr
    assert "leaked" not in result.stderr


class TestAutotuneUnderFaults:
    """ISSUE 9's chaos contract: a worker crash mid-probe must not corrupt
    the online selector.  The engine's supervision retries the failed round;
    the V-cycle sees the recovery (the engine's event count moved) and ends
    the tainted measurement cycle with ``recovered=True``, so the selector
    discards it wholesale, records the overlap on the trace, and still
    commits cleanly once clean probe windows complete."""

    def _problem(self):
        from repro.amg.hierarchy import build_hierarchy
        from repro.sparse.parcsr import ParCSRMatrix
        from repro.sparse.partition import RowPartition
        from repro.sparse.stencils import poisson_2d

        matrix = ParCSRMatrix(poisson_2d((12, 12)),
                              RowPartition.even(144, N_RANKS))
        hierarchy = build_hierarchy(matrix, seed=1)
        mapping = paper_mapping(N_RANKS, ranks_per_node=3)
        return matrix, hierarchy, mapping

    def _auto_cycles(self, engine, hierarchy, mapping, n_rows):
        from repro.amg.vcycle import WorldVCycle
        from repro.collectives.autotune import OnlineSelector

        selector = OnlineSelector(window=1)
        b = np.ones(n_rows, dtype=np.float64)
        x = np.zeros(n_rows, dtype=np.float64)
        with WorldVCycle(hierarchy, mapping, variant="auto",
                         selector=selector, engine=engine) as vcycle:
            # One discarded cycle costs one extra cycle of probing.
            for _ in range(selector.probe_budget + 3):
                x = vcycle.cycle(b, x)
        return x, selector

    def test_crash_mid_probe_recovers_and_commits_cleanly(self):
        from repro.collectives.autotune import FixedStepClock

        matrix, hierarchy, mapping = self._problem()

        # Clean reference: the same auto schedule on the serial engine.
        clean = ExchangeEngine(N_RANKS, runtime="engine",
                               clock=FixedStepClock())
        try:
            x_clean, selector_clean = self._auto_cycles(
                clean, hierarchy, mapping, matrix.n_rows)
        finally:
            clean.close()

        # Faulty run: SIGKILL a worker a few engine rounds in — inside the
        # selector's very first probe window.
        engine = ExchangeEngine(
            N_RANKS, runtime="procs", n_workers=N_WORKERS,
            fault_plan=FaultPlan([FaultSpec("crash", round=3, phase="send",
                                            worker=0)]),
            retry_backoff=0.01, clock=FixedStepClock())
        try:
            x_faulty, selector = self._auto_cycles(
                engine, hierarchy, mapping, matrix.n_rows)
            assert [event.action for event in engine.events] == ["retry"]
            assert not engine.degraded
        finally:
            engine.close()

        # Numerics survived the crash bit-for-bit.
        assert np.array_equal(x_faulty, x_clean)

        # The selector state machine came out healthy: every level is
        # committed, estimates are finite and positive, nothing half-probed.
        trace = selector.trace
        trace.validate()
        for level in selector.seeded_levels():
            assert not selector.is_probing(level)
            assert all(value > 0.0
                       for value in selector.estimates(level).values())
            assert trace.committed(level) == selector.committed(level)

        # The overlap is on the record: exactly one recovery event, on the
        # cycle the crash hit, and that cycle advanced no probe window.
        recoveries = trace.events(kind="recovery")
        assert len(recoveries) == 1
        assert recoveries[0].source == "runtime"
        tainted_cycle = recoveries[0].cycle
        assert all(event.cycle != tainted_cycle
                   for event in trace.events(kind="probe"))

        # Same decisions as the clean run — one cycle later (the discard).
        assert selector.choices() == selector_clean.choices()
        assert selector.cycles == selector_clean.cycles

    def test_fallback_mid_probe_keeps_the_selector_consistent(self):
        """Retries exhausted -> serial fallback mid-cycle: the cycle is
        still discarded (the engine recovered), later serial cycles are
        clean, and the selector converges."""
        from repro.collectives.autotune import FixedStepClock

        matrix, hierarchy, mapping = self._problem()
        engine = ExchangeEngine(
            N_RANKS, runtime="procs", n_workers=N_WORKERS,
            fault_plan=FaultPlan([FaultSpec("crash", round=3, phase="send",
                                            worker=0, attempt=None)]),
            max_retries=1, on_failure="fallback",
            retry_backoff=0.01, clock=FixedStepClock())
        try:
            x, selector = self._auto_cycles(
                engine, hierarchy, mapping, matrix.n_rows)
            assert engine.degraded
            assert [event.action for event in engine.events] == \
                ["retry", "give-up", "fallback"]
        finally:
            engine.close()
        trace = selector.trace
        trace.validate()
        assert len(trace.events(kind="recovery")) == 1
        for level in selector.seeded_levels():
            assert not selector.is_probing(level)
        assert np.isfinite(x).all()
