"""The shared-memory ``"procs"`` runtime: slab execution and lifecycle.

The golden suites (``tests/collectives/test_world_engine.py``,
``tests/amg/test_world_vcycle.py``) pin the procs runtime byte-identical to
the envelope-routed reference on their runtime axis; this module covers what
they do not:

* the dtype x item_size x empty-rank matrix executed *on the worker pool*
  (empty slabs, zero-row segments, multi-component items in shared memory),
* worker-count robustness (more workers than ranks, single worker),
* runtime selection (``REPRO_RUNTIME``, explicit ``runtime=`` validation),
* lifecycle hygiene: deterministic ``close`` / context-manager release,
  closed-engine errors, and a ``python -W error`` subprocess proving that
  neither explicit close nor the drop-the-engine finalizer backstop leaks a
  shared-memory ResourceWarning.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.collectives import Variant, WorldNeighborCollective, make_plan
from repro.pattern import CommPattern, random_pattern
from repro.simmpi import (
    ENGINE_RUNTIMES,
    RUNTIME_ENV,
    ExchangeEngine,
    default_runtime,
    default_worker_count,
)
from repro.topology import paper_mapping
from repro.utils.errors import CommunicationError, ValidationError

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _world_collective(plan, **kwargs):
    return WorldNeighborCollective(plan, **kwargs)


def _values(collective, dtype, item_size):
    out = []
    for rank in range(collective.n_ranks):
        base = (100 * rank + collective.owned_item_ids(rank)).astype(dtype)
        if item_size == 1:
            out.append(base)
        else:
            out.append(np.repeat(base[:, None], item_size, axis=1)
                       + np.arange(item_size, dtype=dtype))
    return out


class TestProcsExecution:
    """Worker-pool results == single-process engine results, byte for byte."""

    #: Rank 2 neither sends nor receives; rank 4 only sends; rank 1 sends to
    #: itself — the degenerate slab shapes the pool must survive.
    EMPTY_RANK_SENDS = {
        0: {1: [0, 1], 3: [2, 2]},
        1: {1: [5], 4: [6]},
        3: {0: [7, 8], 5: [9]},
        4: {5: [3], 0: [4]},
        5: {3: [1]},
    }

    @pytest.mark.parametrize("dtype,item_size", [
        (np.float32, 1), (np.float64, 3), (np.int64, 2), (np.complex128, 1),
    ])
    @pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
    def test_empty_rank_dtype_item_size_matrix(self, dtype, item_size, variant):
        n_ranks = 6
        pattern = CommPattern(n_ranks, self.EMPTY_RANK_SENDS,
                              dtype=dtype, item_size=item_size)
        mapping = paper_mapping(n_ranks, ranks_per_node=3)
        plan = make_plan(pattern, mapping, variant)

        with _world_collective(plan) as engine_side:
            expected = engine_side.exchange(
                _values(engine_side, dtype, item_size))
        with _world_collective(plan, runtime="procs",
                               n_workers=3) as procs_side:
            results = procs_side.exchange(_values(procs_side, dtype, item_size))

        assert procs_side.engine.runtime == "procs"
        for rank in range(n_ranks):
            assert results[rank].dtype == np.dtype(dtype)
            assert np.array_equal(expected[rank], results[rank])
        # Rank 2 is genuinely empty on this pattern.
        assert results[2].size == 0

    @pytest.mark.parametrize("n_workers", [1, 2, 5, 12])
    def test_worker_count_never_changes_results(self, n_workers):
        """1 worker, uneven slabs, and more workers than ranks all agree."""
        n_ranks = 8
        pattern = random_pattern(n_ranks, avg_neighbors=4,
                                 duplicate_fraction=0.4, seed=21)
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        plan = make_plan(pattern, mapping, Variant.PARTIAL)

        with _world_collective(plan) as engine_side:
            expected = engine_side.exchange(
                _values(engine_side, np.float64, 1))
        with _world_collective(plan, runtime="procs",
                               n_workers=n_workers) as procs_side:
            assert procs_side.engine.n_workers == n_workers
            results = procs_side.exchange(_values(procs_side, np.float64, 1))
        for rank in range(n_ranks):
            assert np.array_equal(expected[rank], results[rank])

    def test_multi_iteration_reuses_pool(self):
        """Iterations reuse the forked workers and stay byte-identical."""
        n_ranks = 6
        pattern = random_pattern(n_ranks, avg_neighbors=3, seed=9)
        mapping = paper_mapping(n_ranks, ranks_per_node=3)
        plan = make_plan(pattern, mapping, Variant.FULL)

        with _world_collective(plan) as engine_side, \
                _world_collective(plan, runtime="procs",
                                  n_workers=2) as procs_side:
            pool = procs_side.engine._pool
            assert pool.started
            for iteration in range(3):
                values = [(iteration + 1) * v for v in
                          _values(engine_side, np.float64, 1)]
                expected = engine_side.exchange(values)
                results = procs_side.exchange(values)
                for rank in range(n_ranks):
                    assert np.array_equal(expected[rank], results[rank])
            assert procs_side.engine._pool is pool


class TestRuntimeSelection:
    def test_env_flips_default_runtime(self, monkeypatch):
        monkeypatch.setenv(RUNTIME_ENV, "procs")
        assert default_runtime() == "procs"
        assert default_runtime(ENGINE_RUNTIMES) == "procs"
        engine = ExchangeEngine(4)
        assert engine.runtime == "procs"
        engine.close()

    def test_unknown_env_value_falls_back_to_engine(self, monkeypatch):
        monkeypatch.setenv(RUNTIME_ENV, "quantum")
        assert default_runtime() == "engine"
        assert ExchangeEngine(4).runtime == "engine"

    def test_threads_is_not_an_engine_runtime(self, monkeypatch):
        # The user surface accepts "threads"; the engine itself must not.
        monkeypatch.setenv(RUNTIME_ENV, "threads")
        assert default_runtime() == "threads"
        assert default_runtime(ENGINE_RUNTIMES) == "engine"
        with pytest.raises(ValidationError, match="engine runtime"):
            ExchangeEngine(4, runtime="threads")

    def test_worker_count_validation(self):
        with pytest.raises(ValidationError, match="n_workers"):
            ExchangeEngine(4, runtime="procs", n_workers=0)

    def test_default_worker_count_bounds(self):
        assert default_worker_count(1) == 1
        assert 1 <= default_worker_count(10 ** 6)
        assert default_worker_count(3) <= 3


class TestLifecycle:
    def _registered_engine(self):
        n_ranks = 4
        pattern = random_pattern(n_ranks, avg_neighbors=2, seed=3)
        mapping = paper_mapping(n_ranks, ranks_per_node=2)
        plan = make_plan(pattern, mapping, Variant.STANDARD)
        return _world_collective(plan, runtime="procs", n_workers=2)

    def test_close_is_idempotent_and_flags(self):
        collective = self._registered_engine()
        engine = collective.engine
        assert not engine.closed
        collective.close()
        assert engine.closed
        collective.close()
        engine.close()

    def test_context_manager_closes(self):
        with self._registered_engine() as collective:
            engine = collective.engine
            assert not engine.closed
        assert engine.closed

    def test_closed_engine_rejects_use(self):
        collective = self._registered_engine()
        values = _values(collective, np.float64, 1)
        collective.exchange(values)
        collective.close()
        with pytest.raises(CommunicationError, match="closed"):
            collective.exchange(values)
        with pytest.raises(CommunicationError, match="closed"):
            collective.engine.register(None)

    def test_engine_never_forks_until_registration(self):
        engine = ExchangeEngine(4, runtime="procs", n_workers=2)
        assert not engine._pool.started
        engine.close()

    def test_engine_runtime_owns_no_pool(self):
        engine = ExchangeEngine(4, runtime="engine")
        assert engine._pool is None
        assert engine.n_workers == 1
        engine.close()
        assert engine.closed


#: Exercised in a subprocess so interpreter shutdown is part of the test:
#: one engine closed explicitly, one dropped for the finalize backstop,
#: with every warning (ResourceWarning included) promoted to an error.
_HYGIENE_SCRIPT = textwrap.dedent("""
    import gc
    import numpy as np
    from repro.collectives import Variant, WorldNeighborCollective, make_plan
    from repro.pattern import random_pattern
    from repro.topology import paper_mapping

    pattern = random_pattern(6, avg_neighbors=3, seed=4)
    mapping = paper_mapping(6, ranks_per_node=3)
    plan = make_plan(pattern, mapping, Variant.FULL)

    def values(c):
        return [100.0 * r + c.owned_item_ids(r).astype(np.float64)
                for r in range(c.n_ranks)]

    with WorldNeighborCollective(plan, runtime="procs", n_workers=2) as closed:
        closed.exchange(values(closed))

    dropped = WorldNeighborCollective(plan, runtime="procs", n_workers=2)
    dropped.exchange(values(dropped))
    del dropped
    gc.collect()
    print("OK")
""")


def test_no_resource_warnings_under_w_error():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop(RUNTIME_ENV, None)
    result = subprocess.run(
        [sys.executable, "-W", "error", "-c", _HYGIENE_SCRIPT],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout
    assert "ResourceWarning" not in result.stderr
    assert "leaked" not in result.stderr
