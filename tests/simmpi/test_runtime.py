"""Unit tests for the simulated MPI runtime: fabric, requests, communicators."""

import numpy as np
import pytest

from repro.simmpi.comm import SimComm
from repro.simmpi.mailbox import Envelope, MessageFabric
from repro.simmpi.request import start_all, wait_all
from repro.simmpi.world import SimWorld, run_spmd
from repro.utils.errors import CommunicationError


class TestMessageFabric:
    def test_deliver_then_collect(self):
        fabric = MessageFabric(2)
        fabric.deliver(Envelope(source=0, dest=1, tag=5, context=0, payload="hi"))
        envelope = fabric.collect(1, 0, 5, 0)
        assert envelope.payload == "hi"

    def test_fifo_per_key(self):
        fabric = MessageFabric(2)
        for value in ("a", "b", "c"):
            fabric.deliver(Envelope(source=0, dest=1, tag=1, context=0, payload=value))
        received = [fabric.collect(1, 0, 1, 0).payload for _ in range(3)]
        assert received == ["a", "b", "c"]

    def test_tags_do_not_cross_match(self):
        fabric = MessageFabric(2)
        fabric.deliver(Envelope(source=0, dest=1, tag=1, context=0, payload="t1"))
        fabric.deliver(Envelope(source=0, dest=1, tag=2, context=0, payload="t2"))
        assert fabric.collect(1, 0, 2, 0).payload == "t2"

    def test_contexts_do_not_cross_match(self):
        fabric = MessageFabric(2)
        fabric.deliver(Envelope(source=0, dest=1, tag=1, context=7, payload="ctx7"))
        assert fabric.try_collect(1, 0, 1, 0) is None
        assert fabric.try_collect(1, 0, 1, 7).payload == "ctx7"

    def test_timeout_raises(self):
        fabric = MessageFabric(2, timeout=0.1)
        with pytest.raises(CommunicationError, match="timed out"):
            fabric.collect(0, 1, 0, 0)

    def test_rank_range_checked(self):
        fabric = MessageFabric(2)
        with pytest.raises(CommunicationError):
            fabric.deliver(Envelope(source=0, dest=5, tag=0, context=0, payload=None))

    def test_abort_wakes_receivers(self):
        fabric = MessageFabric(2, timeout=5.0)
        fabric.abort("test failure")
        with pytest.raises(CommunicationError, match="aborted"):
            fabric.collect(0, 1, 0, 0)

    def test_pending_count(self):
        fabric = MessageFabric(2)
        assert fabric.pending_count() == 0
        fabric.deliver(Envelope(source=0, dest=1, tag=0, context=0, payload=1))
        assert fabric.pending_count() == 1

    def test_envelope_nbytes(self):
        env = Envelope(source=0, dest=1, tag=0, context=0,
                       payload=np.zeros(10, dtype=np.float64))
        assert env.nbytes == 80
        assert env.is_array
        # Object payloads are estimated via their pickled size (setup-phase
        # traffic must not be accounted as zero bytes).
        obj = Envelope(source=0, dest=1, tag=0, context=0, payload="x")
        assert not obj.is_array
        assert obj.nbytes > 0
        big = Envelope(source=0, dest=1, tag=0, context=0,
                       payload={"items": list(range(1000))})
        assert big.nbytes > obj.nbytes


class TestPersistentRequests:
    def test_persistent_roundtrip_multiple_iterations(self):
        def program(comm):
            peer = 1 - comm.rank
            send_buffer = np.zeros(3)
            recv_buffer = np.zeros(3)
            send = comm.send_init(send_buffer, dest=peer, tag=2)
            recv = comm.recv_init(recv_buffer, source=peer, tag=2)
            results = []
            for iteration in range(3):
                send_buffer[:] = comm.rank * 10 + iteration
                start_all([send, recv])
                wait_all([send, recv])
                results.append(recv_buffer.copy())
            return results

        results = run_spmd(2, program)
        for iteration in range(3):
            assert np.all(results[0][iteration] == 10 + iteration)
            assert np.all(results[1][iteration] == iteration)

    def test_start_twice_raises(self):
        def program(comm):
            if comm.rank == 0:
                send = comm.send_init(np.zeros(1), dest=1, tag=0)
                send.start()
                send.start()
            return True

        with pytest.raises(CommunicationError, match="started twice"):
            run_spmd(2, program, timeout=5)

    def test_wait_without_start_raises(self):
        def program(comm):
            recv = comm.recv_init(np.zeros(1), source=(comm.rank + 1) % comm.size, tag=0)
            recv.wait()

        with pytest.raises(CommunicationError, match="inactive"):
            run_spmd(2, program, timeout=5)

    def test_size_mismatch_raises(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dest=1, tag=0)
            else:
                comm.recv(np.zeros(2), source=0, tag=0)

        with pytest.raises(CommunicationError, match="does not match"):
            run_spmd(2, program, timeout=5)

    def test_send_snapshots_buffer_at_start(self):
        """Modifying the send buffer after start must not corrupt the message."""
        def program(comm):
            if comm.rank == 0:
                buffer = np.full(2, 1.0)
                send = comm.send_init(buffer, dest=1, tag=0)
                send.start()
                buffer[:] = 99.0
                send.wait()
                return None
            out = np.zeros(2)
            comm.recv(out, source=0, tag=0)
            return out

        results = run_spmd(2, program)
        assert np.all(results[1] == 1.0)


class TestCollectives:
    def test_barrier_completes(self):
        assert run_spmd(5, lambda comm: comm.barrier() or True) == [True] * 5

    def test_allgather_obj(self):
        results = run_spmd(4, lambda comm: comm.allgather_obj(comm.rank * 2))
        assert all(r == [0, 2, 4, 6] for r in results)

    def test_bcast_obj(self):
        results = run_spmd(3, lambda comm: comm.bcast_obj(
            {"value": 42} if comm.rank == 0 else None))
        assert all(r == {"value": 42} for r in results)

    def test_allreduce_sum_and_max(self):
        sums = run_spmd(4, lambda comm: comm.allreduce(float(comm.rank)))
        maxima = run_spmd(4, lambda comm: comm.reduce_scalar_max(float(comm.rank)))
        assert all(s == 6.0 for s in sums)
        assert all(m == 3.0 for m in maxima)

    def test_alltoall_obj(self):
        results = run_spmd(3, lambda comm: comm.alltoall_obj(
            [f"{comm.rank}->{dest}" for dest in range(comm.size)]))
        assert results[2] == ["0->2", "1->2", "2->2"]

    def test_alltoall_requires_size_entries(self):
        def program(comm):
            comm.alltoall_obj([1])

        with pytest.raises(CommunicationError):
            run_spmd(3, program, timeout=5)


class TestWorld:
    def test_results_indexed_by_rank(self):
        assert run_spmd(6, lambda comm: comm.rank ** 2) == [0, 1, 4, 9, 16, 25]

    def test_rank_args(self):
        results = run_spmd(3, lambda comm, shared, extra: (shared, extra),
                           "common", rank_args=[("a",), ("b",), ("c",)])
        assert results == [("common", "a"), ("common", "b"), ("common", "c")]

    def test_exception_identifies_failing_rank(self):
        def program(comm):
            if comm.rank == 2:
                raise ValueError("boom on rank 2")
            comm.barrier()

        with pytest.raises(CommunicationError, match="rank 2"):
            run_spmd(4, program, timeout=5)

    def test_wrong_rank_args_length(self):
        world = SimWorld(2)
        with pytest.raises(CommunicationError):
            world.run(lambda comm: None, rank_args=[()])

    def test_comm_dup_isolates_traffic(self):
        def program(comm):
            dup = comm.dup()
            peer = 1 - comm.rank
            # Same tag on both communicators: contexts must keep them apart.
            comm.send_obj(f"base-{comm.rank}", peer, tag=3)
            dup.send_obj(f"dup-{comm.rank}", peer, tag=3)
            base_msg = comm.recv_obj(peer, tag=3)
            dup_msg = dup.recv_obj(peer, tag=3)
            return base_msg, dup_msg

        results = run_spmd(2, program)
        assert results[0] == ("base-1", "dup-1")
        assert results[1] == ("base-0", "dup-0")

    def test_invalid_peer_rejected(self):
        def program(comm):
            comm.send(np.zeros(1), dest=99)

        with pytest.raises(CommunicationError):
            run_spmd(2, program, timeout=5)

    def test_internal_tag_range_protected(self):
        def program(comm):
            comm.send_init(np.zeros(1), dest=0, tag=1 << 21)

        with pytest.raises(CommunicationError, match="tags"):
            run_spmd(2, program, timeout=5)
