"""Unit tests for distributed-graph communicators and the traffic profiler."""

import numpy as np
import pytest

from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.simmpi.world import SimWorld, run_spmd
from repro.topology.machine import Locality
from repro.topology.presets import paper_mapping
from repro.utils.errors import CommunicationError, ValidationError


class TestDistGraphCreateAdjacent:
    def test_ring_graph(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            graph = dist_graph_create_adjacent(comm, sources=[left],
                                               destinations=[right])
            return graph.indegree, graph.outdegree, graph.rank

        results = run_spmd(4, program)
        assert all(r == (1, 1, rank) for rank, r in enumerate(results))

    def test_neighbors_returned_in_call_order(self):
        def program(comm):
            others = [r for r in range(comm.size) if r != comm.rank]
            graph = dist_graph_create_adjacent(comm, sources=others[::-1],
                                               destinations=others)
            sources, destinations = graph.neighbors()
            return sources.tolist(), destinations.tolist()

        results = run_spmd(3, program)
        assert results[0] == ([2, 1], [1, 2])

    def test_inconsistent_edges_detected(self):
        def program(comm):
            # Rank 0 claims to receive from rank 1, but rank 1 sends nothing.
            sources = [1] if comm.rank == 0 else []
            destinations = []
            return dist_graph_create_adjacent(comm, sources, destinations)

        with pytest.raises(CommunicationError, match="does not list"):
            run_spmd(2, program, timeout=5)

    def test_validation_can_be_skipped(self):
        def program(comm):
            sources = [1] if comm.rank == 0 else []
            graph = dist_graph_create_adjacent(comm, sources, [], validate=False)
            return graph.indegree

        assert run_spmd(2, program) == [1, 0]

    def test_out_of_range_neighbor_rejected(self):
        def program(comm):
            dist_graph_create_adjacent(comm, [99], [])

        with pytest.raises(CommunicationError):
            run_spmd(2, program, timeout=5)

    def test_out_of_range_neighbor_rejected_before_any_exchange(self):
        """Malformed lists fail as ValidationError on the calling rank, before
        the (collective) consistency exchange can deadlock or misbehave."""
        comm = SimWorld(2).comm(0)
        with pytest.raises(ValidationError, match="outside the communicator"):
            dist_graph_create_adjacent(comm, [99], [], validate=True)
        with pytest.raises(ValidationError, match="outside the communicator"):
            dist_graph_create_adjacent(comm, [], [-1], validate=False)

    def test_duplicate_neighbors_rejected(self):
        comm = SimWorld(4).comm(0)
        with pytest.raises(ValidationError, match="sources contains duplicate"):
            dist_graph_create_adjacent(comm, [1, 2, 1], [3], validate=False)
        with pytest.raises(ValidationError, match="destinations contains duplicate"):
            dist_graph_create_adjacent(comm, [1], [3, 3], validate=False)

        def program(comm):
            dist_graph_create_adjacent(comm, [], [1 % comm.size, 1 % comm.size])

        with pytest.raises(CommunicationError, match="duplicate"):
            run_spmd(2, program, timeout=5)

    def test_weights_must_match_lengths(self):
        def program(comm):
            dist_graph_create_adjacent(comm, [0], [0], sourceweights=[1, 2])

        with pytest.raises(CommunicationError):
            run_spmd(2, program, timeout=5)

    def test_graph_comm_uses_duplicated_context(self):
        def program(comm):
            graph = dist_graph_create_adjacent(comm, [], [])
            return graph.comm.context != comm.context

        assert all(run_spmd(2, program))


class TestTrafficProfiler:
    def test_records_locality_and_bytes(self):
        mapping = paper_mapping(8, ranks_per_node=4)
        profiler = TrafficProfiler(mapping)
        world = SimWorld(8, profiler=profiler)

        def program(comm):
            # Every rank sends 4 float64 to the next rank (32 bytes each).
            dest = (comm.rank + 1) % comm.size
            comm.send(np.zeros(4), dest=dest, tag=1)
            comm.recv(np.zeros(4), source=(comm.rank - 1) % comm.size, tag=1)

        world.run(program)
        total = profiler.total()
        assert total.message_count == 8
        assert total.byte_count == 8 * 32
        by_locality = profiler.by_locality()
        # Ring over two nodes of four ranks: 6 intra-node hops, 2 inter-node.
        assert by_locality[Locality.INTRA_SOCKET].message_count == 6
        assert by_locality[Locality.INTER_NODE].message_count == 2

    def test_per_rank_and_maxima(self):
        mapping = paper_mapping(4, ranks_per_node=4)
        profiler = TrafficProfiler(mapping)
        world = SimWorld(4, profiler=profiler)

        def program(comm):
            if comm.rank == 0:
                for dest in (1, 2, 3):
                    comm.send(np.zeros(2), dest=dest, tag=0)
            else:
                comm.recv(np.zeros(2), source=0, tag=0)

        world.run(program)
        assert profiler.max_messages_per_rank() == 3
        assert profiler.max_bytes_per_rank() == 3 * 16
        assert set(profiler.per_rank().keys()) == {0}

    def test_object_messages_ignored_by_default(self):
        profiler = TrafficProfiler()
        world = SimWorld(2, profiler=profiler)
        world.run(lambda comm: comm.allgather_obj(comm.rank))
        assert profiler.total().message_count == 0

    def test_clear(self):
        mapping = paper_mapping(2, ranks_per_node=2)
        profiler = TrafficProfiler(mapping)
        world = SimWorld(2, profiler=profiler)
        world.run(lambda comm: comm.send(np.zeros(1), dest=1 - comm.rank, tag=0) or
                  comm.recv(np.zeros(1), source=1 - comm.rank, tag=0))
        assert profiler.total().message_count > 0
        profiler.clear()
        assert profiler.total().message_count == 0

    def test_inter_region_records(self):
        mapping = paper_mapping(8, ranks_per_node=4)
        profiler = TrafficProfiler(mapping)
        world = SimWorld(8, profiler=profiler)

        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1), dest=7, tag=0)   # crosses node boundary
                comm.send(np.zeros(1), dest=1, tag=0)   # stays on node
            elif comm.rank in (1, 7):
                comm.recv(np.zeros(1), source=0, tag=0)

        world.run(program)
        inter = profiler.inter_region_records()
        assert len(inter) == 1 and inter[0].dest == 7
