"""Property tests for the solve phase.

The V-cycle iteration must be a contraction on the rotated anisotropic
diffusion systems the experiments build (convergence factor < 1, monotone
residual history), for the seed solver and the world-stepped solver alike;
and :meth:`SolveResult.convergence_factor` must behave at its edges — zero
iterations, an exact initial guess, and the ``residual_norms[0] == 0.0``
early-return path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.amg.hierarchy import build_hierarchy
from repro.amg.solver import BoomerAMGSolver, SolveResult
from repro.amg.vcycle import WorldAMGSolver
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping


@pytest.fixture(scope="module")
def anisotropic_matrix():
    return ParCSRMatrix(rotated_anisotropic_diffusion((28, 28), epsilon=0.001,
                                                      theta=math.pi / 4.0),
                        RowPartition.even(784, 8))


@pytest.fixture(scope="module")
def anisotropic_hierarchy(anisotropic_matrix):
    return build_hierarchy(anisotropic_matrix, seed=3)


@pytest.fixture(scope="module")
def mapping():
    return paper_mapping(8, ranks_per_node=4)


@pytest.mark.parametrize("rhs_seed", [0, 1, 2])
def test_world_vcycle_is_a_contraction(anisotropic_matrix, anisotropic_hierarchy,
                                       mapping, rhs_seed):
    """Residuals shrink monotonically and the convergence factor is < 1."""
    rng = np.random.default_rng(rhs_seed)
    b = rng.standard_normal(anisotropic_matrix.n_rows)
    solver = WorldAMGSolver(anisotropic_matrix, mapping,
                            hierarchy=anisotropic_hierarchy)
    result = solver.solve(b, tol=1e-10, max_iterations=25)
    assert result.iterations >= 2
    assert 0.0 < result.convergence_factor() < 1.0
    norms = result.residual_norms
    assert all(later < earlier for earlier, later in zip(norms, norms[1:]))


def test_seed_and_world_convergence_factors_agree(anisotropic_matrix,
                                                  anisotropic_hierarchy,
                                                  mapping):
    b = np.ones(anisotropic_matrix.n_rows)
    seed = BoomerAMGSolver(anisotropic_matrix,
                           hierarchy=anisotropic_hierarchy).solve(
        b, tol=1e-8, max_iterations=50)
    world = WorldAMGSolver(anisotropic_matrix, mapping,
                           hierarchy=anisotropic_hierarchy).solve(
        b, tol=1e-8, max_iterations=50)
    assert world.iterations == seed.iterations
    assert abs(world.convergence_factor() - seed.convergence_factor()) < 1e-8


class TestSolveResultEdgeCases:
    def test_zero_iterations_has_zero_convergence_factor(self):
        result = SolveResult(solution=np.zeros(3), residual_norms=[1.0],
                             iterations=0, converged=False)
        assert result.convergence_factor() == 0.0
        assert result.final_residual == 1.0

    def test_no_recorded_norms_reports_infinite_residual(self):
        result = SolveResult(solution=np.zeros(3))
        assert result.final_residual == float("inf")
        assert result.convergence_factor() == 0.0

    def test_zero_initial_residual_guard(self):
        """``residual_norms[0] == 0.0`` must not divide by zero."""
        result = SolveResult(solution=np.zeros(3), residual_norms=[0.0, 0.0],
                             iterations=1, converged=True)
        assert result.convergence_factor() == 0.0

    @pytest.mark.parametrize("make_solver", ["seed", "world"])
    def test_zero_rhs_early_return(self, anisotropic_matrix,
                                   anisotropic_hierarchy, mapping, make_solver):
        """A zero RHS takes the ``residual_norms[0] == 0.0`` early return."""
        if make_solver == "seed":
            solver = BoomerAMGSolver(anisotropic_matrix,
                                     hierarchy=anisotropic_hierarchy)
        else:
            solver = WorldAMGSolver(anisotropic_matrix, mapping,
                                    hierarchy=anisotropic_hierarchy)
        result = solver.solve(np.zeros(anisotropic_matrix.n_rows))
        assert result.converged
        assert result.iterations == 0
        assert result.residual_norms == [0.0]
        assert result.convergence_factor() == 0.0
        assert np.array_equal(result.solution,
                              np.zeros(anisotropic_matrix.n_rows))

    def test_exact_initial_guess_early_return_seed(self, anisotropic_matrix,
                                                   anisotropic_hierarchy, rng):
        """x0 with an exactly-zero residual converges in zero iterations."""
        solver = BoomerAMGSolver(anisotropic_matrix,
                                 hierarchy=anisotropic_hierarchy)
        x_exact = rng.random(anisotropic_matrix.n_rows)
        # The solver computes its residual as b - A @ x, so building b with
        # the same expression makes the initial residual exactly zero.
        b = anisotropic_matrix.matrix @ x_exact
        result = solver.solve(b, x0=x_exact)
        assert result.converged and result.iterations == 0
        assert result.residual_norms == [0.0]
        assert np.array_equal(result.solution, x_exact)

    def test_exact_initial_guess_early_return_world(self, anisotropic_matrix,
                                                    anisotropic_hierarchy,
                                                    mapping, rng):
        solver = WorldAMGSolver(anisotropic_matrix, mapping,
                                hierarchy=anisotropic_hierarchy)
        x_exact = rng.random(anisotropic_matrix.n_rows)
        # The world solver's residual runs through the distributed SpMV, so
        # the exactly-representable RHS is the distributed product.
        b = solver.vcycle_executor.fine_spmv.multiply(x_exact)
        result = solver.solve(b, x0=x_exact)
        assert result.converged and result.iterations == 0
        assert result.residual_norms == [0.0]
        assert np.array_equal(result.solution, x_exact)
