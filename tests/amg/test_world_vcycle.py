"""Golden solve-phase equivalence suite.

The distributed V-cycle exists in three forms that must agree:

* the seed :class:`BoomerAMGSolver` relaxing on the assembled global
  operators (the numerical reference),
* :class:`DistributedVCycle`, one rank per thread on the envelope-routed
  runtime (the pinned byte-level reference for the engine), and
* :class:`WorldVCycle`, whole cycles for all ranks through the batched
  :class:`ExchangeEngine` — on both engine runtimes (single-process fused
  kernels and the ``"procs"`` shared-memory worker pool).

World vs envelope is pinned *byte-identical* — results and per-level
data-path profiler totals — across stencils x partitions x mappings x sweep
counts x variants; both are pinned numerically identical (to rounding)
against the seed solver, and the executed per-level traffic of a cycle is
pinned equal to the planner's predicted statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg.hierarchy import build_hierarchy
from repro.amg.solver import BoomerAMGSolver
from repro.amg.vcycle import (
    DistributedVCycle,
    WorldAMGSolver,
    WorldVCycle,
    coarse_gather_pattern,
)
from repro.collectives.planner import make_plan
from repro.collectives.plan import Variant
from repro.pattern.statistics import PatternStatistics
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.world import run_spmd
from repro.sparse.comm_pkg import pattern_from_parcsr, transfer_pattern
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError

N_RANKS = 8

#: stencil x partition variations; the uneven partition includes an empty rank.
CONFIGS = {
    "poisson_even": (poisson_2d((20, 20)),
                     RowPartition.even(400, N_RANKS)),
    "anisotropic_uneven": (rotated_anisotropic_diffusion((24, 24)),
                           RowPartition([0, 90, 170, 170, 260, 350, 440, 510, 576])),
}


def _build(config_key: str):
    stencil, partition = CONFIGS[config_key]
    matrix = ParCSRMatrix(stencil, partition)
    hierarchy = build_hierarchy(matrix, seed=1)
    return matrix, hierarchy


def _distributed_cycle(hierarchy, mapping, b, x0, *, variant,
                       pre_sweeps=1, post_sweeps=1, level_profilers=None):
    """One envelope-routed V-cycle for all ranks; returns the global iterate."""
    partition = hierarchy.levels[0].matrix.partition

    def program(comm):
        vcycle = DistributedVCycle(comm, hierarchy, mapping, variant=variant,
                                   pre_sweeps=pre_sweeps, post_sweeps=post_sweeps,
                                   level_profilers=level_profilers)
        first, last = partition.row_range(comm.rank)
        return vcycle.cycle(b[first:last], x0[first:last])

    per_rank = run_spmd(partition.n_ranks, program, timeout=120)
    return np.concatenate([np.asarray(values) for values in per_rank])


def _sorted_columns(profiler):
    sources, dests, nbytes = profiler.data_columns()
    order = np.lexsort((nbytes, dests, sources))
    return sources[order], dests[order], nbytes[order]


@pytest.mark.parametrize("runtime,n_workers", [("engine", None), ("procs", 2)])
@pytest.mark.parametrize("config_key", sorted(CONFIGS))
@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL,
                                     Variant.FULL])
def test_world_cycle_byte_identical_to_envelope_and_matches_seed(
        config_key, variant, runtime, n_workers, rng):
    matrix, hierarchy = _build(config_key)
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    b = rng.standard_normal(matrix.n_rows)
    x0 = rng.standard_normal(matrix.n_rows)

    with WorldVCycle(hierarchy, mapping, variant=variant, runtime=runtime,
                     n_workers=n_workers) as world:
        world_x = world.cycle(b, x0)
    envelope_x = _distributed_cycle(hierarchy, mapping, b, x0, variant=variant)
    assert np.array_equal(world_x, envelope_x)

    seed_x = BoomerAMGSolver(matrix, hierarchy=hierarchy).vcycle(b, x0)
    np.testing.assert_allclose(world_x, seed_x, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("pre_sweeps,post_sweeps", [(2, 0), (0, 2), (2, 2)])
def test_world_cycle_equivalence_across_sweep_counts(pre_sweeps, post_sweeps, rng):
    matrix, hierarchy = _build("poisson_even")
    mapping = paper_mapping(N_RANKS, ranks_per_node=8)
    b = rng.standard_normal(matrix.n_rows)
    x0 = rng.standard_normal(matrix.n_rows)

    world = WorldVCycle(hierarchy, mapping, variant=Variant.FULL,
                        pre_sweeps=pre_sweeps, post_sweeps=post_sweeps)
    world_x = world.cycle(b, x0)
    envelope_x = _distributed_cycle(hierarchy, mapping, b, x0,
                                    variant=Variant.FULL,
                                    pre_sweeps=pre_sweeps,
                                    post_sweeps=post_sweeps)
    assert np.array_equal(world_x, envelope_x)

    seed = BoomerAMGSolver(matrix, hierarchy=hierarchy,
                           pre_sweeps=pre_sweeps, post_sweeps=post_sweeps)
    np.testing.assert_allclose(world_x, seed.vcycle(b, x0),
                               rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("ranks_per_node", [4, 8])
def test_world_cycle_identical_across_mappings(ranks_per_node, rng):
    """The mapping changes plans (regions), never the numerical result."""
    matrix, hierarchy = _build("anisotropic_uneven")
    mapping = paper_mapping(N_RANKS, ranks_per_node=ranks_per_node)
    b = rng.standard_normal(matrix.n_rows)
    x0 = rng.standard_normal(matrix.n_rows)
    world_x = WorldVCycle(hierarchy, mapping, variant=Variant.FULL).cycle(b, x0)
    envelope_x = _distributed_cycle(hierarchy, mapping, b, x0,
                                    variant=Variant.FULL)
    assert np.array_equal(world_x, envelope_x)
    np.testing.assert_allclose(
        world_x, BoomerAMGSolver(matrix, hierarchy=hierarchy).vcycle(b, x0),
        rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
def test_per_level_profiler_totals_identical(variant, rng):
    """World engine and envelope runtime move identical per-level traffic."""
    matrix, hierarchy = _build("poisson_even")
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    b = rng.standard_normal(matrix.n_rows)
    x0 = rng.standard_normal(matrix.n_rows)
    n_levels = hierarchy.n_levels

    world_profilers = [TrafficProfiler(mapping) for _ in range(n_levels)]
    WorldVCycle(hierarchy, mapping, variant=variant,
                level_profilers=world_profilers).cycle(b, x0)

    envelope_profilers = [TrafficProfiler(mapping) for _ in range(n_levels)]
    _distributed_cycle(hierarchy, mapping, b, x0, variant=variant,
                       level_profilers=envelope_profilers)

    for world_prof, envelope_prof in zip(world_profilers, envelope_profilers):
        for world_column, envelope_column in zip(_sorted_columns(world_prof),
                                                 _sorted_columns(envelope_prof)):
            assert np.array_equal(world_column, envelope_column)


def _merged(parts):
    result = parts[0]
    for part in parts[1:]:
        result = result.merged_with(part)
    return result


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
def test_executed_cycle_statistics_match_planned(variant, rng):
    """Per-level executed traffic of a cycle equals the planner's prediction.

    A (non-coarsest) level performs ``pre_sweeps + 1 + post_sweeps`` operator
    exchanges plus one restriction and one prolongation; the coarsest level
    performs one gather round.  Summing the planned per-rank statistics of
    those plans must reproduce the profiler-observed traffic exactly.
    """
    matrix, hierarchy = _build("anisotropic_uneven")
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    b = rng.standard_normal(matrix.n_rows)
    x0 = rng.standard_normal(matrix.n_rows)
    n_levels = hierarchy.n_levels

    profilers = [TrafficProfiler(mapping) for _ in range(n_levels)]
    WorldVCycle(hierarchy, mapping, variant=variant,
                level_profilers=profilers).cycle(b, x0)

    for index in range(n_levels):
        if index < n_levels - 1:
            operator_stats = make_plan(
                pattern_from_parcsr(hierarchy.levels[index].matrix), mapping,
                variant).statistics()
            restrict_stats = make_plan(
                transfer_pattern(hierarchy.restriction_matrix(index)), mapping,
                variant).statistics()
            prolong_stats = make_plan(
                transfer_pattern(hierarchy.prolongation_matrix(index)), mapping,
                variant).statistics()
            expected = _merged([operator_stats] * 3
                               + [restrict_stats, prolong_stats])
        else:
            expected = make_plan(
                coarse_gather_pattern(hierarchy.levels[index].matrix.partition),
                mapping, variant).statistics()
        sources, dests, nbytes = profilers[index].data_columns()
        observed = PatternStatistics(n_ranks=N_RANKS)
        if sources.size:
            observed.add_messages(sources,
                                  mapping.same_region_many(sources, dests),
                                  nbytes)
        assert np.array_equal(observed.local_messages, expected.local_messages)
        assert np.array_equal(observed.global_messages, expected.global_messages)
        assert np.array_equal(observed.local_bytes, expected.local_bytes)
        assert np.array_equal(observed.global_bytes, expected.global_bytes)


def test_world_solver_matches_seed_solver(rng):
    matrix, hierarchy = _build("poisson_even")
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    x_exact = rng.random(matrix.n_rows)
    b = matrix.matrix @ x_exact

    seed_result = BoomerAMGSolver(matrix, hierarchy=hierarchy).solve(
        b, tol=1e-8, max_iterations=100)
    world_result = WorldAMGSolver(matrix, mapping,
                                  hierarchy=hierarchy).solve(
        b, tol=1e-8, max_iterations=100)

    assert world_result.converged and seed_result.converged
    assert world_result.iterations == seed_result.iterations
    np.testing.assert_allclose(world_result.solution, seed_result.solution,
                               rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(world_result.residual_norms,
                               seed_result.residual_norms,
                               rtol=1e-6, atol=1e-12)


def test_world_solver_reuses_shared_engine(rng):
    """All levels of a solve can register with one caller-supplied engine."""
    from repro.simmpi.world import SimWorld

    matrix, hierarchy = _build("poisson_even")
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    world = SimWorld(N_RANKS, profiler=TrafficProfiler(mapping))
    engine = world.exchange_engine()
    solver = WorldAMGSolver(matrix, mapping, hierarchy=hierarchy, engine=engine)
    b = rng.standard_normal(matrix.n_rows)
    result = solver.solve(b, tol=1e-6, max_iterations=50)
    assert result.converged
    assert world.profiler.total().message_count > 0


def test_vcycle_validation():
    matrix, hierarchy = _build("poisson_even")
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    world = WorldVCycle(hierarchy, mapping)
    with pytest.raises(ValidationError):
        world.cycle(np.zeros(3), np.zeros(3))
    with pytest.raises(ValidationError):
        WorldVCycle(hierarchy, mapping, pre_sweeps=-1)
    with pytest.raises(ValidationError):
        WorldVCycle(hierarchy, mapping,
                    level_profilers=[TrafficProfiler(mapping)])
    # A profiler alongside an engine (or per-level profilers) would be
    # silently ignored; the conflict must be rejected instead.
    from repro.simmpi.engine import ExchangeEngine

    with pytest.raises(ValidationError):
        WorldVCycle(hierarchy, mapping, engine=ExchangeEngine(N_RANKS),
                    profiler=TrafficProfiler(mapping))
    # A mapping smaller than the hierarchy's partition must fail up front
    # with a clear error, not deep inside the planner.
    with pytest.raises(ValidationError, match="mapping covers"):
        WorldVCycle(hierarchy, paper_mapping(4, ranks_per_node=4))
