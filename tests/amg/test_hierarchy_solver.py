"""Unit tests for hierarchy construction, redistribution, the V-cycle solver,
and per-level communication analysis."""

import numpy as np
import pytest

from repro.amg.comm_analysis import hierarchy_comm_profiles, level_partitions, level_patterns
from repro.amg.hierarchy import build_hierarchy, redistribute_hierarchy
from repro.amg.solver import BoomerAMGSolver
from repro.collectives.plan import Variant
from repro.perfmodel.params import lassen_parameters
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def poisson_matrix():
    return ParCSRMatrix(poisson_2d((24, 24)), RowPartition.even(576, 16))


@pytest.fixture(scope="module")
def poisson_hierarchy(poisson_matrix):
    return build_hierarchy(poisson_matrix, seed=1)


@pytest.fixture(scope="module")
def anisotropic_matrix():
    return ParCSRMatrix(rotated_anisotropic_diffusion((32, 32)),
                        RowPartition.even(1024, 16))


class TestHierarchyConstruction:
    def test_levels_shrink_monotonically(self, poisson_hierarchy):
        sizes = [level.n_rows for level in poisson_hierarchy.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert poisson_hierarchy.n_levels >= 3

    def test_coarsest_level_small(self, poisson_hierarchy):
        assert poisson_hierarchy.levels[-1].n_rows <= 16 or \
            poisson_hierarchy.n_levels == 25

    def test_prolongation_shapes_chain(self, poisson_hierarchy):
        for level, next_level in zip(poisson_hierarchy.levels,
                                     poisson_hierarchy.levels[1:]):
            assert level.prolongation is not None
            assert level.prolongation.shape == (level.n_rows, next_level.n_rows)
        assert poisson_hierarchy.levels[-1].prolongation is None

    def test_partitions_consistent_per_level(self, poisson_hierarchy):
        for level in poisson_hierarchy.levels:
            assert level.matrix.partition.n_rows == level.n_rows
            assert level.matrix.partition.n_ranks == 16

    def test_complexities(self, poisson_hierarchy):
        assert 1.0 < poisson_hierarchy.operator_complexity() < 3.5
        assert 1.0 < poisson_hierarchy.grid_complexity() < 2.5

    def test_describe(self, poisson_hierarchy):
        text = poisson_hierarchy.describe()
        assert "levels" in text and "level  0" in text

    def test_max_levels_respected(self, poisson_matrix):
        hierarchy = build_hierarchy(poisson_matrix, max_levels=2)
        assert hierarchy.n_levels <= 2

    def test_deterministic_with_seed(self, poisson_matrix):
        a = build_hierarchy(poisson_matrix, seed=3)
        b = build_hierarchy(poisson_matrix, seed=3)
        assert [l.n_rows for l in a.levels] == [l.n_rows for l in b.levels]

    def test_coarse_ownership_follows_fine_rows(self, poisson_hierarchy):
        """A coarse row is owned by the rank owning the fine row it came from."""
        level = poisson_hierarchy.levels[0]
        splitting = level.splitting
        fine_partition = level.matrix.partition
        coarse_partition = poisson_hierarchy.levels[1].matrix.partition
        coarse_counter = 0
        for fine_row in splitting.coarse_rows:
            owner_fine = fine_partition.owner_of(int(fine_row))
            owner_coarse = coarse_partition.owner_of(coarse_counter)
            assert owner_fine == owner_coarse
            coarse_counter += 1


class TestRedistribution:
    def test_same_operators_different_partition(self, poisson_hierarchy):
        redistributed = redistribute_hierarchy(poisson_hierarchy, 4)
        assert redistributed.n_levels == poisson_hierarchy.n_levels
        for original, scaled in zip(poisson_hierarchy.levels, redistributed.levels):
            assert scaled.n_rows == original.n_rows
            assert scaled.matrix.n_ranks == 4
            # Operators are reused, not rebuilt: identical sparsity and values.
            assert scaled.matrix.nnz == original.matrix.nnz
            assert (scaled.matrix.matrix != original.matrix.matrix).nnz == 0

    def test_invalid_rank_count(self, poisson_hierarchy):
        with pytest.raises(ValidationError):
            redistribute_hierarchy(poisson_hierarchy, 0)


class TestSolver:
    def test_poisson_vcycle_converges(self, poisson_matrix, rng):
        solver = BoomerAMGSolver(poisson_matrix, seed=1)
        x_exact = rng.random(poisson_matrix.n_rows)
        b = poisson_matrix.matrix @ x_exact
        result = solver.solve(b, tol=1e-8, max_iterations=100)
        assert result.converged
        # PMIS + direct interpolation + weighted Jacobi is not the strongest
        # AMG configuration; a convergence factor well below 1 is what matters.
        assert result.convergence_factor() < 0.8
        np.testing.assert_allclose(result.solution, x_exact, rtol=1e-4, atol=1e-5)

    def test_anisotropic_solve_reduces_residual(self, anisotropic_matrix):
        solver = BoomerAMGSolver(anisotropic_matrix, seed=1)
        b = np.ones(anisotropic_matrix.n_rows)
        result = solver.solve(b, tol=1e-10, max_iterations=30)
        assert result.residual_norms[-1] < 0.05 * result.residual_norms[0]

    def test_residual_history_monotone_overall(self, poisson_matrix):
        solver = BoomerAMGSolver(poisson_matrix, seed=1)
        b = np.ones(poisson_matrix.n_rows)
        result = solver.solve(b, tol=1e-10, max_iterations=20)
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_zero_rhs_short_circuits(self, poisson_matrix):
        solver = BoomerAMGSolver(poisson_matrix, seed=1)
        result = solver.solve(np.zeros(poisson_matrix.n_rows))
        assert result.converged and result.iterations == 0

    def test_vcycle_shape_validation(self, poisson_matrix):
        solver = BoomerAMGSolver(poisson_matrix, seed=1)
        with pytest.raises(ValidationError):
            solver.vcycle(np.zeros(3), np.zeros(3))

    def test_solver_reuses_provided_hierarchy(self, poisson_matrix, poisson_hierarchy):
        solver = BoomerAMGSolver(poisson_matrix, hierarchy=poisson_hierarchy)
        assert solver.hierarchy is poisson_hierarchy


class TestCommAnalysis:
    def test_level_patterns_and_partitions(self, poisson_hierarchy):
        patterns = level_patterns(poisson_hierarchy)
        partitions = level_partitions(poisson_hierarchy)
        assert len(patterns) == len(partitions) == poisson_hierarchy.n_levels
        for pattern, level in zip(patterns, poisson_hierarchy.levels):
            assert pattern.n_ranks == level.matrix.n_ranks

    def test_profiles_contain_all_variants(self, poisson_hierarchy):
        mapping = paper_mapping(16, ranks_per_node=4)
        model = lassen_parameters(active_per_node=4)
        profiles = hierarchy_comm_profiles(poisson_hierarchy, mapping, model=model,
                                           validate=True)
        assert len(profiles) == poisson_hierarchy.n_levels
        for profile in profiles:
            assert set(profile.plans) == set(Variant)
            assert set(profile.times) == set(Variant)
            assert profile.best_variant() in (Variant.STANDARD, Variant.PARTIAL,
                                              Variant.FULL)
            assert profile.best_time() <= profile.times[Variant.STANDARD]

    def test_profiles_without_model_have_no_times(self, poisson_hierarchy):
        mapping = paper_mapping(16, ranks_per_node=4)
        profiles = hierarchy_comm_profiles(poisson_hierarchy, mapping)
        assert profiles[0].times == {}
        with pytest.raises(ValidationError):
            profiles[0].best_variant()

    def test_mapping_too_small_rejected(self, poisson_hierarchy):
        mapping = paper_mapping(4, ranks_per_node=4)
        with pytest.raises(ValidationError):
            hierarchy_comm_profiles(poisson_hierarchy, mapping)
