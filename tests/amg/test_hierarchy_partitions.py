"""Coverage for the coarse-level partitions the transfer patterns depend on.

``_coarse_partition`` and ``redistribute_hierarchy`` decide which rank owns
which coarse rows; the grid-transfer communication patterns (and therefore
the whole distributed solve phase) are derived from those partitions, so
their invariants are pinned directly here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg.coarsen import CPOINT, FPOINT, SplittingResult
from repro.amg.hierarchy import (
    _coarse_partition,
    build_hierarchy,
    redistribute_hierarchy,
)
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d
from repro.utils.errors import ValidationError


def _splitting(flags):
    flags = np.asarray(flags, dtype=np.int64)
    coarse_index = np.full(flags.size, -1, dtype=np.int64)
    coarse_index[flags == CPOINT] = np.arange(int((flags == CPOINT).sum()))
    return SplittingResult(splitting=flags, coarse_index=coarse_index)


class TestCoarsePartition:
    def test_counts_follow_fine_ownership(self):
        # ranks own rows [0,3), [3,5), [5,9); C-points at 0, 2, 4, 5, 8.
        fine = RowPartition([0, 3, 5, 9])
        splitting = _splitting([CPOINT, FPOINT, CPOINT, FPOINT, CPOINT,
                                CPOINT, FPOINT, FPOINT, CPOINT])
        coarse = _coarse_partition(fine, splitting)
        assert coarse.n_ranks == fine.n_ranks
        assert coarse.n_rows == 5
        assert [coarse.local_size(rank) for rank in range(3)] == [2, 1, 2]

    def test_rank_without_coarse_points_gets_empty_range(self):
        fine = RowPartition([0, 2, 4, 6])
        splitting = _splitting([CPOINT, FPOINT, FPOINT, FPOINT, CPOINT, CPOINT])
        coarse = _coarse_partition(fine, splitting)
        assert [coarse.local_size(rank) for rank in range(3)] == [1, 0, 2]
        assert coarse.active_ranks().tolist() == [0, 2]

    def test_empty_fine_rank_stays_empty(self):
        fine = RowPartition([0, 3, 3, 6])
        splitting = _splitting([CPOINT, CPOINT, FPOINT, FPOINT, CPOINT, FPOINT])
        coarse = _coarse_partition(fine, splitting)
        assert [coarse.local_size(rank) for rank in range(3)] == [2, 0, 1]

    def test_all_fine_points_yields_empty_partition(self):
        fine = RowPartition([0, 2, 4])
        splitting = _splitting([FPOINT, FPOINT, FPOINT, FPOINT])
        coarse = _coarse_partition(fine, splitting)
        assert coarse.n_rows == 0
        assert coarse.n_ranks == 2


@pytest.fixture(scope="module")
def hierarchy():
    matrix = ParCSRMatrix(poisson_2d((24, 24)), RowPartition.even(576, 16))
    return build_hierarchy(matrix, seed=1)


class TestRedistributeHierarchy:
    def test_coarse_ownership_follows_new_fine_partition(self, hierarchy):
        """Every level's partition is re-derived from the stored splittings:
        coarse row c (created from fine row f) is owned by whichever rank owns
        f under the *new* distribution."""
        redistributed = redistribute_hierarchy(hierarchy, 4)
        for level, new_level in zip(hierarchy.levels[:-1],
                                    redistributed.levels[:-1]):
            fine_partition = new_level.matrix.partition
            coarse_partition = redistributed.levels[new_level.index + 1] \
                .matrix.partition
            for coarse_row, fine_row in enumerate(
                    new_level.splitting.coarse_rows):
                assert coarse_partition.owner_of(coarse_row) == \
                    fine_partition.owner_of(int(fine_row))

    def test_partitions_cover_each_level_exactly(self, hierarchy):
        for n_ranks in (2, 4, 32):
            redistributed = redistribute_hierarchy(hierarchy, n_ranks)
            for level in redistributed.levels:
                partition = level.matrix.partition
                assert partition.n_ranks == n_ranks
                assert partition.n_rows == level.n_rows

    def test_more_ranks_than_coarse_rows_leaves_empty_ranks(self, hierarchy):
        """Strong-scaling redistributions leave coarse ranks empty; the
        partitions must record that rather than fail."""
        redistributed = redistribute_hierarchy(hierarchy, 32)
        coarsest = redistributed.levels[-1].matrix.partition
        assert coarsest.n_rows < 32
        assert coarsest.active_ranks().size < 32
        sizes = np.diff(coarsest.offsets)
        assert (sizes == 0).any() and sizes.sum() == coarsest.n_rows

    def test_transfer_matrices_follow_redistribution(self, hierarchy):
        """Transfer operators of a redistributed hierarchy stay consistent:
        row/column partitions are the adjacent levels' new partitions."""
        redistributed = redistribute_hierarchy(hierarchy, 4)
        for index in range(redistributed.n_levels - 1):
            prolongation = redistributed.prolongation_matrix(index)
            assert prolongation.row_partition == \
                redistributed.levels[index].matrix.partition
            assert prolongation.col_partition == \
                redistributed.levels[index + 1].matrix.partition
            restriction = redistributed.restriction_matrix(index)
            assert restriction.row_partition == prolongation.col_partition
            assert restriction.col_partition == prolongation.row_partition

    def test_empty_hierarchy_rejected(self):
        from repro.amg.hierarchy import AMGHierarchy

        with pytest.raises(ValidationError):
            redistribute_hierarchy(AMGHierarchy(), 4)

    def test_coarsest_level_has_no_prolongation_matrix(self, hierarchy):
        with pytest.raises(ValidationError):
            hierarchy.prolongation_matrix(hierarchy.n_levels - 1)

    def test_transfer_matrices_are_memoized(self, hierarchy):
        """Repeated accessors share one rect matrix (and its block cache)."""
        assert hierarchy.prolongation_matrix(0) is hierarchy.prolongation_matrix(0)
        assert hierarchy.restriction_matrix(0) is hierarchy.restriction_matrix(0)
