"""Unit tests for the AMG setup components: strength, coarsening, interpolation,
Galerkin products, and relaxation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg.coarsen import CPOINT, FPOINT, pmis_coarsening
from repro.amg.galerkin import galerkin_product
from repro.amg.interp import direct_interpolation
from repro.amg.relax import gauss_seidel_iteration, jacobi, weighted_jacobi_iteration
from repro.amg.strength import classical_strength, symmetrized_strength
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion
from repro.utils.errors import ValidationError


@pytest.fixture
def poisson():
    return poisson_2d((12, 12))


@pytest.fixture
def anisotropic():
    return rotated_anisotropic_diffusion((12, 12))


class TestStrength:
    def test_poisson_all_offdiagonals_strong(self, poisson):
        strength = classical_strength(poisson, theta=0.25)
        # Every off-diagonal of the Laplacian has the same magnitude.
        assert strength.nnz == poisson.nnz - poisson.shape[0]

    def test_anisotropic_keeps_only_strong_direction(self, anisotropic):
        strength = classical_strength(anisotropic, theta=0.25)
        # The weak couplings (magnitude ~0.001) must be dropped.
        assert strength.nnz < anisotropic.nnz - anisotropic.shape[0]
        # Interior rows keep exactly the two diagonal-direction neighbours.
        interior = 5 * 12 + 5
        assert strength[interior].nnz == 2

    def test_no_self_strength(self, poisson):
        strength = classical_strength(poisson)
        assert strength.diagonal().sum() == 0

    def test_theta_one_keeps_only_strongest(self, anisotropic):
        strict = classical_strength(anisotropic, theta=1.0)
        loose = classical_strength(anisotropic, theta=0.0)
        assert strict.nnz <= loose.nnz

    def test_invalid_theta(self, poisson):
        with pytest.raises(ValidationError):
            classical_strength(poisson, theta=2.0)

    def test_symmetrized_contains_both_directions(self):
        asymmetric = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        sym = symmetrized_strength(asymmetric)
        assert sym[0, 1] == 1.0 and sym[1, 0] == 1.0


class TestPMISCoarsening:
    def test_every_point_decided(self, poisson):
        splitting = pmis_coarsening(classical_strength(poisson))
        assert set(np.unique(splitting.splitting)) <= {CPOINT, FPOINT}

    def test_coarse_grid_nonempty_and_smaller(self, poisson):
        splitting = pmis_coarsening(classical_strength(poisson))
        assert 0 < splitting.n_coarse < poisson.shape[0]

    def test_independent_set_property(self, poisson):
        """No two C-points may be strongly connected (PMIS independence)."""
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        sym = symmetrized_strength(strength).tocoo()
        coarse = splitting.splitting == CPOINT
        for i, j in zip(sym.row, sym.col):
            assert not (coarse[i] and coarse[j]), f"C-points {i} and {j} are neighbours"

    def test_every_fpoint_near_a_cpoint_on_poisson(self, poisson):
        """On a Poisson problem every F-point has a strongly-connected C-point."""
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        sym = symmetrized_strength(strength)
        coarse = splitting.splitting == CPOINT
        coarse_indicator = coarse.astype(float)
        coverage = sym @ coarse_indicator
        fine = splitting.splitting == FPOINT
        assert np.all(coverage[fine] > 0)

    def test_deterministic_for_seed(self, poisson):
        strength = classical_strength(poisson)
        a = pmis_coarsening(strength, seed=7)
        b = pmis_coarsening(strength, seed=7)
        np.testing.assert_array_equal(a.splitting, b.splitting)

    def test_coarse_index_is_dense_numbering(self, poisson):
        splitting = pmis_coarsening(classical_strength(poisson))
        coarse_indices = splitting.coarse_index[splitting.coarse_rows]
        np.testing.assert_array_equal(coarse_indices,
                                      np.arange(splitting.n_coarse))

    def test_isolated_points_become_fpoints(self):
        matrix = sp.identity(5, format="csr")
        splitting = pmis_coarsening(classical_strength(matrix))
        assert np.all(splitting.splitting == FPOINT)

    def test_empty_matrix(self):
        splitting = pmis_coarsening(sp.csr_matrix((0, 0)))
        assert splitting.n_coarse == 0


class TestDirectInterpolation:
    def test_cpoints_injected(self, poisson):
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(poisson, strength, splitting)
        assert P.shape == (poisson.shape[0], splitting.n_coarse)
        for fine_row in splitting.coarse_rows[:10]:
            coarse_col = splitting.coarse_index[fine_row]
            assert P[fine_row, coarse_col] == 1.0
            assert P[fine_row].nnz == 1

    def test_rows_approximately_sum_to_one_on_poisson(self, poisson):
        """Direct interpolation reproduces constants where C-neighbours exist."""
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(poisson, strength, splitting)
        row_sums = np.asarray(P.sum(axis=1)).ravel()
        populated = np.asarray((P != 0).sum(axis=1)).ravel() > 0
        interior_mask = np.zeros(poisson.shape[0], dtype=bool)
        grid = 12
        for iy in range(1, grid - 1):
            for ix in range(1, grid - 1):
                interior_mask[iy * grid + ix] = True
        check = populated & interior_mask
        assert np.all(row_sums[check] > 0.3)
        assert np.all(row_sums[check] < 1.5)

    def test_weights_nonnegative_for_m_matrix(self, anisotropic):
        strength = classical_strength(anisotropic)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(anisotropic, strength, splitting)
        assert P.data.min() >= 0.0

    def test_empty_coarse_grid_rejected(self, poisson):
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        empty = type(splitting)(splitting=np.full(poisson.shape[0], FPOINT),
                                coarse_index=np.full(poisson.shape[0], -1))
        with pytest.raises(Exception):
            direct_interpolation(poisson, strength, empty)


class TestGalerkin:
    def test_coarse_operator_symmetric_for_symmetric_fine(self, poisson):
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(poisson, strength, splitting)
        coarse = galerkin_product(poisson, P)
        assert coarse.shape == (splitting.n_coarse, splitting.n_coarse)
        assert abs(coarse - coarse.T).max() < 1e-12

    def test_coarse_operator_positive_definite(self, poisson):
        strength = classical_strength(poisson)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(poisson, strength, splitting)
        coarse = galerkin_product(poisson, P).toarray()
        assert np.linalg.eigvalsh(coarse).min() > -1e-10

    def test_truncation_preserves_row_sums(self, anisotropic):
        strength = classical_strength(anisotropic)
        splitting = pmis_coarsening(strength)
        P = direct_interpolation(anisotropic, strength, splitting)
        exact = galerkin_product(anisotropic, P, truncation=0.0)
        truncated = galerkin_product(anisotropic, P, truncation=0.1)
        np.testing.assert_allclose(
            np.asarray(exact.sum(axis=1)).ravel(),
            np.asarray(truncated.sum(axis=1)).ravel(), atol=1e-10)
        assert truncated.nnz <= exact.nnz

    def test_shape_mismatch_rejected(self, poisson):
        with pytest.raises(ValidationError):
            galerkin_product(poisson, sp.eye(3, format="csr"))


class TestRelaxation:
    def test_jacobi_reduces_residual(self, poisson, rng):
        b = rng.random(poisson.shape[0])
        x0 = np.zeros_like(b)
        x1 = jacobi(poisson, b, x0, sweeps=5)
        assert np.linalg.norm(b - poisson @ x1) < np.linalg.norm(b - poisson @ x0)

    def test_gauss_seidel_reduces_residual(self, poisson, rng):
        b = rng.random(poisson.shape[0])
        x0 = np.zeros_like(b)
        x1 = gauss_seidel_iteration(poisson, b, x0)
        assert np.linalg.norm(b - poisson @ x1) < np.linalg.norm(b - poisson @ x0)

    def test_exact_solution_is_fixed_point(self, poisson, rng):
        x_exact = rng.random(poisson.shape[0])
        b = poisson @ x_exact
        np.testing.assert_allclose(
            weighted_jacobi_iteration(poisson, b, x_exact), x_exact, atol=1e-12)

    def test_out_of_place(self, poisson, rng):
        b = rng.random(poisson.shape[0])
        x0 = np.zeros_like(b)
        jacobi(poisson, b, x0, sweeps=2)
        assert np.all(x0 == 0.0)

    def test_dimension_mismatch(self, poisson):
        with pytest.raises(ValidationError):
            weighted_jacobi_iteration(poisson, np.zeros(3), np.zeros(poisson.shape[0]))

    def test_zero_diagonal_rejected(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValidationError):
            weighted_jacobi_iteration(matrix, np.zeros(2), np.zeros(2))

    def test_negative_sweeps_rejected(self, poisson):
        with pytest.raises(ValidationError):
            jacobi(poisson, np.zeros(poisson.shape[0]), np.zeros(poisson.shape[0]),
                   sweeps=-1)
