"""Docs hygiene: markdown links resolve, and the architecture doc is wired in.

A lightweight stand-in for a full docs build: every relative markdown link in
``README.md`` and ``docs/`` must point at a file that exists, and the
README must link the architecture document (the satellite contract of the
world-stepped-engine PR).
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

#: Markdown documents whose links are checked.
DOCUMENTS = ["README.md", os.path.join("docs", "ARCHITECTURE.md")]

_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")


def _relative_links(path: str) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    links = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


@pytest.mark.parametrize("document", DOCUMENTS)
def test_document_exists(document):
    assert os.path.isfile(os.path.join(REPO_ROOT, document)), \
        f"{document} is missing"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_relative_links_resolve(document):
    path = os.path.join(REPO_ROOT, document)
    base = os.path.dirname(path)
    broken = [target for target in _relative_links(path)
              if not os.path.exists(os.path.join(base, target))]
    assert not broken, f"{document} has broken relative links: {broken}"


def test_readme_links_architecture_doc():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    assert "docs/ARCHITECTURE.md" in readme, \
        "README must link the architecture document"
