"""Schema check for the committed ``BENCH_*.json`` perf-trajectory files.

Every wall-clock perf gate persists its measurement through
``benchmarks.conftest.emit_bench``; CI archives the resulting JSON files so
regressions can be traced per commit.  The trajectory is only comparable if
every payload records the same core fields — what was measured, at what
simulated scale, and in which execution environment (runtime, worker count,
kernel backend).  This test pins that contract for every committed file, so
a bench that bypasses ``emit_bench`` or an ``emit_bench`` edit that drops a
field fails fast.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Field name -> accepted types, present in every emitted payload.
REQUIRED_FIELDS = {
    "bench": str,
    "speedup": (int, float),
    "baseline_s": (int, float),
    "optimized_s": (int, float),
    "n_ranks": int,
    "git_rev": (str, type(None)),
    "runtime": str,
    "n_workers": int,
    "kernels": str,
}

RUNTIMES = {"engine", "threads", "procs"}


def bench_files() -> list[str]:
    return sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))


def test_bench_results_are_committed():
    """At least the always-on perf gates must have archived payloads."""
    names = {os.path.basename(path) for path in bench_files()}
    assert "BENCH_setup_scale.json" in names
    assert "BENCH_plan_cache_warm.json" in names


@pytest.mark.parametrize("path", bench_files(),
                         ids=[os.path.basename(p) for p in bench_files()])
def test_bench_payload_schema(path):
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    for name, types in REQUIRED_FIELDS.items():
        assert name in payload, f"{os.path.basename(path)} lacks {name!r}"
        assert isinstance(payload[name], types), \
            f"{os.path.basename(path)}: {name!r} is {type(payload[name]).__name__}"
    assert payload["bench"], "bench name must be non-empty"
    assert f"BENCH_{payload['bench']}.json" == os.path.basename(path), \
        "payload bench name must match its file name"
    assert payload["runtime"] in RUNTIMES
    assert payload["n_workers"] >= 1
    assert payload["n_ranks"] >= 1
    assert payload["baseline_s"] >= 0.0
    assert payload["optimized_s"] >= 0.0
    assert payload["speedup"] > 0.0
