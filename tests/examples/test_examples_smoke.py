"""Smoke-run every script in ``examples/`` so the documented quickstarts can't rot.

Each script is executed as a subprocess at a reduced size (where the script
accepts one) and must exit 0; a script that starts raising — because an API it
demonstrates changed — fails the suite.  Output is captured and attached to the
failure message.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "examples")

#: Script name -> argv suffix that keeps the run small.  Scripts insert
#: ``src/`` onto ``sys.path`` themselves, so no environment setup is needed.
SCRIPTS = {
    "quickstart.py": [],
    "irregular_halo_exchange.py": [],
    "amg_solve.py": ["32"],          # 32x32 grid = 1024 rows on 64 ranks
    "scaling_study.py": ["2048"],    # 2048-row strong/weak sweep
}


def test_every_example_is_covered():
    """A new example script must be added to the smoke matrix."""
    on_disk = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert on_disk == set(SCRIPTS), (
        "examples/ and the smoke-test matrix disagree; update SCRIPTS in "
        f"{__file__}"
    )


@pytest.mark.parametrize("script,args", sorted(SCRIPTS.items()))
def test_example_runs_clean(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} exited {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout}\n"
        f"--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
