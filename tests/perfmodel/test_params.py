"""Unit tests for the named parameter sets and auxiliary cost models."""

import pytest

from repro.perfmodel.params import (
    GraphCreationModel,
    SetupCostModel,
    graph_creation_model,
    lassen_parameters,
    smp_parameters,
)
from repro.topology.machine import Locality
from repro.utils.errors import ValidationError


class TestNamedParameterSets:
    def test_lassen_orderings(self):
        model = lassen_parameters()
        assert model.alpha(Locality.INTRA_SOCKET) < model.alpha(Locality.INTER_NODE)
        assert model.beta(Locality.INTER_SOCKET) > model.beta(Locality.INTRA_SOCKET)

    def test_lassen_respects_active_per_node(self):
        few = lassen_parameters(active_per_node=1)
        many = lassen_parameters(active_per_node=32)
        assert few.active_per_node == 1 and many.active_per_node == 32

    def test_smp_parameters_valid(self):
        model = smp_parameters()
        assert model.message_time(100, Locality.INTER_NODE) > 0


class TestGraphCreationModel:
    def test_paper_ratio_at_2048(self):
        spectrum = graph_creation_model("spectrum")
        mvapich = graph_creation_model("mvapich")
        ratio = spectrum.cost(2048) / mvapich.cost(2048)
        # The paper reports 8.6x; the calibrated models must land nearby.
        assert 7.0 <= ratio <= 10.5

    def test_cost_increases_with_processes(self):
        model = graph_creation_model("spectrum")
        assert model.cost(2048) > model.cost(256) > model.cost(2)

    def test_mvapich_scales_better(self):
        spectrum = graph_creation_model("spectrum")
        mvapich = graph_creation_model("mvapich")
        spectrum_growth = spectrum.cost(2048) / spectrum.cost(256)
        mvapich_growth = mvapich.cost(2048) / mvapich.cost(256)
        assert mvapich_growth < spectrum_growth

    def test_neighbors_add_cost(self):
        model = graph_creation_model("mvapich")
        assert model.cost(64, avg_neighbors=100) > model.cost(64, avg_neighbors=0)

    def test_unknown_implementation(self):
        with pytest.raises(ValidationError):
            graph_creation_model("openmpi-nonexistent")

    def test_case_insensitive(self):
        assert graph_creation_model("SPECTRUM").name == "spectrum"

    def test_invalid_arguments(self):
        model = graph_creation_model("spectrum")
        with pytest.raises(ValidationError):
            model.cost(0)
        with pytest.raises(ValidationError):
            model.cost(4, avg_neighbors=-1)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValidationError):
            GraphCreationModel(name="x", base=-1.0, per_process=0.0)


class TestSetupCostModel:
    def test_grows_with_messages_and_bytes(self):
        model = SetupCostModel()
        assert model.cost(10, 0) > model.cost(0, 0)
        assert model.cost(0, 10_000) > model.cost(0, 0)

    def test_base_cost_positive(self):
        assert SetupCostModel().cost(0, 0) > 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            SetupCostModel().cost(-1, 0)
