"""Unit tests for the postal, max-rate, and locality-aware cost models."""

import pytest

from repro.perfmodel.base import MessageCost
from repro.perfmodel.contention import ContentionModel, QueueSearchModel
from repro.perfmodel.locality import LocalityAwareModel, LocalityParameters
from repro.perfmodel.maxrate import MaxRateModel
from repro.perfmodel.postal import PostalModel
from repro.topology.machine import Locality
from repro.utils.errors import ValidationError


class TestPostalModel:
    def test_alpha_beta_form(self):
        model = PostalModel(alpha=1e-6, beta=1e-9)
        assert model.message_time(1000, Locality.INTER_NODE) == pytest.approx(2e-6)

    def test_self_messages_free(self):
        model = PostalModel()
        assert model.message_time(100, Locality.SELF) == 0.0

    def test_ignores_locality(self):
        model = PostalModel()
        assert model.message_time(64, Locality.INTRA_SOCKET) == \
            model.message_time(64, Locality.INTER_NODE)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValidationError):
            PostalModel(alpha=-1.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValidationError):
            PostalModel().message_time(-1, Locality.INTER_NODE)

    def test_process_time_sums_messages(self):
        model = PostalModel(alpha=1e-6, beta=0.0)
        msgs = [MessageCost(0, Locality.INTER_NODE)] * 5
        assert model.process_time(msgs) == pytest.approx(5e-6)

    def test_phase_time_is_max_over_processes(self):
        model = PostalModel(alpha=1e-6, beta=0.0)
        per_process = {0: [MessageCost(0, Locality.INTER_NODE)] * 2,
                       1: [MessageCost(0, Locality.INTER_NODE)] * 7}
        assert model.phase_time(per_process) == pytest.approx(7e-6)

    def test_phase_time_empty(self):
        assert PostalModel().phase_time({}) == 0.0


class TestMaxRateModel:
    def test_injection_cap_applies_to_inter_node(self):
        model = MaxRateModel(alpha=0.0, beta=1e-11, beta_injection=1e-11,
                             active_per_node=16)
        # Effective beta = max(1e-11, 16e-11) = 16e-11.
        assert model.message_time(1000, Locality.INTER_NODE) == pytest.approx(1.6e-7)

    def test_intra_node_not_capped(self):
        model = MaxRateModel(alpha=0.0, beta=1e-11, beta_injection=1e-11,
                             active_per_node=16)
        assert model.message_time(1000, Locality.INTRA_SOCKET) == pytest.approx(1e-8)

    def test_single_active_process_uncapped(self):
        model = MaxRateModel(alpha=0.0, beta=2e-11, beta_injection=1e-11,
                             active_per_node=1)
        assert model.effective_beta == pytest.approx(2e-11)

    def test_invalid_active_per_node(self):
        with pytest.raises(ValidationError):
            MaxRateModel(active_per_node=0)


class TestLocalityAwareModel:
    def test_intra_socket_cheapest_for_small_messages(self, lassen_model):
        small = 64
        intra = lassen_model.message_time(small, Locality.INTRA_SOCKET)
        inter_socket = lassen_model.message_time(small, Locality.INTER_SOCKET)
        inter_node = lassen_model.message_time(small, Locality.INTER_NODE)
        assert intra < inter_socket < inter_node

    def test_inter_socket_worst_for_large_messages(self, lassen_model):
        large = 4 * 1024 * 1024
        inter_socket = lassen_model.message_time(large, Locality.INTER_SOCKET)
        inter_node = lassen_model.message_time(large, Locality.INTER_NODE)
        # The paper: inter-CPU large messages cost more than inter-node.
        assert inter_socket > inter_node

    def test_self_free(self, lassen_model):
        assert lassen_model.message_time(10_000, Locality.SELF) == 0.0

    def test_with_active_per_node_reduces_injection_penalty(self, lassen_model):
        fewer = lassen_model.with_active_per_node(1)
        many = lassen_model.with_active_per_node(64)
        size = 1 << 20
        assert fewer.message_time(size, Locality.INTER_NODE) <= \
            many.message_time(size, Locality.INTER_NODE)

    def test_missing_class_rejected(self):
        with pytest.raises(ValidationError):
            LocalityAwareModel(parameters={
                Locality.INTRA_SOCKET: LocalityParameters(1e-6, 1e-9)})

    def test_alpha_beta_accessors(self, lassen_model):
        assert lassen_model.alpha(Locality.SELF) == 0.0
        assert lassen_model.beta(Locality.INTER_NODE) > 0.0
        assert lassen_model.alpha(Locality.INTER_NODE) > \
            lassen_model.alpha(Locality.INTRA_SOCKET)

    def test_describe_mentions_classes(self, lassen_model):
        text = lassen_model.describe()
        assert "intra_socket" in text and "inter_node" in text


class TestCorrections:
    def test_queue_search_adds_quadratic_term(self):
        base = PostalModel(alpha=0.0, beta=0.0)
        model = QueueSearchModel(base=base, queue_time=1e-6)
        msgs = [MessageCost(0, Locality.INTER_NODE)] * 4
        # 4 messages -> 6 pairwise queue searches.
        assert model.process_time(msgs) == pytest.approx(6e-6)

    def test_queue_search_ignores_self_messages(self):
        base = PostalModel(alpha=0.0, beta=0.0)
        model = QueueSearchModel(base=base, queue_time=1e-6)
        msgs = [MessageCost(0, Locality.SELF)] * 4
        assert model.process_time(msgs) == 0.0

    def test_contention_scales_only_inter_node_bandwidth(self):
        base = PostalModel(alpha=1e-6, beta=1e-9)
        model = ContentionModel(base=base, factor=2.0)
        assert model.message_time(1000, Locality.INTER_NODE) == pytest.approx(3e-6)
        assert model.message_time(1000, Locality.INTRA_SOCKET) == \
            base.message_time(1000, Locality.INTRA_SOCKET)

    def test_contention_factor_below_one_rejected(self):
        with pytest.raises(ValidationError):
            ContentionModel(base=PostalModel(), factor=0.5)
