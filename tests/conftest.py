"""Shared fixtures for the test-suite.

Fixtures deliberately stay small (tens of ranks, thousands of rows) so the
whole suite runs in a couple of minutes; the paper-scale configurations are
exercised only by the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pattern.builders import halo_exchange_pattern, random_pattern
from repro.perfmodel.params import lassen_parameters
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping


@pytest.fixture
def small_mapping():
    """16 ranks on 4 nodes (4 ranks per node)."""
    return paper_mapping(16, ranks_per_node=4)


@pytest.fixture
def medium_mapping():
    """64 ranks on 4 nodes (16 ranks per node, the paper's per-node count)."""
    return paper_mapping(64, ranks_per_node=16)


@pytest.fixture
def small_pattern():
    """A reproducible irregular pattern on 16 ranks with duplicate values."""
    return random_pattern(16, avg_neighbors=5, avg_items_per_message=10,
                          duplicate_fraction=0.5, items_per_rank=32, seed=123)


@pytest.fixture
def halo_pattern():
    """A 4x4 process-grid halo exchange (structured, closed-form statistics)."""
    return halo_exchange_pattern((4, 4), points_per_cell=8)


@pytest.fixture
def lassen_model():
    """The locality-aware cost model used throughout the experiments."""
    return lassen_parameters(active_per_node=16)


@pytest.fixture
def small_anisotropic_matrix():
    """32x32 rotated anisotropic diffusion distributed over 16 ranks."""
    matrix = rotated_anisotropic_diffusion((32, 32))
    return ParCSRMatrix(matrix, RowPartition.even(1024, 16))


@pytest.fixture
def small_poisson_matrix():
    """24x24 Poisson problem distributed over 8 ranks."""
    matrix = poisson_2d((24, 24))
    return ParCSRMatrix(matrix, RowPartition.even(576, 8))


@pytest.fixture
def rng():
    """Deterministic random generator for tests that need noise."""
    return np.random.default_rng(2023)
