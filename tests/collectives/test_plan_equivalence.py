"""Golden-equivalence tests: columnar planner vs the kept slot-list reference.

The columnar planner (:mod:`repro.collectives.planner`) must be a pure
performance change: for any pattern, mapping, and variant it has to produce
*byte-identical* phases (same messages in the same order, same slots in the
same order), identical payload keys, identical self-deliveries, and identical
statistics to the seed's Slot-list implementation, which is preserved verbatim
in :mod:`repro.collectives.reference` for exactly this comparison.
"""

import numpy as np
import pytest

from repro.collectives.plan import SlotTable, Variant
from repro.collectives.planner import all_plans, make_plan
from repro.collectives.reference import reference_all_plans, reference_make_plan
from repro.pattern.builders import (
    halo_exchange_pattern,
    pattern_from_edges,
    random_pattern,
)
from repro.topology.mapping import MappingKind, RankMapping
from repro.topology.presets import lassen_like, paper_mapping


def assert_plans_identical(plan, reference):
    """Field-by-field comparison of a columnar plan against a reference plan."""
    assert plan.variant is reference.variant
    assert set(plan.phases) == set(reference.phases)
    for phase in plan.phases:
        ours, theirs = plan.phases[phase], reference.phases[phase]
        assert len(ours) == len(theirs), f"message count differs in phase {phase}"
        for message, expected in zip(ours, theirs):
            assert message.phase is expected.phase
            assert (message.src, message.dest) == (expected.src, expected.dest)
            assert message.slots == expected.slots
            assert message.payload_keys == expected.payload_keys
            assert message.payload_count() == expected.payload_count()
    assert list(plan.self_deliveries) == list(reference.self_deliveries)

    ours, theirs = plan.statistics(), reference.statistics()
    for field in ("local_messages", "global_messages", "local_bytes",
                  "global_bytes"):
        np.testing.assert_array_equal(getattr(ours, field), getattr(theirs, field),
                                      err_msg=f"statistics field {field}")
    assert plan.required_deliveries() == reference.required_deliveries()
    assert plan.planned_deliveries() == reference.planned_deliveries()
    plan.validate()
    reference.validate()


CASES = {
    "random-low-dup": lambda: (
        random_pattern(32, avg_neighbors=7, duplicate_fraction=0.1, seed=21),
        paper_mapping(32, ranks_per_node=8)),
    "random-high-dup": lambda: (
        random_pattern(48, avg_neighbors=9, duplicate_fraction=0.7, seed=22),
        paper_mapping(48, ranks_per_node=8)),
    "random-item-bytes": lambda: (
        random_pattern(24, avg_neighbors=6, duplicate_fraction=0.4, seed=23,
                       item_bytes=4),
        paper_mapping(24, ranks_per_node=4)),
    "halo": lambda: (
        halo_exchange_pattern((4, 4), points_per_cell=6),
        paper_mapping(16, ranks_per_node=4)),
    "self-sends-and-duplicates": lambda: (
        pattern_from_edges(16, [
            (0, 4, [100, 100, 101]), (0, 5, [100]), (1, 1, [7, 7, 8]),
            (2, 5, [120]), (0, 1, [103]), (3, 12, [130]),
        ]),
        paper_mapping(16, ranks_per_node=4)),
    "empty": lambda: (
        pattern_from_edges(8, []), paper_mapping(8, ranks_per_node=4)),
    "single-region": lambda: (
        random_pattern(8, avg_neighbors=4, seed=24),
        paper_mapping(8, ranks_per_node=8)),
    "round-robin-placement": lambda: (
        random_pattern(24, avg_neighbors=6, duplicate_fraction=0.4, seed=25),
        RankMapping(lassen_like(), 24, ranks_per_node=8,
                    kind=MappingKind.ROUND_ROBIN)),
    "socket-regions": lambda: (
        random_pattern(32, avg_neighbors=6, duplicate_fraction=0.4, seed=26),
        RankMapping(lassen_like(), 32, ranks_per_node=8, region="socket")),
}


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("variant", list(Variant))
def test_columnar_planner_matches_slot_list_reference(case, variant):
    pattern, mapping = CASES[case]()
    assert_plans_identical(make_plan(pattern, mapping, variant),
                           reference_make_plan(pattern, mapping, variant))


@pytest.mark.parametrize("seed", [31, 32, 33])
def test_all_plans_matches_reference_with_shared_assignment(seed):
    """The shared-assignment path must agree variant-by-variant too."""
    pattern = random_pattern(32, avg_neighbors=8, duplicate_fraction=0.5,
                             seed=seed)
    mapping = paper_mapping(32, ranks_per_node=8)
    plans = all_plans(pattern, mapping)
    references = reference_all_plans(pattern, mapping)
    assert set(plans) == set(references)
    for variant in plans:
        assert_plans_identical(plans[variant], references[variant])


class TestSlotTableView:
    """The lazy per-slot compatibility views over the columnar storage."""

    def test_round_trip_through_slots(self):
        table = SlotTable([0, 1, 1], [10, 11, 12], [2, 3, 3])
        assert len(table) == 3
        assert SlotTable.from_slots(table.to_slots()) == table

    def test_iteration_and_indexing(self):
        table = SlotTable([5], [7], [9])
        (slot,) = list(table)
        assert (slot.origin, slot.item, slot.final_dest) == (5, 7, 9)
        assert table[0] == slot

    def test_columns_are_read_only(self):
        table = SlotTable([1], [2], [3])
        with pytest.raises(ValueError):
            table.origin[0] = 9

    def test_caller_array_copied_not_aliased(self):
        mine = np.array([1, 2, 3], dtype=np.int64)
        table = SlotTable(mine, [4, 5, 6], [7, 8, 9])
        mine[0] = 99                      # caller's buffer reuse is harmless
        assert table.origin.tolist() == [1, 2, 3]
        assert mine.flags.writeable       # and the caller's array is not frozen

    def test_caller_2d_and_readonly_views_copied_not_aliased(self):
        column = np.array([[1], [2], [3]], dtype=np.int64)
        table = SlotTable(column, [4, 5, 6], [7, 8, 9])
        column[0, 0] = 99                 # reshape path must not alias either
        assert table.origin.tolist() == [1, 2, 3]
        base = np.array([1, 2, 3], dtype=np.int64)
        view = base.view()
        view.flags.writeable = False      # read-only view of a writable buffer
        table = SlotTable(view, [4, 5, 6], [7, 8, 9])
        base[0] = 99
        assert table.origin.tolist() == [1, 2, 3]

    def test_planned_message_field_equality(self):
        from repro.collectives.plan import Phase, PlannedMessage, Slot
        a = PlannedMessage(phase=Phase.DIRECT, src=0, dest=1,
                           slots=[Slot(0, 7, 1)])
        b = PlannedMessage(phase=Phase.DIRECT, src=0, dest=1,
                           slots=[Slot(0, 7, 1)])
        c = PlannedMessage(phase=Phase.DIRECT, src=0, dest=1,
                           slots=[Slot(0, 8, 1)])
        assert a == b
        assert a != c

    def test_message_slots_view_is_lazy_and_cached(self):
        pattern = random_pattern(16, avg_neighbors=5, seed=41)
        plan = make_plan(pattern, paper_mapping(16, ranks_per_node=4),
                         Variant.FULL)
        message = next(plan.messages())
        assert message._slots_view is None
        view = message.slots
        assert view is message.slots          # cached
        assert len(view) == len(message.table)
