"""Functional tests of the persistent collectives and the MPI-Advance-style API.

These run real data through the simulated runtime and check, for every
variant, that the delivered values are exactly what point-to-point would have
delivered — the core correctness claim behind replacing Hypre's communication.
"""

import numpy as np
import pytest

from repro.collectives.api import (
    CollectiveRequest,
    neighbor_alltoallv,
    neighbor_alltoallv_init,
    neighbor_alltoallv_init_many,
    pack_alltoallv_buffers,
    unpack_alltoallv_buffers,
)
from repro.collectives.persistent import PersistentNeighborCollective
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.builders import neighbor_lists, pattern_from_edges, random_pattern
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.simmpi.world import run_spmd
from repro.topology.presets import paper_mapping
from repro.utils.errors import CommunicationError, ValidationError


def _value_of(rank: int, item: int) -> float:
    return 1000.0 * rank + item


def _exchange_program(comm, pattern, mapping, variant, iterations=1, scale=1.0):
    """SPMD program: set up the collective, exchange, verify, return success."""
    rank = comm.rank
    send_items = {d: pattern.send_items(rank, d).tolist()
                  for d in pattern.send_ranks(rank)}
    recv_items = {s: pattern.recv_items(rank, s).tolist()
                  for s in pattern.recv_ranks(rank)}
    sources, dests = neighbor_lists(pattern, rank)
    graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
    collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                         variant=variant)
    owned = {int(i) for items in send_items.values() for i in items}
    for iteration in range(iterations):
        factor = scale * (iteration + 1)
        values = {item: factor * _value_of(rank, item) for item in owned}
        received = collective.exchange(values)
        for src, items in recv_items.items():
            for item in items:
                assert received[int(item)] == factor * _value_of(src, item)
    return True


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL, Variant.FULL])
class TestAllVariantsDeliverCorrectData:
    def test_random_pattern(self, variant):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=6, duplicate_fraction=0.5,
                                 seed=21)
        results = run_spmd(n_ranks, _exchange_program, pattern, mapping, variant,
                           timeout=120)
        assert all(results)

    def test_repeated_iterations_with_changing_values(self, variant):
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=4, seed=22)
        results = run_spmd(n_ranks, _exchange_program, pattern, mapping, variant, 3,
                           timeout=120)
        assert all(results)

    def test_example_2_1_style_duplicates(self, variant):
        """The paper's Example 2.1: region 0 values shared by several ranks of region 1."""
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = pattern_from_edges(n_ranks, [
            (0, 5, [1000]), (0, 6, [1000]), (0, 4, [1001]), (0, 5, [1001]), (0, 7, [1001]),
            (1, 4, [1100]), (1, 5, [1100]), (1, 6, [1101]),
            (2, 4, [1200]), (2, 5, [1201]), (2, 6, [1201]), (2, 7, [1201]),
            (3, 7, [1300]),
        ])
        results = run_spmd(n_ranks, _exchange_program, pattern, mapping, variant,
                           timeout=120)
        assert all(results)


class TestPersistentHandleSemantics:
    def test_start_twice_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1]), (1, 0, [2])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            values = {comm.rank * 0 + (1 if comm.rank == 0 else 2): 1.0}
            collective.start(values)
            if comm.rank == 0:
                with pytest.raises(CommunicationError, match="started twice"):
                    collective.start(values)
            collective.wait()
            return True

        assert all(run_spmd(2, program, timeout=30))

    def test_wait_before_start_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            if comm.rank == 0:
                with pytest.raises(CommunicationError, match="before start"):
                    collective.wait()
            return True

        assert all(run_spmd(2, program, timeout=30))

    def test_missing_owned_value_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1, 2])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            if comm.rank == 0:
                with pytest.raises(Exception, match="no value"):
                    collective.start({1: 1.0})   # value for item 2 missing
            return True

        assert all(run_spmd(2, program, timeout=30))

    def test_messages_per_iteration_matches_plan(self, small_mapping):
        pattern = random_pattern(16, avg_neighbors=5, seed=30)

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.PARTIAL)
            collective = PersistentNeighborCollective(comm, plan)
            return collective.messages_per_iteration()

        per_rank = run_spmd(16, program, timeout=60)
        plan = make_plan(pattern, small_mapping, Variant.PARTIAL)
        for rank, count in enumerate(per_rank):
            assert count == len(plan.messages_from(rank))


class TestApiValidation:
    def test_send_map_must_match_graph(self):
        def program(comm):
            mapping = paper_mapping(2, ranks_per_node=2)
            graph = dist_graph_create_adjacent(comm, [], [], validate=False)
            neighbor_alltoallv_init(graph, {1 - comm.rank: [1]}, {}, mapping)

        with pytest.raises(CommunicationError, match="not among"):
            run_spmd(2, program, timeout=30)

    def test_recv_map_must_match_declared_sends(self):
        def program(comm):
            mapping = paper_mapping(2, ranks_per_node=2)
            peer = 1 - comm.rank
            graph = dist_graph_create_adjacent(comm, [peer], [peer], validate=False)
            send_items = {peer: [comm.rank * 10]}
            recv_items = {peer: [999]}     # wrong expectation
            neighbor_alltoallv_init(graph, send_items, recv_items, mapping)

        with pytest.raises(CommunicationError, match="expects items"):
            run_spmd(2, program, timeout=30)

    def test_one_shot_convenience_wrapper(self):
        n_ranks = 4
        mapping = paper_mapping(n_ranks, ranks_per_node=2)
        pattern = pattern_from_edges(n_ranks, [(0, 2, [5]), (2, 0, [21]),
                                               (1, 3, [15]), (3, 1, [31])])

        def program(comm):
            rank = comm.rank
            send_items = {d: pattern.send_items(rank, d).tolist()
                          for d in pattern.send_ranks(rank)}
            recv_items = {s: pattern.recv_items(rank, s).tolist()
                          for s in pattern.recv_ranks(rank)}
            sources, dests = neighbor_lists(pattern, rank)
            graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
            owned = {int(i) for items in send_items.values() for i in items}
            values = {item: _value_of(rank, item) for item in owned}
            return neighbor_alltoallv(graph, send_items, recv_items, values, mapping,
                                      variant=Variant.FULL)

        results = run_spmd(n_ranks, program, timeout=60)
        assert results[0] == {21: _value_of(2, 21)}
        assert results[3] == {15: _value_of(1, 15)}


class TestBatchedInit:
    """``neighbor_alltoallv_init_many``: one setup gather, identical results."""

    N_RANKS = 8

    def _patterns(self):
        return [random_pattern(self.N_RANKS, avg_neighbors=4, seed=seed)
                for seed in (41, 42, 43)]

    @staticmethod
    def _request(pattern, rank):
        send_items = {d: pattern.send_items(rank, d).tolist()
                      for d in pattern.send_ranks(rank)}
        recv_items = {s: pattern.recv_items(rank, s).tolist()
                      for s in pattern.recv_ranks(rank)}
        return CollectiveRequest(send_items=send_items, recv_items=recv_items)

    def _exchange_all(self, comm, collectives, patterns):
        rank = comm.rank
        for collective, pattern in zip(collectives, patterns):
            owned = {int(i) for d in pattern.send_ranks(rank)
                     for i in pattern.send_items(rank, d)}
            received = collective.exchange(
                {item: _value_of(rank, item) for item in owned})
            for src in pattern.recv_ranks(rank):
                for item in pattern.recv_items(rank, src):
                    assert received[int(item)] == _value_of(src, int(item))
        return True

    @pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
    def test_batched_matches_individual_init(self, variant):
        patterns = self._patterns()
        mapping = paper_mapping(self.N_RANKS, ranks_per_node=4)

        def program(comm):
            requests = [self._request(pattern, comm.rank)
                        for pattern in patterns]
            collectives = neighbor_alltoallv_init_many(comm, requests, mapping,
                                                       variant=variant)
            assert len(collectives) == len(patterns)
            for collective, pattern in zip(collectives, patterns):
                reference = make_plan(pattern, mapping, variant)
                assert collective.plan.n_messages == reference.n_messages
            return self._exchange_all(comm, collectives, patterns)

        assert all(run_spmd(self.N_RANKS, program, timeout=120))

    def test_one_gather_for_all_requests(self, monkeypatch):
        """Three requests cost one allgather round, not three."""
        from repro.simmpi.comm import SimComm

        patterns = self._patterns()
        mapping = paper_mapping(self.N_RANKS, ranks_per_node=4)
        calls = []
        original = SimComm.allgatherv_array

        def counting(self, *args, **kwargs):
            calls.append(self.rank)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SimComm, "allgatherv_array", counting)

        def program(comm):
            requests = [self._request(pattern, comm.rank)
                        for pattern in patterns]
            return neighbor_alltoallv_init_many(comm, requests, mapping) and True

        assert all(run_spmd(self.N_RANKS, program, timeout=120))
        assert len(calls) == self.N_RANKS

    def test_mismatched_request_counts_rejected(self):
        patterns = self._patterns()
        mapping = paper_mapping(self.N_RANKS, ranks_per_node=4)

        def program(comm):
            keep = 1 if comm.rank else len(patterns)
            requests = [self._request(pattern, comm.rank)
                        for pattern in patterns[:keep]]
            neighbor_alltoallv_init_many(comm, requests, mapping)

        with pytest.raises(CommunicationError):
            run_spmd(self.N_RANKS, program, timeout=120)

    def test_empty_request_list(self):
        mapping = paper_mapping(2, ranks_per_node=2)

        def program(comm):
            return neighbor_alltoallv_init_many(comm, [], mapping)

        assert run_spmd(2, program, timeout=30) == [[], []]


class TestBufferHelpers:
    def test_pack_and_unpack_roundtrip(self):
        send_items = {2: [7, 9], 1: [3]}
        values = {7: 70.0, 9: 90.0, 3: 30.0}
        buffer, counts, displs, order = pack_alltoallv_buffers(send_items, values)
        assert order == [1, 2]
        assert counts.tolist() == [1, 2]
        assert displs.tolist() == [0, 1]
        assert buffer.tolist() == [30.0, 70.0, 90.0]

        recv_items = {4: [11], 0: [12, 13]}
        received = {11: 1.0, 12: 2.0, 13: 3.0}
        rbuffer, rcounts, rdispls, rorder = unpack_alltoallv_buffers(recv_items, received)
        assert rorder == [0, 4]
        assert rbuffer.tolist() == [2.0, 3.0, 1.0]
        assert rcounts.tolist() == [2, 1]
        assert rdispls.tolist() == [0, 2]
