"""Unit tests for model-driven dynamic variant selection."""

import pytest

from repro.collectives.plan import Variant
from repro.collectives.selection import best_per_pattern, select_variant
from repro.pattern.builders import pattern_from_edges, random_pattern
from repro.perfmodel.params import SetupCostModel, lassen_parameters
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError


@pytest.fixture
def mapping():
    return paper_mapping(32, ranks_per_node=16)


@pytest.fixture
def model():
    return lassen_parameters(active_per_node=16)


class TestSelectVariant:
    def test_dense_pattern_prefers_aggregation(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=20, avg_items_per_message=8,
                                 duplicate_fraction=0.5, seed=40)
        result = select_variant(pattern, mapping, model, expected_iterations=10_000)
        assert result.variant in (Variant.PARTIAL, Variant.FULL)

    def test_sparse_pattern_prefers_standard(self, mapping, model):
        # One lonely inter-node message: aggregation cannot help.
        pattern = pattern_from_edges(32, [(0, 16, [1])])
        result = select_variant(pattern, mapping, model, expected_iterations=10_000)
        assert result.variant is Variant.STANDARD

    def test_short_lived_pattern_avoids_setup_cost(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=20, seed=41)
        long_lived = select_variant(pattern, mapping, model, expected_iterations=100_000)
        short_lived = select_variant(pattern, mapping, model, expected_iterations=1)
        assert long_lived.total_cost(long_lived.variant) <= \
            long_lived.total_cost(Variant.STANDARD)
        # With a single iteration the setup can never pay off.
        assert short_lived.variant is Variant.STANDARD

    def test_include_setup_false_ignores_setup(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=20, seed=42)
        result = select_variant(pattern, mapping, model, expected_iterations=1,
                                include_setup=False)
        assert result.setup[Variant.PARTIAL] == 0.0
        assert result.variant in (Variant.PARTIAL, Variant.FULL)

    def test_per_iteration_and_setup_reported_for_all_candidates(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=10, seed=43)
        result = select_variant(pattern, mapping, model)
        assert set(result.per_iteration) == {Variant.STANDARD, Variant.PARTIAL,
                                             Variant.FULL}
        assert all(v >= 0 for v in result.per_iteration.values())

    def test_candidates_restriction(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=10, seed=44)
        result = select_variant(pattern, mapping, model,
                                candidates=(Variant.STANDARD,))
        assert result.variant is Variant.STANDARD

    def test_invalid_iterations(self, mapping, model):
        pattern = random_pattern(32, seed=45)
        with pytest.raises(ValidationError):
            select_variant(pattern, mapping, model, expected_iterations=0)

    def test_custom_setup_model(self, mapping, model):
        pattern = random_pattern(32, avg_neighbors=20, seed=46)
        expensive_setup = SetupCostModel(base=10.0, per_setup_message=1.0,
                                         per_setup_byte=1.0)
        result = select_variant(pattern, mapping, model, expected_iterations=10,
                                setup_model=expensive_setup)
        assert result.variant is Variant.STANDARD


class TestBestPerPattern:
    def test_one_selection_per_pattern(self, mapping, model):
        patterns = {
            "dense": random_pattern(32, avg_neighbors=20, seed=47),
            "sparse": pattern_from_edges(32, [(0, 16, [1])]),
        }
        results = best_per_pattern(patterns, mapping, model, expected_iterations=10_000)
        assert set(results) == {"dense", "sparse"}
        assert results["sparse"].variant is Variant.STANDARD
