"""Golden equivalence: world-level plan compilation vs the per-rank reference.

:func:`~repro.collectives.exchange.compile_world_exchange` emits the
concatenated world program with one vectorized pass over the plan's columnar
payload; :func:`~repro.collectives.exchange.compile_world_exchange_reference`
is the pinned seed-equivalent path that compiles every rank separately with
:func:`compile_exchange` and re-bases the results.  Every array of the two
must be **byte-identical** (values and dtypes) across variants x patterns x
mappings x element specs, and the world-level pass must reproduce the
reference compiler's :class:`PlanError` diagnostics for malformed plans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import Variant, make_plan
from repro.collectives.exchange import (
    ExchangeSpec,
    compile_world_exchange,
    compile_world_exchange_reference,
)
from repro.collectives.plan import CollectivePlan, Phase, PlannedMessage
from repro.pattern import CommPattern, halo_exchange_pattern, random_pattern
from repro.topology import paper_mapping
from repro.utils.errors import PlanError

ALL_VARIANTS = (Variant.POINT_TO_POINT, Variant.STANDARD,
                Variant.PARTIAL, Variant.FULL)

WORLD_ARRAYS = ("rank_bases", "owned_rows", "owned_offsets", "result_rows",
                "result_offsets", "owned_items_all", "result_items_all",
                "result_sources_all")
PROGRAM_ARRAYS = ("gather", "scatter", "wire_perm", "msg_sources",
                  "msg_dests", "msg_nbytes", "gather_rank_offsets",
                  "scatter_rank_offsets")


def assert_worlds_identical(fast, ref):
    """Every scalar, offset, and index array must match value- and dtype-wise."""
    assert fast.variant == ref.variant
    assert fast.spec == ref.spec
    assert fast.n_ranks == ref.n_ranks
    assert fast.n_world_rows == ref.n_world_rows
    assert fast.steps == ref.steps
    for name in WORLD_ARRAYS:
        lhs, rhs = getattr(fast, name), getattr(ref, name)
        assert lhs.dtype == rhs.dtype, name
        np.testing.assert_array_equal(lhs, rhs, err_msg=name)
    assert set(fast.programs) == set(ref.programs)
    for phase, program in fast.programs.items():
        reference = ref.programs[phase]
        assert program.tag == reference.tag
        for name in PROGRAM_ARRAYS:
            lhs = getattr(program, name)
            rhs = getattr(reference, name)
            assert lhs.dtype == rhs.dtype, (phase, name)
            np.testing.assert_array_equal(lhs, rhs,
                                          err_msg=f"{phase}:{name}")
    for rank in range(ref.n_ranks):
        np.testing.assert_array_equal(fast.owned_item_ids(rank),
                                      ref.owned_item_ids(rank))
        np.testing.assert_array_equal(fast.recv_item_ids(rank),
                                      ref.recv_item_ids(rank))
        np.testing.assert_array_equal(fast.recv_item_sources(rank),
                                      ref.recv_item_sources(rank))


def patterns():
    yield "halo-4x4", halo_exchange_pattern((4, 4))
    yield "halo-5x3-periodic", halo_exchange_pattern((5, 3), periodic=True)
    yield "random-24", random_pattern(24, seed=3)
    yield "random-dup", random_pattern(12, seed=7, duplicate_fraction=0.8)
    yield "sparse", CommPattern(6, {0: {3: [0, 1]}, 3: {0: [9], 5: [9, 11]}})
    yield "self-loops", CommPattern(4, {0: {0: [0], 1: [0, 2]},
                                        2: {2: [5], 3: [5]}})


@pytest.mark.parametrize("name,pattern", list(patterns()))
@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_world_compile_matches_reference(name, pattern, variant):
    mapping = paper_mapping(pattern.n_ranks,
                            ranks_per_node=min(4, pattern.n_ranks))
    plan = make_plan(pattern, mapping, variant)
    assert_worlds_identical(compile_world_exchange(plan),
                            compile_world_exchange_reference(plan))


@pytest.mark.parametrize("variant", (Variant.STANDARD, Variant.PARTIAL,
                                     Variant.FULL))
@pytest.mark.parametrize("dtype,item_size", [(np.float32, 1),
                                             (np.float64, 9),
                                             (np.complex128, 2)])
def test_world_compile_matches_reference_specs(variant, dtype, item_size):
    pattern = random_pattern(16, seed=11)
    mapping = paper_mapping(16, ranks_per_node=8)
    plan = make_plan(pattern, mapping, variant)
    spec = ExchangeSpec(dtype=dtype, item_size=item_size)
    assert_worlds_identical(compile_world_exchange(plan, spec),
                            compile_world_exchange_reference(plan, spec))


def test_world_compile_socket_regions_match():
    from repro.topology import RankMapping, lassen_like

    pattern = random_pattern(32, seed=5)
    mapping = RankMapping(lassen_like(nodes=2), 32, ranks_per_node=16,
                          region="socket")
    for variant in ALL_VARIANTS:
        plan = make_plan(pattern, mapping, variant)
        assert_worlds_identical(compile_world_exchange(plan),
                                compile_world_exchange_reference(plan))


def test_world_compile_leaves_compiled_lazy():
    """The world-level pass must not materialise per-rank CompiledExchange."""
    pattern = halo_exchange_pattern((3, 3))
    mapping = paper_mapping(9, ranks_per_node=3)
    plan = make_plan(pattern, mapping, Variant.STANDARD)
    fast = compile_world_exchange(plan)
    ref = compile_world_exchange_reference(plan)
    assert fast.compiled is None
    assert ref.compiled is not None and len(ref.compiled) == 9


def _unsendable_plan():
    """A direct-phase message packing a key its sender never held."""
    pattern = CommPattern(3, {0: {1: [0]}, 1: {2: [7]}})
    mapping = paper_mapping(3, ranks_per_node=3)
    plan = make_plan(pattern, mapping, Variant.STANDARD)
    bogus = PlannedMessage(Phase.DIRECT, 1, 2, slots=[(0, 99, 2)])
    phases = {Phase.DIRECT: plan.phases[Phase.DIRECT] + [bogus]}
    return CollectivePlan(variant=Variant.STANDARD, pattern=pattern,
                          mapping=mapping, phases=phases,
                          self_deliveries=plan.self_deliveries)


def test_world_compile_reports_unobtainable_send_like_reference():
    plan = _unsendable_plan()
    with pytest.raises(PlanError, match="neither owns nor received"):
        compile_world_exchange_reference(plan)
    with pytest.raises(PlanError, match="neither owns nor received"):
        compile_world_exchange(plan)


def test_world_compile_reports_undelivered_result_like_reference():
    """A plan that never delivers a required item fails in both compilers."""
    pattern = CommPattern(2, {0: {1: [0, 1]}})
    mapping = paper_mapping(2, ranks_per_node=2)
    plan = make_plan(pattern, mapping, Variant.STANDARD)
    # Drop the only direct message: item 0/1 can no longer reach rank 1.
    broken = CollectivePlan(variant=Variant.STANDARD, pattern=pattern,
                            mapping=mapping, phases={Phase.DIRECT: []},
                            self_deliveries=plan.self_deliveries)
    with pytest.raises(PlanError, match="no phase of"):
        compile_world_exchange_reference(broken)
    with pytest.raises(PlanError, match="no phase of"):
        compile_world_exchange(broken)
