"""Unit tests for the plan data structures and their validation."""

import pytest

from repro.collectives.plan import (
    CollectivePlan,
    Phase,
    PlannedMessage,
    Slot,
    Variant,
)
from repro.collectives.planner import plan_full, plan_partial, plan_standard
from repro.pattern.builders import pattern_from_edges
from repro.perfmodel.base import CostModel
from repro.perfmodel.postal import PostalModel
from repro.topology.presets import paper_mapping
from repro.utils.errors import PlanError


@pytest.fixture
def mapping():
    return paper_mapping(8, ranks_per_node=4)


@pytest.fixture
def cross_region_pattern():
    """Two ranks in region 0 each sending to two ranks in region 1, plus a
    local message, mirroring the paper's Example 2.1 in miniature."""
    return pattern_from_edges(8, [
        (0, 4, [100, 101]),
        (0, 5, [100]),          # item 100 duplicated across destinations
        (1, 5, [110]),
        (1, 2, [111]),          # fully local message
    ])


class TestPlannedMessage:
    def test_payload_defaults_to_slots(self):
        message = PlannedMessage(phase=Phase.DIRECT, src=0, dest=1,
                                 slots=[Slot(0, 7, 1), Slot(0, 8, 1)])
        assert message.payload_count() == 2
        assert message.nbytes(8) == 16

    def test_explicit_payload_keys(self):
        message = PlannedMessage(phase=Phase.GLOBAL, src=0, dest=4,
                                 slots=[Slot(0, 7, 4), Slot(0, 7, 5)],
                                 payload_keys=[(0, 7)])
        assert message.payload_count() == 1

    def test_self_message_rejected(self):
        with pytest.raises(PlanError):
            PlannedMessage(phase=Phase.DIRECT, src=2, dest=2, slots=[Slot(2, 1, 2)])

    def test_empty_message_rejected(self):
        with pytest.raises(PlanError):
            PlannedMessage(phase=Phase.DIRECT, src=0, dest=1, slots=[])


class TestPlanAccessors:
    def test_messages_from_and_to(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        assert {m.dest for m in plan.messages_from(0)} == {4, 5}
        assert {m.src for m in plan.messages_to(5)} == {0, 1}
        assert plan.n_messages == 4

    def test_statistics_sender_side(self, cross_region_pattern, mapping):
        stats = plan_standard(cross_region_pattern, mapping).statistics()
        assert stats.global_messages[0] == 2
        assert stats.local_messages[1] == 1
        assert stats.global_bytes[0] == 3 * 8

    def test_describe_mentions_variant(self, cross_region_pattern, mapping):
        assert "standard" in plan_standard(cross_region_pattern, mapping).describe()

    def test_max_global_message_bytes(self, cross_region_pattern, mapping):
        plan = plan_partial(cross_region_pattern, mapping)
        assert plan.max_global_message_bytes() > 0

    def test_item_bytes_taken_from_pattern(self, mapping):
        pattern = pattern_from_edges(8, [(0, 4, [1])], item_bytes=4)
        plan = plan_standard(pattern, mapping)
        assert plan.statistics().global_bytes[0] == 4


class TestPlanValidation:
    def test_all_variants_validate(self, cross_region_pattern, mapping):
        for plan in (plan_standard(cross_region_pattern, mapping),
                     plan_partial(cross_region_pattern, mapping),
                     plan_full(cross_region_pattern, mapping)):
            plan.validate()

    def test_missing_delivery_detected(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        plan.phases[Phase.DIRECT].pop()   # drop one message
        with pytest.raises(PlanError, match="misses"):
            plan.validate()

    def test_spurious_delivery_detected(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        plan.phases[Phase.DIRECT].append(
            PlannedMessage(phase=Phase.DIRECT, src=2, dest=3, slots=[Slot(2, 999, 3)]))
        with pytest.raises(PlanError, match="spurious"):
            plan.validate()

    def test_duplicate_delivery_detected(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        plan.phases[Phase.DIRECT].append(
            PlannedMessage(phase=Phase.DIRECT, src=1, dest=2, slots=[Slot(1, 111, 2)]))
        with pytest.raises(PlanError, match="more than once"):
            plan.validate()

    def test_global_phase_must_cross_regions(self, cross_region_pattern, mapping):
        plan = plan_partial(cross_region_pattern, mapping)
        plan.phases[Phase.GLOBAL].append(
            PlannedMessage(phase=Phase.GLOBAL, src=2, dest=3, slots=[Slot(2, 5, 3)]))
        with pytest.raises(PlanError, match="stays"):
            plan.validate()

    def test_local_phase_must_stay_in_region(self, cross_region_pattern, mapping):
        plan = plan_partial(cross_region_pattern, mapping)
        plan.phases[Phase.LOCAL].append(
            PlannedMessage(phase=Phase.LOCAL, src=2, dest=6, slots=[Slot(2, 5, 6)]))
        with pytest.raises(PlanError, match="crosses"):
            plan.validate()

    def test_terminal_slot_destination_checked(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        plan.phases[Phase.DIRECT].append(
            PlannedMessage(phase=Phase.DIRECT, src=2, dest=3, slots=[Slot(2, 5, 7)]))
        with pytest.raises(PlanError, match="bound for"):
            plan.validate()


class TestModeledTime:
    def test_standard_time_is_single_phase(self, cross_region_pattern, mapping):
        model = PostalModel(alpha=1e-6, beta=0.0)
        plan = plan_standard(cross_region_pattern, mapping)
        # Worst sender (rank 0) posts two messages.
        assert plan.modeled_time(model) == pytest.approx(2e-6)

    def test_aggregated_time_reflects_phase_structure(self, cross_region_pattern, mapping):
        model = PostalModel(alpha=1e-6, beta=0.0)
        plan = plan_partial(cross_region_pattern, mapping)
        time = plan.modeled_time(model)
        # max(l, s+g) + r with at least one message in s, g and r.
        assert time >= 2e-6
        assert time <= 6e-6

    def test_empty_pattern_costs_nothing(self, mapping):
        pattern = pattern_from_edges(8, [])
        model = PostalModel()
        for builder in (plan_standard, plan_partial, plan_full):
            assert builder(pattern, mapping).modeled_time(model) == 0.0

    def test_setup_costs_are_per_process_maxima(self, cross_region_pattern, mapping):
        plan = plan_partial(cross_region_pattern, mapping)
        n_messages, slot_bytes = plan.setup_costs()
        assert 0 < n_messages <= plan.n_messages
        assert slot_bytes > 0


class _OpaqueModel(CostModel):
    """Behaviour lives in an attribute the repr does not mention — the shape
    that used to poison the (repr-keyed) modeled-time memo."""

    def __init__(self, scale: float):
        self.scale = scale

    def message_time(self, nbytes, locality):
        return self.scale * (1.0e-6 + nbytes * 1.0e-9)

    def __repr__(self):
        return "_OpaqueModel()"


class _UnhashableModel(_OpaqueModel):
    __hash__ = None  # dict-unusable: modeled_time must compute uncached


class TestModeledTimeMemo:
    """Regression: the memo is keyed by the live model object, never by a
    lossy repr, so re-measuring with a different model cannot be served
    another model's cached time."""

    def test_models_with_identical_reprs_do_not_share_entries(
            self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        slow = _OpaqueModel(scale=1000.0)
        fast = _OpaqueModel(scale=1.0)
        assert repr(slow) == repr(fast)
        t_slow = plan.modeled_time(slow)
        t_fast = plan.modeled_time(fast)
        assert t_fast > 0.0
        assert t_slow == pytest.approx(1000.0 * t_fast)

    def test_same_object_hits_the_cache(self, cross_region_pattern, mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        model = _OpaqueModel(scale=2.0)
        first = plan.modeled_time(model)
        assert plan.modeled_time(model) == first
        fresh = plan_standard(cross_region_pattern, mapping)
        assert fresh.modeled_time(_OpaqueModel(scale=2.0)) == first

    def test_unhashable_model_computes_uncached(self, cross_region_pattern,
                                                mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        reference = plan.modeled_time(_OpaqueModel(scale=3.0))
        model = _UnhashableModel(scale=3.0)
        assert plan.modeled_time(model) == reference
        model.scale = 6.0  # no cache entry to go stale
        assert plan.modeled_time(model) == pytest.approx(2.0 * reference)

    def test_dead_models_do_not_pin_entries(self, cross_region_pattern,
                                            mapping):
        plan = plan_standard(cross_region_pattern, mapping)
        for scale in (1.0, 2.0, 3.0):
            plan.modeled_time(_OpaqueModel(scale=scale))  # keys die right away
        assert len(plan._modeled_time_memo) == 0

    def test_pickle_round_trip_recomputes_correctly(self, cross_region_pattern,
                                                    mapping):
        import pickle

        plan = plan_standard(cross_region_pattern, mapping)
        model = _OpaqueModel(scale=5.0)
        before = plan.modeled_time(model)
        clone = pickle.loads(pickle.dumps(plan))
        assert len(clone._modeled_time_memo) == 0  # memos never travel
        assert clone.modeled_time(model) == before
        assert clone.modeled_time(_OpaqueModel(scale=10.0)) == \
            pytest.approx(2.0 * before)
