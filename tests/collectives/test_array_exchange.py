"""Tests of the array-native exchange path.

The tentpole claims of the array path: values flow through dense numpy buffers
end to end (no per-item Python loops between ``start`` and ``wait``), the path
is dtype-generic with vector-valued items, the wire carries exactly
``count * item_size * dtype.itemsize`` bytes per message, and the deprecated
item-keyed dict interface produces identical results through the same core.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives.persistent as persistent_module
from repro.collectives.api import (
    neighbor_alltoallv_init,
    pack_alltoallv_buffers,
    unpack_alltoallv_buffers,
)
from repro.collectives.exchange import ExchangeSpec, compile_exchange
from repro.collectives.persistent import PersistentNeighborCollective
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.builders import neighbor_lists, pattern_from_edges, random_pattern
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.simmpi.world import SimWorld, run_spmd
from repro.topology.presets import paper_mapping
from repro.utils.errors import PlanError, ValidationError


def _reference_value(origin: int, item: int, component: int, dtype: np.dtype):
    """Deterministic per-(origin, item, component) value, exact in every dtype."""
    dtype = np.dtype(dtype)
    if dtype.kind == "i":
        return origin * 1_000_000 + item * 16 + component
    if dtype.kind == "c":
        return complex(origin * 1000 + item, component + 1)
    return float(origin * 1000 + item) + component / 8.0


def _owned_values(collective, rank, dtype, item_size):
    """Dense input array for ``rank`` in ``owned_item_ids`` order."""
    ids = collective.owned_item_ids
    values = np.empty((ids.size, item_size), dtype=dtype)
    for position, item in enumerate(ids.tolist()):
        for component in range(item_size):
            values[position, component] = _reference_value(rank, item, component, dtype)
    return values if item_size > 1 else values.reshape(-1)


def _expected_output(collective, dtype, item_size):
    """Expected dense output of ``wait`` computed straight from the pattern."""
    ids = collective.recv_item_ids
    sources = collective.recv_item_sources
    expected = np.empty((ids.size, item_size), dtype=dtype)
    for position, (item, src) in enumerate(zip(ids.tolist(), sources.tolist())):
        for component in range(item_size):
            expected[position, component] = _reference_value(src, item, component, dtype)
    return expected if item_size > 1 else expected.reshape(-1)


def _array_exchange_program(comm, pattern, mapping, variant, dtype, item_size):
    rank = comm.rank
    send_items = {d: pattern.send_items(rank, d).tolist()
                  for d in pattern.send_ranks(rank)}
    recv_items = {s: pattern.recv_items(rank, s).tolist()
                  for s in pattern.recv_ranks(rank)}
    sources, dests = neighbor_lists(pattern, rank)
    graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
    collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                         variant=variant, dtype=dtype,
                                         item_size=item_size)
    values = _owned_values(collective, rank, dtype, item_size)
    received = collective.exchange(values)
    expected = _expected_output(collective, dtype, item_size)
    assert received.dtype == np.dtype(dtype)
    assert received.shape == expected.shape
    np.testing.assert_array_equal(received, expected)
    return True


class TestArrayPathDeliversCorrectData:
    @pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL,
                                         Variant.FULL, Variant.POINT_TO_POINT])
    def test_dense_float64_exchange(self, variant):
        n_ranks = 16
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=6, duplicate_fraction=0.5,
                                 seed=41)
        results = run_spmd(n_ranks, _array_exchange_program, pattern, mapping,
                           variant, np.float64, 1, timeout=120)
        assert all(results)

    def test_repeated_iterations_reuse_buffers(self):
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=4, seed=42)

        def program(comm):
            rank = comm.rank
            send_items = {d: pattern.send_items(rank, d).tolist()
                          for d in pattern.send_ranks(rank)}
            recv_items = {s: pattern.recv_items(rank, s).tolist()
                          for s in pattern.recv_ranks(rank)}
            sources, dests = neighbor_lists(pattern, rank)
            graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
            collective = neighbor_alltoallv_init(graph, send_items, recv_items,
                                                 mapping, variant=Variant.FULL)
            base = _owned_values(collective, rank, np.float64, 1)
            expected = _expected_output(collective, np.float64, 1)
            for iteration in (1, 2, 3):
                received = collective.exchange(base * iteration)
                np.testing.assert_array_equal(received, expected * iteration)
            return True

        assert all(run_spmd(n_ranks, program, timeout=120))

    def test_lossy_input_cast_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1, 2]), (1, 0, [5])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            f32 = PersistentNeighborCollective(comm, plan, dtype=np.float32)
            if comm.rank == 0:
                # Cross-kind casts that can corrupt values must be rejected:
                # complex into a real collective (imaginary parts discarded),
                # int64 into float32 (exact above 2**24 only).
                with pytest.raises(ValidationError, match="safely cast"):
                    collective.start(np.array([1 + 2j, 3 + 4j]))
                with pytest.raises(ValidationError, match="safely cast"):
                    f32.start(np.array([16777217, 1], dtype=np.int64))
            # Within-kind narrowing (float64 -> float32) is C-style assignment
            # and stays allowed.
            f32.exchange(np.arange(f32.owned_item_ids.size, dtype=np.float64))
            collective.exchange(np.arange(collective.owned_item_ids.size,
                                          dtype=np.float64))
            return True

        assert all(run_spmd(2, program, timeout=30))

    def test_lossy_input_cast_raises_in_dict_mode_too(self, small_mapping):
        """The deprecated dict boundary applies the same safe-cast rule as the
        array path — complex values never silently lose their imaginary part."""
        pattern = pattern_from_edges(2, [(0, 1, [1, 2]), (1, 0, [5])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            if comm.rank == 0:
                with pytest.raises(ValidationError, match="safely cast"):
                    collective.start({int(i): complex(i, 99.0)
                                      for i in collective.owned_item_ids})
            collective.exchange({int(i): float(i)
                                 for i in collective.owned_item_ids})
            return True

        assert all(run_spmd(2, program, timeout=30))

    def test_wrong_input_shape_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1, 2]), (1, 0, [5])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            if comm.rank == 0:
                with pytest.raises(ValidationError, match="shape"):
                    collective.start(np.zeros(5))
            # Complete a real exchange so the peer does not hang.
            collective.exchange(np.arange(collective.owned_item_ids.size,
                                          dtype=np.float64))
            return True

        assert all(run_spmd(2, program, timeout=30))


class TestDictCompatibilityWrapper:
    """The deprecated item-keyed interface runs the same array core."""

    def test_dict_and_array_results_agree(self):
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=4, duplicate_fraction=0.4,
                                 seed=43)

        def program(comm):
            rank = comm.rank
            send_items = {d: pattern.send_items(rank, d).tolist()
                          for d in pattern.send_ranks(rank)}
            recv_items = {s: pattern.recv_items(rank, s).tolist()
                          for s in pattern.recv_ranks(rank)}
            sources, dests = neighbor_lists(pattern, rank)
            graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
            collective = neighbor_alltoallv_init(graph, send_items, recv_items,
                                                 mapping, variant=Variant.PARTIAL)
            array_in = _owned_values(collective, rank, np.float64, 1)
            dict_in = {int(i): float(v)
                       for i, v in zip(collective.owned_item_ids, array_in)}
            from_array = collective.exchange(array_in)
            from_dict = collective.exchange(dict_in)
            assert isinstance(from_dict, dict)
            assert set(from_dict) == set(collective.recv_item_ids.tolist())
            for position, item in enumerate(collective.recv_item_ids.tolist()):
                assert from_dict[item] == from_array[position]
            return True

        assert all(run_spmd(n_ranks, program, timeout=120))

    def test_dict_scalars_broadcast_across_item_components(self, small_mapping):
        """A scalar per item in dict mode fills every component of the item row,
        exactly as the seed's per-item assignment loop did."""
        pattern = pattern_from_edges(2, [(0, 1, [1, 2]), (1, 0, [10])],
                                     item_size=3)

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan, item_size=3)
            values = {int(i): float(i) for i in collective.owned_item_ids}
            result = collective.exchange(values)
            for item, row in result.items():
                np.testing.assert_array_equal(row, np.full(3, float(item)))
            return sorted(result)

        received = run_spmd(2, program, timeout=30)
        assert received == [[10], [1, 2]]

    def test_missing_value_in_dict_raises(self, small_mapping):
        pattern = pattern_from_edges(2, [(0, 1, [1, 2])])

        def program(comm):
            plan = make_plan(pattern, small_mapping, Variant.STANDARD)
            collective = PersistentNeighborCollective(comm, plan)
            if comm.rank == 0:
                with pytest.raises(PlanError, match="no value"):
                    collective.start({1: 1.0})   # value for item 2 missing
            return True

        assert all(run_spmd(2, program, timeout=30))


class TestZeroPerItemWork:
    """Regression guard: the Start/Wait path is O(phases), not O(items).

    The pack and unpack seams (``_gather_into`` / ``_scatter_from``) are
    shimmed with counting wrappers; the number of invocations per exchange
    must not change when the item count grows 100-fold — every message moves
    through one fancy-index numpy operation regardless of its size.
    """

    @staticmethod
    def _count_ops(monkeypatch, n_items):
        import threading

        lock = threading.Lock()
        counters = {"gather": 0, "scatter": 0}
        real_gather = persistent_module._gather_into
        real_scatter = persistent_module._scatter_from

        def counting_gather(work, indices, out):
            with lock:
                counters["gather"] += 1
            real_gather(work, indices, out)

        def counting_scatter(work, indices, arena):
            with lock:
                counters["scatter"] += 1
            real_scatter(work, indices, arena)

        monkeypatch.setattr(persistent_module, "_gather_into", counting_gather)
        monkeypatch.setattr(persistent_module, "_scatter_from", counting_scatter)

        mapping = paper_mapping(2, ranks_per_node=1)
        pattern = pattern_from_edges(2, [
            (0, 1, list(range(n_items))),
            (1, 0, list(range(n_items, 2 * n_items))),
        ])

        def program(comm):
            plan = make_plan(pattern, mapping, Variant.PARTIAL)
            collective = PersistentNeighborCollective(comm, plan)
            values = np.arange(collective.owned_item_ids.size, dtype=np.float64)
            received = collective.exchange(values)
            assert received.size == n_items
            return True

        assert all(run_spmd(2, program, timeout=60))
        return counters["gather"], counters["scatter"]

    def test_op_count_independent_of_item_count(self, monkeypatch):
        small = self._count_ops(monkeypatch, 10)
        large = self._count_ops(monkeypatch, 1000)
        assert small == large
        # Two ranks x at most one pack + one unpack per non-empty phase.
        assert small[0] <= 8 and small[1] <= 8


class TestTrafficByteAccounting:
    """Observed wire bytes must equal count * item_size * dtype.itemsize."""

    @pytest.mark.parametrize("dtype,item_size", [(np.float32, 4), (np.int64, 1),
                                                 (np.complex128, 2)])
    def test_profiler_matches_spec(self, dtype, item_size):
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        pattern = random_pattern(n_ranks, avg_neighbors=4, duplicate_fraction=0.5,
                                 seed=44, dtype=dtype, item_size=item_size)
        plan = make_plan(pattern, mapping, Variant.FULL)
        profiler = TrafficProfiler(mapping)
        world = SimWorld(n_ranks, timeout=120, profiler=profiler)

        def program(comm):
            _array_exchange_program(comm, pattern, mapping, Variant.FULL,
                                    dtype, item_size)

        world.run(program)
        observed = profiler.total()
        spec = ExchangeSpec(dtype=dtype, item_size=item_size)
        expected_bytes = sum(m.payload_count() for m in plan.messages()) \
            * spec.item_bytes
        assert observed.byte_count == expected_bytes
        assert observed.message_count == plan.n_messages


class TestCompiledExchange:
    def test_compile_assigns_owned_rows_first(self, small_mapping):
        pattern = random_pattern(16, avg_neighbors=5, seed=45)
        plan = make_plan(pattern, small_mapping, Variant.FULL)
        for rank in (0, 3, 7):
            compiled = compile_exchange(plan, rank)
            assert compiled.n_rows >= compiled.n_owned
            assert np.array_equal(np.sort(compiled.owned_items),
                                  compiled.owned_items)
            # Result rows of self-sent items point into the owned prefix.
            for position, src in enumerate(compiled.result_sources.tolist()):
                if src == rank:
                    assert compiled.result_rows[position] < compiled.n_owned

    def test_forwarding_a_local_receive_is_rejected(self):
        """Compile-time validation mirrors the runtime availability order.

        The setup redistribution packs inside ``start`` *before* the local
        phase's receives land (they complete in ``wait``), so a plan whose
        setup message forwards a locally-received key must be rejected at
        compile time — at runtime it would put never-written rows on the wire.
        """
        from repro.collectives.plan import (
            CollectivePlan, Phase, PlannedMessage, Slot,
        )
        from repro.pattern.comm_pattern import CommPattern

        mapping = paper_mapping(4, ranks_per_node=2)
        pattern = CommPattern(4, {1: {0: [5]}})
        plan = CollectivePlan(
            variant=Variant.PARTIAL, pattern=pattern, mapping=mapping,
            phases={
                Phase.LOCAL: [PlannedMessage(phase=Phase.LOCAL, src=1, dest=0,
                                             slots=[Slot(1, 5, 0)])],
                Phase.SETUP_REDIST: [PlannedMessage(phase=Phase.SETUP_REDIST,
                                                    src=0, dest=1,
                                                    slots=[Slot(1, 5, 2)])],
                Phase.GLOBAL: [],
                Phase.FINAL_REDIST: [],
            })
        with pytest.raises(PlanError, match="neither owns nor received"):
            compile_exchange(plan, 0)

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            ExchangeSpec(item_size=0)
        spec = ExchangeSpec(dtype=np.float32, item_size=9)
        assert spec.item_bytes == 36


class TestVectorizedBufferHelpers:
    def test_pack_dtype_and_item_size(self):
        send_items = {2: [7, 9], 1: [3]}
        values = {7: [70.0, 71.0], 9: [90.0, 91.0], 3: [30.0, 31.0]}
        buffer, counts, displs, order = pack_alltoallv_buffers(
            send_items, values, dtype=np.float32, item_size=2)
        assert buffer.dtype == np.float32
        assert buffer.shape == (3, 2)
        assert order == [1, 2]
        np.testing.assert_array_equal(
            buffer, np.array([[30, 31], [70, 71], [90, 91]], dtype=np.float32))

    def test_unpack_missing_value_raises(self):
        with pytest.raises(ValidationError, match="no value"):
            unpack_alltoallv_buffers({0: [1, 2]}, {1: 1.0})
