"""Unit tests for the standard / partial / full planners."""

import pytest

from repro.collectives.plan import Phase, Variant
from repro.collectives.planner import (
    all_plans,
    make_plan,
    plan_full,
    plan_partial,
    plan_standard,
)
from repro.pattern.builders import pattern_from_edges, random_pattern
from repro.topology.presets import paper_mapping
from repro.utils.errors import PlanError


@pytest.fixture
def mapping():
    return paper_mapping(16, ranks_per_node=4)


@pytest.fixture
def example_pattern():
    """A miniature of the paper's Example 2.1: region 0 sends shared values to
    region 1, with duplicates across destination ranks."""
    return pattern_from_edges(16, [
        (0, 4, [100]), (0, 5, [100, 101]), (0, 6, [101]),   # duplicates of 100, 101
        (1, 4, [110]), (1, 7, [110]),                       # duplicate of 110
        (2, 5, [120]),
        (0, 1, [103]),                                      # fully local
        (3, 12, [130]),                                      # region 0 -> region 3
    ])


class TestStandardPlan:
    def test_one_message_per_edge(self, example_pattern, mapping):
        plan = plan_standard(example_pattern, mapping)
        assert plan.n_messages == 8
        assert set(plan.phases) == {Phase.DIRECT}
        plan.validate()

    def test_point_to_point_variant(self, example_pattern, mapping):
        plan = plan_standard(example_pattern, mapping, variant=Variant.POINT_TO_POINT)
        assert plan.variant is Variant.POINT_TO_POINT
        plan.validate()

    def test_rejects_aggregated_variants(self, example_pattern, mapping):
        with pytest.raises(PlanError):
            plan_standard(example_pattern, mapping, variant=Variant.PARTIAL)

    def test_self_edges_become_self_deliveries(self, mapping):
        pattern = pattern_from_edges(16, [(2, 2, [5, 6])])
        plan = plan_standard(pattern, mapping)
        assert plan.n_messages == 0
        assert len(plan.self_deliveries) == 2
        plan.validate()

    def test_within_edge_duplicates_collapsed(self, mapping):
        pattern = pattern_from_edges(16, [(0, 4, [9, 9, 9])])
        plan = plan_standard(pattern, mapping)
        message = next(plan.messages())
        assert message.payload_count() == 1
        plan.validate()


class TestAggregatedPlans:
    def test_single_global_message_per_region_pair(self, example_pattern, mapping):
        plan = plan_partial(example_pattern, mapping)
        global_messages = list(plan.messages(Phase.GLOBAL))
        # Region pairs with traffic: (0 -> 1) and (0 -> 3).
        assert len(global_messages) == 2
        endpoints = {(mapping.region_of(m.src), mapping.region_of(m.dest))
                     for m in global_messages}
        assert endpoints == {(0, 1), (0, 3)}
        plan.validate()

    def test_local_phase_matches_intra_region_edges(self, example_pattern, mapping):
        plan = plan_partial(example_pattern, mapping)
        local = list(plan.messages(Phase.LOCAL))
        assert len(local) == 1 and local[0].src == 0 and local[0].dest == 1

    def test_setup_phase_targets_leaders_only(self, example_pattern, mapping):
        plan = plan_partial(example_pattern, mapping)
        for message in plan.messages(Phase.SETUP_REDIST):
            assert mapping.same_region(message.src, message.dest)

    def test_final_phase_delivers_to_pattern_destinations(self, example_pattern, mapping):
        plan = plan_partial(example_pattern, mapping)
        final_dests = {m.dest for m in plan.messages(Phase.FINAL_REDIST)}
        pattern_dests = {dest for src, dest, _items in example_pattern.edges()
                         if not mapping.same_region(src, dest)}
        # Every final-redistribution message targets a real destination rank
        # (some destinations are reached without a message when they are the
        # receive leader themselves).
        assert final_dests <= pattern_dests

    def test_partial_keeps_duplicates_full_removes_them(self, example_pattern, mapping):
        partial = plan_partial(example_pattern, mapping)
        full = plan_full(example_pattern, mapping)
        assert full.global_payload_items() < partial.global_payload_items()
        # The routing work (slots) is identical; only the payload shrinks.
        assert sum(len(m.slots) for m in full.messages(Phase.GLOBAL)) == \
            sum(len(m.slots) for m in partial.messages(Phase.GLOBAL))
        partial.validate()
        full.validate()

    def test_full_never_larger_than_partial_anywhere(self, mapping):
        pattern = random_pattern(16, avg_neighbors=7, duplicate_fraction=0.6, seed=8)
        partial = plan_partial(pattern, mapping)
        full = plan_full(pattern, mapping)
        partial_stats = partial.statistics()
        full_stats = full.statistics()
        assert full_stats.max_global_bytes <= partial_stats.max_global_bytes
        assert full_stats.total_global_bytes <= partial_stats.total_global_bytes

    def test_aggregation_reduces_global_message_count(self, mapping):
        pattern = random_pattern(16, avg_neighbors=10, seed=9)
        standard = plan_standard(pattern, mapping).statistics()
        partial = plan_partial(pattern, mapping).statistics()
        assert partial.total_global_messages <= standard.total_global_messages
        assert partial.max_global_messages <= standard.max_global_messages

    def test_aggregation_increases_local_traffic(self, mapping):
        pattern = random_pattern(16, avg_neighbors=10, seed=10)
        standard = plan_standard(pattern, mapping).statistics()
        partial = plan_partial(pattern, mapping).statistics()
        assert partial.total_local_messages >= standard.total_local_messages

    def test_messages_between_same_ranks_are_merged_per_phase(self, mapping):
        # Rank 0 sends to two ranks of region 1 and two ranks of region 2; if
        # the same local leader handles both pairs the setup messages merge.
        pattern = random_pattern(16, avg_neighbors=8, seed=12)
        plan = plan_partial(pattern, mapping)
        for phase in (Phase.SETUP_REDIST, Phase.GLOBAL, Phase.FINAL_REDIST):
            endpoints = [(m.src, m.dest) for m in plan.messages(phase)]
            assert len(endpoints) == len(set(endpoints))

    def test_single_region_pattern_has_no_global_phase(self):
        mapping = paper_mapping(8, ranks_per_node=8)
        pattern = random_pattern(8, avg_neighbors=4, seed=1)
        plan = plan_partial(pattern, mapping)
        assert not list(plan.messages(Phase.GLOBAL))
        assert not list(plan.messages(Phase.SETUP_REDIST))
        plan.validate()


class TestUndersizedMapping:
    def test_aggregated_plan_raises_topology_error(self):
        from repro.utils.errors import TopologyError
        pattern = pattern_from_edges(16, [(0, 12, [1])])
        small_mapping = paper_mapping(8, ranks_per_node=4)
        with pytest.raises(TopologyError, match="out of range"):
            plan_partial(pattern, small_mapping)


class TestDispatchers:
    def test_make_plan_accepts_strings(self, example_pattern, mapping):
        plan = make_plan(example_pattern, mapping, "full")
        assert plan.variant is Variant.FULL

    def test_make_plan_rejects_unknown(self, example_pattern, mapping):
        with pytest.raises(ValueError):
            make_plan(example_pattern, mapping, "turbo")

    def test_all_plans_covers_every_variant(self, example_pattern, mapping):
        plans = all_plans(example_pattern, mapping)
        assert set(plans) == set(Variant)
        for plan in plans.values():
            plan.validate()

    def test_all_plans_shares_leader_assignment(self, example_pattern, mapping):
        plans = all_plans(example_pattern, mapping)
        partial_globals = {(m.src, m.dest) for m in plans[Variant.PARTIAL].messages(Phase.GLOBAL)}
        full_globals = {(m.src, m.dest) for m in plans[Variant.FULL].messages(Phase.GLOBAL)}
        assert partial_globals == full_globals
