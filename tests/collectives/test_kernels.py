"""The fused gather–permute–scatter kernels and their backend selection.

Every available backend must execute the three kernels byte-identically to
the plain-numpy reference, the fused kernel must equal the unfused
gather→permute→scatter composition, and the ``REPRO_KERNELS`` override must
force the numpy fallback (or fail loudly when numba is requested but not
importable) — checked both in-process and through a subprocess so the
import-time default is part of the test.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.collectives import (
    HAVE_NUMBA,
    KERNELS_ENV,
    KernelBackend,
    Variant,
    WorldNeighborCollective,
    active_backend,
    available_backends,
    make_plan,
    select_backend,
)
from repro.collectives.kernels import NUMPY_BACKEND
from repro.pattern import random_pattern
from repro.topology import paper_mapping
from repro.utils.errors import ValidationError

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _phase_arrays(rng, *, n_rows=64, n_wire=200, item_size=3, dtype=np.float64):
    """A synthetic phase: work array plus gather / perm / scatter indices.

    Duplicate scatter targets are made *value-consistent* (every duplicate
    delivers the same source row), matching the world-exchange invariant the
    fused kernel relies on.
    """
    work = rng.standard_normal((n_rows, item_size)).astype(dtype)
    gather = rng.integers(0, n_rows // 2, size=n_wire).astype(np.int64)
    perm = rng.permutation(n_wire).astype(np.int64)
    # Scatter into the upper half so sources are never overwritten mid-phase,
    # with some duplicate targets: dest row depends only on the source row.
    scatter = (n_rows // 2 + (gather[perm] % (n_rows // 2))).astype(np.int64)
    return work, gather, perm, scatter


@pytest.mark.parametrize("backend_name", available_backends())
class TestKernelEquivalence:
    @pytest.mark.parametrize("dtype,item_size", [
        (np.float64, 1), (np.float32, 4), (np.complex128, 2),
    ])
    def test_gather_scatter_match_numpy_reference(self, backend_name, dtype,
                                                  item_size):
        backend = select_backend(backend_name)
        rng = np.random.default_rng(5)
        work, gather, perm, scatter = _phase_arrays(rng, item_size=item_size)
        work = work.astype(dtype)

        wire = np.empty((gather.size, work.shape[1]), dtype=work.dtype)
        backend.gather(work, gather, wire)
        assert np.array_equal(wire, work[gather])

        delivered = work.copy()
        backend.scatter(delivered, scatter, wire[perm])
        expected = work.copy()
        expected[scatter] = work[gather][perm]
        assert np.array_equal(delivered, expected)

    def test_fused_equals_unfused_composition(self, backend_name):
        """``fused(work, scatter, gather[perm])`` == gather→permute→scatter."""
        backend = select_backend(backend_name)
        rng = np.random.default_rng(11)
        work, gather, perm, scatter = _phase_arrays(rng)

        unfused = work.copy()
        wire = np.empty((gather.size, work.shape[1]), dtype=work.dtype)
        backend.gather(unfused, gather, wire)
        backend.scatter(unfused, scatter, wire[perm])

        fused = work.copy()
        backend.fused(fused, scatter, np.ascontiguousarray(gather[perm]))
        assert np.array_equal(fused, unfused)

    def test_fused_zero_sized_phase_is_a_no_op(self, backend_name):
        backend = select_backend(backend_name)
        work = np.arange(12, dtype=np.float64).reshape(6, 2)
        before = work.copy()
        empty = np.empty(0, dtype=np.int64)
        backend.fused(work, empty, empty)
        assert np.array_equal(work, before)


class TestBackendSelection:
    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backends()
        assert select_backend("numpy") is NUMPY_BACKEND

    def test_active_backend_matches_environment(self):
        assert active_backend().name in available_backends()

    def test_backend_instance_passes_through(self):
        assert select_backend(NUMPY_BACKEND) is NUMPY_BACKEND

    def test_name_is_normalized(self):
        assert select_backend("  NumPy ") is NUMPY_BACKEND

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            select_backend("cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="needs a numba-free environment")
    def test_numba_without_numba_is_a_hard_error(self):
        with pytest.raises(ValidationError, match="numba is not importable"):
            select_backend("numba")

    def test_env_override_consulted_per_call(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert select_backend(None).name == "numpy"
        monkeypatch.setenv(KERNELS_ENV, "fortran")
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            select_backend(None)

    def test_engine_accepts_explicit_backend(self):
        """An explicitly pinned backend produces the default results."""
        from repro.simmpi import ExchangeEngine

        n_ranks = 6
        pattern = random_pattern(n_ranks, avg_neighbors=3, seed=8)
        mapping = paper_mapping(n_ranks, ranks_per_node=3)
        plan = make_plan(pattern, mapping, Variant.FULL)
        values = None
        results = []
        for kernels in (None, "numpy", NUMPY_BACKEND):
            engine = ExchangeEngine(n_ranks, kernels=kernels)
            with WorldNeighborCollective(plan, engine=engine) as collective:
                if values is None:
                    values = [10.0 * rank
                              + collective.owned_item_ids(rank).astype(float)
                              for rank in range(n_ranks)]
                results.append(collective.exchange(values))
            engine.close()
        for rank in range(n_ranks):
            assert np.array_equal(results[0][rank], results[1][rank])
            assert np.array_equal(results[0][rank], results[2][rank])


class TestImportTimeOverride:
    """``REPRO_KERNELS`` steers the import-time default in a fresh process."""

    def _run(self, env_value, code):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        if env_value is None:
            env.pop(KERNELS_ENV, None)
        else:
            env[KERNELS_ENV] = env_value
        return subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=300,
                              env=env)

    def test_numpy_override_forces_fallback(self):
        """Regression: the fallback must win even where numba is installed."""
        result = self._run("numpy", (
            "from repro.collectives.kernels import active_backend\n"
            "print(active_backend().name)\n"
        ))
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "numpy"

    def test_default_matches_numba_availability(self):
        result = self._run(None, (
            "from repro.collectives.kernels import HAVE_NUMBA, active_backend\n"
            "expected = 'numba' if HAVE_NUMBA else 'numpy'\n"
            "assert active_backend().name == expected, active_backend().name\n"
            "print('OK')\n"
        ))
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    @pytest.mark.skipif(HAVE_NUMBA, reason="needs a numba-free environment")
    def test_numba_override_without_numba_fails_at_import(self):
        result = self._run("numba", "import repro.collectives.kernels\n")
        assert result.returncode != 0
        assert "numba is not importable" in result.stderr
