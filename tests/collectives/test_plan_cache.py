"""Semantics of the content-addressed plan/exchange cache.

The cache contract (:mod:`repro.collectives.plan_cache`): a hit is
byte-identical to a cold compile, every key ingredient — mapping, variant,
strategy, dtype, item size — misses independently, hand-built plans are never
served from cache, and a defective on-disk entry degrades to a miss with a
:class:`PlanCacheWarning`, never to a wrong result.
"""

from __future__ import annotations

import os
import pickle
import warnings

import numpy as np
import pytest

from test_world_compile_equivalence import assert_worlds_identical

from repro.collectives import (
    BalanceStrategy,
    PlanCacheWarning,
    Variant,
    WorldNeighborCollective,
    clear_plan_cache,
    compile_world_exchange,
    make_plan,
    plan_cache_stats,
)
from repro.collectives.exchange import ExchangeSpec
from repro.collectives.plan import CollectivePlan, Phase, PlannedMessage
from repro.collectives import plan_cache
from repro.pattern import halo_exchange_pattern
from repro.topology import paper_mapping


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Every test starts with empty tiers and no disk directory configured."""
    monkeypatch.delenv(plan_cache.ENV_VAR, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def pattern():
    return halo_exchange_pattern((4, 4))


@pytest.fixture
def mapping():
    return paper_mapping(16, ranks_per_node=4)


# -- in-memory tier -----------------------------------------------------------------


def test_memory_hit_returns_cached_plan_object(pattern, mapping):
    first = make_plan(pattern, mapping, Variant.PARTIAL)
    second = make_plan(pattern, mapping, Variant.PARTIAL)
    assert second is first
    assert plan_cache_stats()["plan_memory_hits"] == 1


def test_memory_hit_byte_identical_to_cold_compile(pattern, mapping):
    plan = make_plan(pattern, mapping, Variant.FULL)
    spec = ExchangeSpec(pattern.dtype, pattern.item_size)
    warm = WorldNeighborCollective(plan)
    try:
        cold_plan = make_plan(pattern, mapping, Variant.FULL, use_cache=False)
        cold = compile_world_exchange(cold_plan, spec)
        assert_worlds_identical(warm.world, cold)
    finally:
        warm.close()


def test_world_cache_shared_across_collectives(pattern, mapping):
    plan = make_plan(pattern, mapping, Variant.STANDARD)
    first = WorldNeighborCollective(plan)
    second = WorldNeighborCollective(plan)
    try:
        assert second.world is first.world
        values = [100.0 * rank + first.owned_item_ids(rank).astype(float)
                  for rank in range(pattern.n_ranks)]
        for lhs, rhs in zip(first.exchange(values), second.exchange(values)):
            np.testing.assert_array_equal(lhs, rhs)
    finally:
        first.close()
        second.close()


def test_each_key_ingredient_misses_independently(pattern, mapping):
    base = make_plan(pattern, mapping, Variant.PARTIAL)
    other_mapping = paper_mapping(16, ranks_per_node=8)
    assert make_plan(pattern, other_mapping, Variant.PARTIAL) is not base
    assert make_plan(pattern, mapping, Variant.FULL) is not base
    assert make_plan(pattern, mapping, Variant.PARTIAL,
                     strategy=BalanceStrategy.ROUND_ROBIN) is not base

    spec = ExchangeSpec(pattern.dtype, pattern.item_size)
    world = plan_cache.fetch_world(base, spec) \
        or compile_world_exchange(base, spec)
    plan_cache.store_world(base, spec, world)
    assert plan_cache.fetch_world(base, spec) is world
    assert plan_cache.fetch_world(
        base, ExchangeSpec(dtype=np.dtype(np.float32), item_size=1)) is None
    assert plan_cache.fetch_world(
        base, ExchangeSpec(dtype=spec.dtype, item_size=spec.item_size + 1)) \
        is None


def test_strategy_normalised_out_of_unaggregated_keys(pattern, mapping):
    bytes_plan = make_plan(pattern, mapping, Variant.STANDARD,
                           strategy=BalanceStrategy.BYTES)
    count_plan = make_plan(pattern, mapping, Variant.STANDARD,
                           strategy=BalanceStrategy.ROUND_ROBIN)
    assert count_plan is bytes_plan


def test_use_cache_false_always_recompiles(pattern, mapping):
    cached = make_plan(pattern, mapping, Variant.FULL)
    cold = make_plan(pattern, mapping, Variant.FULL, use_cache=False)
    assert cold is not cached


def test_hand_built_plan_never_cached(pattern, mapping):
    reference = make_plan(pattern, mapping, Variant.STANDARD, use_cache=False)
    hand_built = CollectivePlan(
        variant=reference.variant, pattern=reference.pattern,
        mapping=reference.mapping, phases=reference.phases,
        self_deliveries=reference.self_deliveries)
    assert hand_built.cache_token is None
    spec = ExchangeSpec(pattern.dtype, pattern.item_size)
    assert plan_cache.world_key(hand_built, spec) is None
    world = compile_world_exchange(hand_built, spec)
    plan_cache.store_world(hand_built, spec, world)
    assert plan_cache.fetch_world(hand_built, spec) is None


# -- on-disk tier -------------------------------------------------------------------


def enable_disk(monkeypatch, tmp_path):
    directory = tmp_path / "plan-cache"
    monkeypatch.setenv(plan_cache.ENV_VAR, str(directory))
    clear_plan_cache()
    return directory


def test_disk_round_trip_byte_identical(pattern, mapping, monkeypatch,
                                        tmp_path):
    directory = enable_disk(monkeypatch, tmp_path)
    plan = make_plan(pattern, mapping, Variant.FULL)
    spec = ExchangeSpec(pattern.dtype, pattern.item_size)
    cold = WorldNeighborCollective(plan)
    cold_world = cold.world
    cold.close()
    names = sorted(path.name for path in directory.iterdir())
    assert any(name.startswith("plan-") for name in names)
    assert any(name.startswith("world-") for name in names)

    clear_plan_cache()  # simulate a fresh process: memory gone, disk remains
    warm_plan = make_plan(pattern, mapping, Variant.FULL)
    assert warm_plan is not plan
    warm = WorldNeighborCollective(warm_plan)
    try:
        assert_worlds_identical(warm.world, cold_world)
        uncached = compile_world_exchange(
            make_plan(pattern, mapping, Variant.FULL, use_cache=False), spec)
        assert_worlds_identical(warm.world, uncached)
    finally:
        warm.close()
    assert plan_cache_stats()["disk_hits"] >= 2


def test_corrupted_disk_entry_discarded_then_recompiled(pattern, mapping,
                                                        monkeypatch,
                                                        tmp_path):
    directory = enable_disk(monkeypatch, tmp_path)
    make_plan(pattern, mapping, Variant.PARTIAL)
    entry = next(path for path in directory.iterdir()
                 if path.name.startswith("plan-"))
    entry.write_bytes(b"not a pickle at all")

    clear_plan_cache()
    with pytest.warns(PlanCacheWarning, match="unreadable"):
        recompiled = make_plan(pattern, mapping, Variant.PARTIAL)
    cold = make_plan(pattern, mapping, Variant.PARTIAL, use_cache=False)
    spec = ExchangeSpec(pattern.dtype, pattern.item_size)
    assert_worlds_identical(compile_world_exchange(recompiled, spec),
                            compile_world_exchange(cold, spec))
    # the recompile self-heals the entry: it is valid again afterwards
    with entry.open("rb") as handle:
        envelope = pickle.load(handle)
    assert envelope["format"] == plan_cache.CACHE_FORMAT_VERSION


def test_stale_format_version_discarded(pattern, mapping, monkeypatch,
                                        tmp_path):
    directory = enable_disk(monkeypatch, tmp_path)
    make_plan(pattern, mapping, Variant.STANDARD)
    entry = next(path for path in directory.iterdir()
                 if path.name.startswith("plan-"))
    with entry.open("wb") as handle:
        pickle.dump({"format": plan_cache.CACHE_FORMAT_VERSION - 1,
                     "kind": "plan", "digest": "stale", "payload": None},
                    handle)
    clear_plan_cache()
    with pytest.warns(PlanCacheWarning, match="stale"):
        make_plan(pattern, mapping, Variant.STANDARD)


def test_mismatched_digest_discarded(pattern, mapping, monkeypatch, tmp_path):
    directory = enable_disk(monkeypatch, tmp_path)
    make_plan(pattern, mapping, Variant.STANDARD)
    entry = next(path for path in directory.iterdir()
                 if path.name.startswith("plan-"))
    with entry.open("wb") as handle:
        pickle.dump({"format": plan_cache.CACHE_FORMAT_VERSION,
                     "kind": "plan", "digest": "0" * 64, "payload": None},
                    handle)
    clear_plan_cache()
    with pytest.warns(PlanCacheWarning, match="digest mismatch"):
        make_plan(pattern, mapping, Variant.STANDARD)


def test_clear_plan_cache_disk_removes_entries(pattern, mapping, monkeypatch,
                                               tmp_path):
    directory = enable_disk(monkeypatch, tmp_path)
    make_plan(pattern, mapping, Variant.PARTIAL)
    assert list(directory.iterdir())
    clear_plan_cache(disk=True)
    assert not [path for path in directory.iterdir()
                if path.suffix == ".pkl"]


def test_no_disk_writes_without_env(pattern, mapping, tmp_path):
    assert plan_cache.cache_dir() is None
    make_plan(pattern, mapping, Variant.PARTIAL)
    assert not list(tmp_path.iterdir())
    assert plan_cache_stats()["disk_hits"] == 0
    assert plan_cache_stats()["disk_misses"] == 0


# -- runtime re-registration --------------------------------------------------------


@pytest.mark.parametrize("runtime", ["engine", "procs"])
def test_cached_world_survives_re_registration(pattern, mapping, runtime):
    kwargs = {"runtime": runtime}
    if runtime == "procs":
        kwargs["n_workers"] = 2
    first = WorldNeighborCollective(
        make_plan(pattern, mapping, Variant.PARTIAL), **kwargs)
    second = WorldNeighborCollective(
        make_plan(pattern, mapping, Variant.PARTIAL), **kwargs)
    try:
        assert second.world is first.world
        values = [100.0 * rank + first.owned_item_ids(rank).astype(float)
                  for rank in range(pattern.n_ranks)]
        expected = first.exchange(values)
        for lhs, rhs in zip(second.exchange(values), expected):
            np.testing.assert_array_equal(lhs, rhs)
    finally:
        first.close()
        second.close()


def test_disk_loaded_world_usable_under_procs(pattern, mapping, monkeypatch,
                                              tmp_path):
    enable_disk(monkeypatch, tmp_path)
    plan = make_plan(pattern, mapping, Variant.FULL)
    cold = WorldNeighborCollective(plan)
    values = [100.0 * rank + cold.owned_item_ids(rank).astype(float)
              for rank in range(pattern.n_ranks)]
    expected = cold.exchange(values)
    cold.close()

    clear_plan_cache()  # fresh process: the world comes back from disk
    warm = WorldNeighborCollective(
        make_plan(pattern, mapping, Variant.FULL), runtime="procs",
        n_workers=2)
    try:
        for lhs, rhs in zip(warm.exchange(values), expected):
            np.testing.assert_array_equal(lhs, rhs)
    finally:
        warm.close()
