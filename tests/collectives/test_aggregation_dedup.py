"""Unit tests for aggregation setup (leader assignment) and deduplication."""

import pytest

from repro.collectives.aggregation import (
    AggregationAssignment,
    BalanceStrategy,
    collect_region_traffic,
    setup_aggregation,
)
from repro.collectives.dedup import (
    dedup_savings_fraction,
    duplicate_item_count,
    group_slots_by_final_dest,
    unique_payload_keys,
)
from repro.collectives.plan import Slot
from repro.pattern.builders import pattern_from_edges, random_pattern
from repro.topology.presets import paper_mapping
from repro.utils.errors import PlanError


@pytest.fixture
def mapping():
    return paper_mapping(16, ranks_per_node=4)   # 4 regions of 4 ranks


class TestCollectRegionTraffic:
    def test_groups_by_region_pair(self, mapping):
        pattern = pattern_from_edges(16, [
            (0, 4, [1]), (1, 5, [2]),      # region 0 -> region 1
            (0, 8, [3]),                   # region 0 -> region 2
            (0, 1, [4]),                   # intra-region: excluded
        ])
        traffic = collect_region_traffic(pattern, mapping)
        assert set(traffic.keys()) == {0}
        assert traffic[0].dest_regions() == [1, 2]
        assert traffic[0].pair_items(1) == 2
        assert traffic[0].pair_items(2) == 1

    def test_self_edges_excluded(self, mapping):
        pattern = pattern_from_edges(16, [(3, 3, [9])])
        assert collect_region_traffic(pattern, mapping) == {}


class TestLeaderAssignment:
    def test_leaders_live_in_their_regions(self, mapping):
        pattern = random_pattern(16, avg_neighbors=6, seed=2)
        assignment = setup_aggregation(pattern, mapping)
        for (src_region, dest_region), rank in assignment.send_leader.items():
            assert mapping.region_of(rank) == src_region
        for (src_region, dest_region), rank in assignment.recv_leader.items():
            assert mapping.region_of(rank) == dest_region

    def test_send_and_recv_cover_same_pairs(self, mapping):
        pattern = random_pattern(16, avg_neighbors=6, seed=3)
        assignment = setup_aggregation(pattern, mapping)
        assert set(assignment.send_leader) == set(assignment.recv_leader)

    def test_round_robin_spreads_over_region(self, mapping):
        # Region 0 sends to the three other regions; with round-robin the three
        # pairs land on three distinct local ranks.
        pattern = pattern_from_edges(16, [(0, 4, [1]), (1, 8, [2]), (2, 12, [3])])
        assignment = setup_aggregation(pattern, mapping,
                                       strategy=BalanceStrategy.ROUND_ROBIN)
        leaders = {assignment.send_leader[(0, r)] for r in (1, 2, 3)}
        assert len(leaders) == 3

    def test_bytes_strategy_balances_load(self, mapping):
        # One heavy and three light destination regions from region 0.
        pattern = pattern_from_edges(16, [
            (0, 4, list(range(100))),
            (0, 8, [1]), (0, 12, [2]), (1, 8, [3]),
        ])
        assignment = setup_aggregation(pattern, mapping, strategy=BalanceStrategy.BYTES)
        load = assignment.sender_load()
        # No single rank should carry every pair.
        assert max(load.values()) < 4

    def test_unknown_pair_raises(self):
        assignment = AggregationAssignment(send_leader={}, recv_leader={})
        with pytest.raises(PlanError):
            assignment.leaders_for(0, 1)

    def test_deterministic(self, mapping):
        pattern = random_pattern(16, avg_neighbors=6, seed=4)
        a = setup_aggregation(pattern, mapping)
        b = setup_aggregation(pattern, mapping)
        assert a.send_leader == b.send_leader
        assert a.recv_leader == b.recv_leader


class TestDeduplication:
    def test_unique_payload_keys_order_stable(self):
        slots = [Slot(0, 7, 4), Slot(0, 9, 5), Slot(0, 7, 5), Slot(1, 7, 4)]
        assert unique_payload_keys(slots) == [(0, 7), (0, 9), (1, 7)]

    def test_duplicate_item_count(self):
        slots = [Slot(0, 7, 4), Slot(0, 7, 5), Slot(0, 7, 6)]
        assert duplicate_item_count(slots) == 2

    def test_savings_fraction(self):
        slots = [Slot(0, 7, 4), Slot(0, 7, 5)]
        assert dedup_savings_fraction(slots) == pytest.approx(0.5)
        assert dedup_savings_fraction([]) == 0.0

    def test_group_by_final_dest(self):
        slots = [Slot(0, 1, 5), Slot(0, 2, 4), Slot(1, 3, 5)]
        groups = group_slots_by_final_dest(slots)
        assert list(groups.keys()) == [4, 5]
        assert len(groups[5]) == 2

    def test_no_duplicates_no_savings(self):
        slots = [Slot(0, 1, 4), Slot(0, 2, 4)]
        assert duplicate_item_count(slots) == 0
