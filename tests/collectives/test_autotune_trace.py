"""Golden/schema suite for the autotuner's decision trace.

Pins the contracts downstream consumers (figures, CI artifacts, replay
tests) rely on:

* the dict/JSON serialisation schema of :class:`DecisionEvent` and
  :class:`DecisionTrace` — exact key set, canonical JSON, version stamp,
  lossless round-trip;
* trace *byte-identity* across execution runtimes: the same auto solve on
  ``"engine"`` and ``"procs"`` with a :class:`FixedStepClock` must produce
  the identical ``to_json()`` string (the selector is a pure function of
  its recorded values);
* :meth:`DecisionTrace.validate` — every commit/switch must reference a
  probe window that actually ran for that level, and tampering is caught;
* solver equivalence — an auto solve is byte-identical to the fixed-variant
  solves it arbitrates between (variant choice changes time, never bytes).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.amg.hierarchy import build_hierarchy
from repro.amg.vcycle import WorldAMGSolver, WorldVCycle
from repro.collectives.autotune import (
    TRACE_SCHEMA_VERSION,
    DecisionEvent,
    DecisionTrace,
    FixedStepClock,
    OnlineSelector,
    simulate_modeled_auto,
)
from repro.collectives.plan import Variant
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError

N_RANKS = 4

#: The pinned serialisation schema: exactly these keys, in any dict order
#: (canonical JSON sorts them).  Extending the schema requires a version bump.
EVENT_KEYS = {"kind", "level", "cycle", "variant", "previous", "estimates",
              "window", "samples", "source", "reason"}

LEVEL_TIMES = [
    {Variant.STANDARD: 3.0, Variant.PARTIAL: 2.0, Variant.FULL: 4.0},
    {Variant.STANDARD: 1.0, Variant.PARTIAL: 5.0, Variant.FULL: 2.0},
]


def _problem():
    matrix = ParCSRMatrix(poisson_2d((12, 12)), RowPartition.even(144, N_RANKS))
    hierarchy = build_hierarchy(matrix, seed=1)
    mapping = paper_mapping(N_RANKS, ranks_per_node=2)
    return matrix, hierarchy, mapping


class TestEventSchema:
    def test_event_dict_key_set_is_pinned(self):
        sim = simulate_modeled_auto(LEVEL_TIMES, window=2)
        assert len(sim.trace) > 0
        for event in sim.trace:
            assert set(event.to_dict()) == EVENT_KEYS

    def test_seed_event_golden(self):
        sim = simulate_modeled_auto(LEVEL_TIMES, window=1)
        assert sim.trace[0].to_dict() == {
            "kind": "seed",
            "level": 0,
            "cycle": 0,
            "variant": "partial",
            "previous": None,
            "estimates": {"full": 4.0, "partial": 2.0, "standard": 3.0},
            "window": None,
            "samples": [],
            "source": "model",
            "reason": "cost model's cheapest candidate; full probe "
                      "schedule queued",
        }

    def test_event_round_trip_is_lossless(self):
        sim = simulate_modeled_auto(LEVEL_TIMES, window=2)
        for event in sim.trace:
            assert DecisionEvent.from_dict(event.to_dict()) == event

    def test_bad_kind_and_source_are_rejected(self):
        with pytest.raises(ValidationError):
            DecisionEvent(kind="guess", level=0, cycle=0)
        with pytest.raises(ValidationError):
            DecisionEvent(kind="probe", level=0, cycle=0, source="vibes")


class TestTraceSerialisation:
    def test_json_round_trip_byte_identical(self):
        sim = simulate_modeled_auto(LEVEL_TIMES, window=2)
        text = sim.trace.to_json()
        rebuilt = DecisionTrace.from_json(text)
        assert rebuilt.to_json() == text
        assert rebuilt.choices() == sim.trace.choices()
        rebuilt.validate()

    def test_json_is_canonical(self):
        text = simulate_modeled_auto(LEVEL_TIMES, window=1).trace.to_json()
        payload = json.loads(text)
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) == text

    def test_unknown_schema_version_is_rejected(self):
        payload = simulate_modeled_auto(LEVEL_TIMES, window=1).trace.to_dict()
        payload["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValidationError):
            DecisionTrace.from_dict(payload)


class TestTraceValidation:
    @staticmethod
    def _switching_trace() -> DecisionTrace:
        """A trace containing a switch: the model seeds FULL, measurement
        overturns it in favour of STANDARD."""
        selector = OnlineSelector(window=1)
        selector.seed(0, {Variant.STANDARD: 9.0, Variant.PARTIAL: 8.0,
                          Variant.FULL: 1.0})
        measured = {Variant.STANDARD: 1.0, Variant.PARTIAL: 2.0,
                    Variant.FULL: 3.0}
        for _ in range(selector.probe_budget):
            selector.begin_cycle()
            selector.record(0, float(measured[selector.variant_for(0)]))
            selector.end_cycle()
        assert selector.committed(0) == Variant.STANDARD
        return selector.trace

    def test_every_switch_references_a_probe_window_that_ran(self):
        trace = self._switching_trace()
        switches = trace.events(kind="switch", level=0)
        assert len(switches) == 1
        probe_windows = {event.window
                         for event in trace.events(kind="probe", level=0)}
        assert switches[0].window in probe_windows
        trace.validate()

    def test_tampered_window_reference_is_caught(self):
        trace = self._switching_trace()
        events = [event.to_dict() for event in trace]
        for event in events:
            if event["kind"] == "switch":
                event["window"] = 999
        tampered = DecisionTrace.from_dict(
            {"schema": TRACE_SCHEMA_VERSION, "events": events})
        with pytest.raises(ValidationError, match="never ran"):
            tampered.validate()

    def test_commit_without_window_is_caught(self):
        bad = DecisionTrace([DecisionEvent(kind="commit", level=0, cycle=0,
                                           variant="standard")])
        with pytest.raises(ValidationError, match="without a window"):
            bad.validate()


class TestRuntimeByteIdentity:
    def _run(self, runtime: str, n_workers=None):
        matrix, hierarchy, mapping = _problem()
        b = np.ones(matrix.n_rows, dtype=np.float64)
        with WorldVCycle(hierarchy, mapping, variant="auto",
                         selector=OnlineSelector(window=1),
                         clock=FixedStepClock(), runtime=runtime,
                         n_workers=n_workers) as vcycle:
            x = np.zeros(matrix.n_rows, dtype=np.float64)
            for _ in range(vcycle.selector.probe_budget + 2):
                x = vcycle.cycle(b, x)
            return x, vcycle.decision_trace

    def test_trace_byte_identical_across_runtimes(self):
        """Engine vs procs: identical measurements (FixedStepClock), hence
        identical decisions, hence the same canonical JSON byte string."""
        x_engine, trace_engine = self._run("engine")
        x_procs, trace_procs = self._run("procs", n_workers=2)
        assert np.array_equal(x_engine, x_procs)
        assert trace_engine.to_json() == trace_procs.to_json()
        trace_engine.validate()


class TestSolverEquivalence:
    def test_auto_solve_matches_its_chosen_fixed_variants_bytewise(self):
        matrix, hierarchy, mapping = _problem()
        b = np.arange(matrix.n_rows, dtype=np.float64)

        def solve(variant, **kwargs):
            with WorldAMGSolver(matrix, mapping, hierarchy=hierarchy,
                                variant=variant, **kwargs) as solver:
                return solver.solve(b, max_iterations=6, tol=0.0)

        auto = solve("auto", selector=OnlineSelector(window=1),
                     clock=FixedStepClock())
        assert auto.decision_trace is not None
        auto.decision_trace.validate()
        assert auto.decision_trace.choices()  # every level justified
        for variant in (Variant.STANDARD, Variant.PARTIAL, Variant.FULL):
            fixed = solve(variant)
            assert fixed.decision_trace is None
            assert np.array_equal(auto.solution, fixed.solution)
            assert auto.residual_norms == fixed.residual_norms
