"""Golden equivalence: the world-stepped engine vs the envelope-routed runtime.

The batched :class:`~repro.simmpi.engine.ExchangeEngine` must be
indistinguishable from the pinned reference — every rank's
:class:`PersistentNeighborCollective` running on the threaded mailbox
runtime — in two observable ways:

* **results**: byte-identical per-rank output arrays, and
* **profiler accounting**: identical data-path byte/message totals, per
  locality class and per source rank.

Both are checked across variants x patterns x mappings, plus the dtype /
item_size matrix, multi-iteration persistence, and the input validation the
engine shares with the per-rank executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import (
    Variant,
    WorldNeighborCollective,
    compile_world_exchange,
    make_plan,
    neighbor_alltoallv_init_world,
)
from repro.collectives.persistent import PersistentNeighborCollective
from repro.pattern import CommPattern, halo_exchange_pattern, random_pattern
from repro.simmpi import ExchangeEngine, SimWorld, TrafficProfiler
from repro.topology import paper_mapping
from repro.utils.errors import CommunicationError, ValidationError

ALL_VARIANTS = (Variant.POINT_TO_POINT, Variant.STANDARD,
                Variant.PARTIAL, Variant.FULL)

#: The engine runtimes the golden suites pin byte-identical.  ``"procs"``
#: always runs with several workers (regardless of core count) so the
#: cross-slab wire permutation is actually exercised.
ENGINE_RUNTIMES = ("engine", "procs")


def _runtime_kwargs(runtime):
    return {"runtime": runtime,
            "n_workers": 3 if runtime == "procs" else None}


def _rank_values(collective: WorldNeighborCollective, scale: float = 100.0):
    """Deterministic per-rank input arrays derived from owned item ids."""
    return [scale * rank + collective.owned_item_ids(rank).astype(np.float64)
            for rank in range(collective.n_ranks)]


def _reference_results(plan, n_ranks, values_fn, *, profiler=None,
                       iterations: int = 1):
    """Run the plan on the envelope-routed runtime; per-rank results of the
    last iteration."""
    world = SimWorld(n_ranks, timeout=120, profiler=profiler)

    def program(comm):
        collective = PersistentNeighborCollective(comm, plan)
        result = None
        for iteration in range(iterations):
            result = collective.exchange(values_fn(comm.rank, iteration,
                                                   collective.owned_item_ids))
        return result

    return world.run(program)


def _summary_tuple(summary):
    return (summary.message_count, summary.byte_count)


def _profile_digest(profiler: TrafficProfiler):
    """Everything the equivalence check compares about recorded traffic."""
    return {
        "total": _summary_tuple(profiler.total()),
        "by_locality": {locality: _summary_tuple(summary) for locality, summary
                        in profiler.by_locality().items()},
        "per_rank": {rank: _summary_tuple(summary) for rank, summary
                     in profiler.per_rank().items()},
    }


class TestGoldenEquivalence:
    """Engine output and accounting == envelope-routed reference."""

    @pytest.mark.parametrize("runtime", ENGINE_RUNTIMES)
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("pattern_name,ranks_per_node", [
        ("random_dup", 8),
        ("random_sparse", 4),
        ("halo", 8),
    ])
    def test_results_and_profile_match(self, variant, pattern_name,
                                       ranks_per_node, runtime):
        if pattern_name == "random_dup":
            n_ranks = 24
            pattern = random_pattern(n_ranks, avg_neighbors=6,
                                     avg_items_per_message=12,
                                     duplicate_fraction=0.5, seed=3)
        elif pattern_name == "random_sparse":
            n_ranks = 16
            pattern = random_pattern(n_ranks, avg_neighbors=3,
                                     avg_items_per_message=5,
                                     duplicate_fraction=0.0, seed=11)
        else:
            grid = (4, 6)
            n_ranks = grid[0] * grid[1]
            pattern = halo_exchange_pattern(grid, points_per_cell=4)
        mapping = paper_mapping(n_ranks, ranks_per_node=ranks_per_node)
        plan = make_plan(pattern, mapping, variant)

        reference_profiler = TrafficProfiler(mapping)
        reference = _reference_results(
            plan, n_ranks,
            lambda rank, _, owned: 100.0 * rank + owned.astype(np.float64),
            profiler=reference_profiler)

        engine_profiler = TrafficProfiler(mapping)
        with WorldNeighborCollective(plan, profiler=engine_profiler,
                                     **_runtime_kwargs(runtime)) as collective:
            results = collective.exchange(_rank_values(collective))

        for rank in range(n_ranks):
            assert np.array_equal(np.asarray(reference[rank]), results[rank])
        assert _profile_digest(reference_profiler) == _profile_digest(engine_profiler)

    @pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.FULL])
    def test_multi_iteration_persistence(self, variant):
        n_ranks = 12
        pattern = random_pattern(n_ranks, avg_neighbors=4, seed=7)
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        plan = make_plan(pattern, mapping, variant)

        def iteration_values(rank, iteration, owned):
            return (iteration + 1) * 10.0 * rank + owned.astype(np.float64)

        reference = _reference_results(plan, n_ranks, iteration_values,
                                       iterations=3)
        collective = WorldNeighborCollective(plan)
        results = None
        for iteration in range(3):
            results = collective.exchange([
                iteration_values(rank, iteration,
                                 collective.owned_item_ids(rank))
                for rank in range(n_ranks)
            ])
        for rank in range(n_ranks):
            assert np.array_equal(np.asarray(reference[rank]), results[rank])

    @pytest.mark.parametrize("runtime", ENGINE_RUNTIMES)
    @pytest.mark.parametrize("dtype,item_size", [
        (np.float32, 1), (np.float64, 3), (np.int64, 2), (np.complex128, 1),
    ])
    def test_dtype_item_size_matrix(self, dtype, item_size, runtime):
        n_ranks = 8
        pattern = random_pattern(n_ranks, avg_neighbors=3, seed=5,
                                 dtype=dtype, item_size=item_size)
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        plan = make_plan(pattern, mapping, Variant.FULL)

        def values_for(rank, owned):
            base = (100 * rank + owned).astype(dtype)
            if item_size == 1:
                return base
            return np.repeat(base[:, None], item_size, axis=1) \
                + np.arange(item_size, dtype=dtype)

        reference = _reference_results(
            plan, n_ranks, lambda rank, _, owned: values_for(rank, owned))
        with WorldNeighborCollective(plan,
                                     **_runtime_kwargs(runtime)) as collective:
            results = collective.exchange([
                values_for(rank, collective.owned_item_ids(rank))
                for rank in range(n_ranks)
            ])
        for rank in range(n_ranks):
            assert results[rank].dtype == np.dtype(dtype)
            assert np.array_equal(np.asarray(reference[rank]), results[rank])

    def test_metadata_matches_per_rank_executor(self):
        n_ranks = 10
        pattern = random_pattern(n_ranks, avg_neighbors=4,
                                 duplicate_fraction=0.4, seed=13)
        mapping = paper_mapping(n_ranks, ranks_per_node=5)
        plan = make_plan(pattern, mapping, Variant.PARTIAL)
        collective = WorldNeighborCollective(plan)

        def program(comm):
            per_rank = PersistentNeighborCollective(comm, plan)
            return (per_rank.owned_item_ids, per_rank.recv_item_ids,
                    per_rank.recv_item_sources)

        per_rank_meta = SimWorld(n_ranks, timeout=120).run(program)
        for rank, (owned, recv, sources) in enumerate(per_rank_meta):
            assert np.array_equal(owned, collective.owned_item_ids(rank))
            assert np.array_equal(recv, collective.recv_item_ids(rank))
            assert np.array_equal(sources, collective.recv_item_sources(rank))


class TestEngineInterface:
    """Input handling and registration semantics of the engine itself."""

    @pytest.fixture()
    def small_collective(self):
        n_ranks = 6
        pattern = random_pattern(n_ranks, avg_neighbors=3, seed=2)
        mapping = paper_mapping(n_ranks, ranks_per_node=3)
        return neighbor_alltoallv_init_world(pattern, mapping,
                                             variant=Variant.STANDARD)

    def test_flat_input_equals_per_rank_input(self, small_collective):
        values = _rank_values(small_collective)
        flat = np.concatenate(values)
        by_list = small_collective.exchange(values)
        by_flat = small_collective.exchange(flat)
        for a, b in zip(by_list, by_flat):
            assert np.array_equal(a, b)

    def test_wrong_rank_count_rejected(self, small_collective):
        values = _rank_values(small_collective)
        with pytest.raises(ValidationError, match="per rank"):
            small_collective.exchange(values[:-1])

    def test_wrong_shape_rejected(self, small_collective):
        values = _rank_values(small_collective)
        values[2] = values[2][:-1]
        with pytest.raises(ValidationError, match="shape"):
            small_collective.exchange(values)

    def test_unsafe_cast_rejected(self, small_collective):
        values = [v.astype(np.complex128) for v in _rank_values(small_collective)]
        with pytest.raises(ValidationError, match="safely cast"):
            small_collective.exchange(values)

    def test_unknown_handle_rejected(self):
        engine = ExchangeEngine(4)
        with pytest.raises(CommunicationError, match="unknown exchange handle"):
            engine.run(0, [])

    def test_oversized_world_rejected(self):
        n_ranks = 6
        pattern = random_pattern(n_ranks, avg_neighbors=3, seed=2)
        mapping = paper_mapping(n_ranks, ranks_per_node=3)
        plan = make_plan(pattern, mapping, Variant.STANDARD)
        world = compile_world_exchange(plan)
        engine = ExchangeEngine(n_ranks - 1)
        with pytest.raises(CommunicationError, match="more ranks"):
            engine.register(world)

    def test_shared_engine_across_collectives(self):
        n_ranks = 8
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        engine = ExchangeEngine(n_ranks, profiler=TrafficProfiler(mapping))
        patterns = [random_pattern(n_ranks, avg_neighbors=3, seed=seed)
                    for seed in (1, 2)]
        collectives = [
            neighbor_alltoallv_init_world(pattern, mapping,
                                          variant=Variant.FULL, engine=engine)
            for pattern in patterns
        ]
        totals = []
        for collective in collectives:
            collective.exchange(_rank_values(collective))
            totals.append(engine.profiler.total().message_count)
        # Both collectives' traffic landed in the one shared profiler.
        assert totals[1] > totals[0] > 0

    def test_engine_and_profiler_conflict_rejected(self):
        n_ranks = 4
        pattern = random_pattern(n_ranks, avg_neighbors=2, seed=1)
        mapping = paper_mapping(n_ranks, ranks_per_node=2)
        plan = make_plan(pattern, mapping, Variant.STANDARD)
        engine = ExchangeEngine(n_ranks)
        with pytest.raises(ValidationError, match="not both"):
            WorldNeighborCollective(plan, engine=engine,
                                    profiler=TrafficProfiler(mapping))

    def test_sim_world_engine_shares_profiler(self):
        profiler = TrafficProfiler()
        world = SimWorld(4, profiler=profiler)
        engine = world.exchange_engine()
        assert engine.profiler is profiler
        assert engine.n_ranks == 4

    def test_world_exchange_message_count_matches_plan(self):
        n_ranks = 12
        pattern = random_pattern(n_ranks, avg_neighbors=5, seed=4)
        mapping = paper_mapping(n_ranks, ranks_per_node=4)
        plan = make_plan(pattern, mapping, Variant.PARTIAL)
        world = compile_world_exchange(plan)
        assert world.n_messages == plan.n_messages


class TestProfilerBatches:
    """Bulk counters behave exactly like per-envelope records."""

    def test_record_batch_filters_self_messages(self):
        profiler = TrafficProfiler()
        profiler.record_batch(np.array([0, 1, 2]), np.array([0, 2, 1]),
                              np.array([8, 16, 24]), tag=10)
        total = profiler.total()
        assert total.message_count == 2
        assert total.byte_count == 40

    def test_record_batch_keeps_self_messages_when_asked(self):
        profiler = TrafficProfiler(ignore_self_messages=False)
        profiler.record_batch(np.array([0, 1]), np.array([0, 2]),
                              np.array([8, 16]))
        assert profiler.total().message_count == 2

    def test_record_batch_object_traffic_ignored_by_default(self):
        profiler = TrafficProfiler()
        profiler.record_batch(np.array([0]), np.array([1]), np.array([100]),
                              is_array=False)
        assert profiler.total().message_count == 0

    def test_records_expand_batches_in_order(self):
        mapping = paper_mapping(4, ranks_per_node=2)
        profiler = TrafficProfiler(mapping)
        profiler.record_batch(np.array([0, 1]), np.array([1, 3]),
                              np.array([8, 16]), tag=10)
        records = profiler.records
        assert [(r.source, r.dest, r.nbytes) for r in records] == \
            [(0, 1, 8), (1, 3, 16)]
        assert all(r.locality is not None for r in records)
        assert len(profiler.inter_region_records()) == 1

    def test_data_columns_concatenate_batches_and_records(self):
        profiler = TrafficProfiler()
        profiler.record_batch(np.array([0, 1]), np.array([1, 0]),
                              np.array([8, 8]))
        sources, dests, nbytes = profiler.data_columns()
        assert sources.tolist() == [0, 1]
        assert dests.tolist() == [1, 0]
        assert nbytes.tolist() == [8, 8]

    def test_mismatched_columns_rejected(self):
        profiler = TrafficProfiler()
        with pytest.raises(ValueError, match="parallel"):
            profiler.record_batch(np.array([0, 1]), np.array([1]),
                                  np.array([8]))


class TestSelfSendPattern:
    """Items a rank sends to itself flow through both paths identically."""

    def test_self_send_results_match(self):
        pattern = CommPattern(4, {
            0: {0: [1, 2], 1: [2, 3]},
            1: {2: [7]},
            3: {0: [9], 3: [9]},
        })
        mapping = paper_mapping(4, ranks_per_node=2)
        for variant in ALL_VARIANTS:
            plan = make_plan(pattern, mapping, variant)
            reference = _reference_results(
                plan, 4,
                lambda rank, _, owned: 10.0 * rank + owned.astype(np.float64))
            collective = WorldNeighborCollective(plan)
            results = collective.exchange(_rank_values(collective, scale=10.0))
            for rank in range(4):
                assert np.array_equal(np.asarray(reference[rank]), results[rank])
