"""Construction-equivalence tests: CSR-native builds vs the dict-build reference.

The CSR-native pattern construction (PR 3) must be a pure storage/performance
change: for every producer — edge-list builder, random generator, halo
builder, ParCSR comm package, and the collective gather in the API — the CSR
build has to produce *byte-identical* ``edge_arrays()`` / ``unique_edge_table()``
columns, equal patterns (``__eq__``/``__hash__`` invariant across construction
routes), identical plan phases, and identical statistics to the seed's
edge-by-edge dict construction, which is preserved in
:mod:`repro.pattern.reference` for exactly this comparison.
"""

import numpy as np
import pytest

from repro.collectives.api import _gather_pattern
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.builders import (
    halo_exchange_pattern,
    neighbor_lists,
    pattern_from_edges,
    random_pattern,
)
from repro.pattern.comm_pattern import CommPattern
from repro.pattern.reference import (
    DictPattern,
    reference_halo_pattern,
    reference_pattern_from_edges,
    reference_pattern_from_parcsr,
    reference_random_pattern,
    reference_sends_from_parcsr,
)
from repro.simmpi import run_spmd
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.sparse import pattern_from_parcsr, strong_scaling_problem
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError

from test_plan_equivalence import assert_plans_identical

EDGE_TRIPLES = [
    (0, 4, [100, 100, 101]), (0, 5, [100]), (1, 1, [7, 7, 8]),
    (2, 5, [120]), (0, 1, [103]), (3, 12, [130]),
    (0, 4, [99]),                       # repeated (src, dest): concatenates
]


def assert_tables_identical(csr_pattern: CommPattern, reference: DictPattern):
    """Byte-identical columnar tables between the CSR build and the dict build."""
    for ours, theirs in zip(csr_pattern.edge_arrays(), reference.edge_arrays()):
        assert ours.dtype == theirs.dtype == np.int64
        np.testing.assert_array_equal(ours, theirs)
        assert ours.tobytes() == theirs.tobytes()
    for ours, theirs in zip(csr_pattern.unique_edge_table(),
                            reference.unique_edge_table()):
        assert ours.tobytes() == theirs.tobytes()


CASES = {
    "edges": lambda: (pattern_from_edges(16, EDGE_TRIPLES),
                      reference_pattern_from_edges(16, EDGE_TRIPLES)),
    "random-low-dup": lambda: (
        random_pattern(32, avg_neighbors=7, duplicate_fraction=0.1, seed=21),
        reference_random_pattern(32, avg_neighbors=7, duplicate_fraction=0.1,
                                 seed=21)),
    "random-high-dup": lambda: (
        random_pattern(48, avg_neighbors=9, duplicate_fraction=0.7, seed=22),
        reference_random_pattern(48, avg_neighbors=9, duplicate_fraction=0.7,
                                 seed=22)),
    "halo": lambda: (halo_exchange_pattern((4, 4), points_per_cell=6),
                     reference_halo_pattern((4, 4), points_per_cell=6)),
    "halo-periodic": lambda: (
        halo_exchange_pattern((2, 3), points_per_cell=4, periodic=True),
        reference_halo_pattern((2, 3), points_per_cell=4, periodic=True)),
    "empty": lambda: (pattern_from_edges(8, []),
                      reference_pattern_from_edges(8, [])),
    "parcsr": lambda: (
        pattern_from_parcsr(strong_scaling_problem(4096, 16).matrix),
        reference_pattern_from_parcsr(strong_scaling_problem(4096, 16).matrix)),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_csr_build_matches_dict_build_tables(case):
    csr_pattern, reference = CASES[case]()
    assert_tables_identical(csr_pattern, reference)


@pytest.mark.parametrize("case", sorted(CASES))
def test_eq_and_hash_invariant_across_construction_routes(case):
    """A pattern built through the dict-mapping constructor equals (and hashes
    with) the same pattern built through the CSR-native route."""
    csr_pattern, reference = CASES[case]()
    dict_route = CommPattern(csr_pattern.n_ranks, reference.sends)
    assert dict_route == csr_pattern
    assert hash(dict_route) == hash(csr_pattern)
    assert len({dict_route, csr_pattern}) == 1
    # Metadata still differentiates:
    assert dict_route != CommPattern(csr_pattern.n_ranks, reference.sends,
                                     item_bytes=3)


@pytest.mark.parametrize("case", ["edges", "random-high-dup", "halo", "parcsr"])
@pytest.mark.parametrize("variant", list(Variant))
def test_plans_identical_across_construction_routes(case, variant):
    """Plan phases and statistics must not depend on the construction route."""
    csr_pattern, reference = CASES[case]()
    dict_route = CommPattern(csr_pattern.n_ranks, reference.sends)
    mapping = paper_mapping(csr_pattern.n_ranks, ranks_per_node=4)
    assert_plans_identical(make_plan(csr_pattern, mapping, variant),
                           make_plan(dict_route, mapping, variant))


def test_gathered_pattern_matches_local_build():
    """The packed-array collective gather reassembles the exact local pattern."""
    pattern = random_pattern(6, avg_neighbors=3, duplicate_fraction=0.4, seed=77)

    def program(comm):
        rank = comm.rank
        sources, dests = neighbor_lists(pattern, rank)
        graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
        send_items = {d: pattern.send_items(rank, d)
                      for d in pattern.send_ranks(rank)}
        gathered = _gather_pattern(graph, send_items, dtype=pattern.dtype,
                                   item_size=pattern.item_size, item_bytes=None)
        return gathered == pattern and hash(gathered) == hash(pattern)

    assert all(run_spmd(6, program, timeout=60))


class TestCommPkgColumnarViews:
    """The comm package's dict accessors are views of the packed CSR sides."""

    def test_views_match_reference_dicts(self):
        matrix = strong_scaling_problem(4096, 16).matrix
        from repro.sparse.comm_pkg import build_comm_pkg
        pkg = build_comm_pkg(matrix)
        reference_sends = reference_sends_from_parcsr(matrix)
        assert set(pkg.send_items) == set(reference_sends)
        for src, dests in reference_sends.items():
            assert set(pkg.send_items[src]) == set(dests)
            for dest, items in dests.items():
                np.testing.assert_array_equal(pkg.send_items[src][dest], items)
        # recv side is the transpose of the send side.
        for rank, recv in pkg.recv_items.items():
            for src, items in recv.items():
                np.testing.assert_array_equal(pkg.send_items[src][rank], items)
            assert pkg.total_recv_items(rank) == sum(a.size for a in recv.values())
            sources, destinations = pkg.neighbors(rank)
            assert sources == sorted(recv.keys())
            assert destinations == sorted(pkg.send_items.get(rank, {}).keys())


class TestCsrConstructor:
    """Validation of the CSR-native constructor."""

    def _columns(self):
        src_offsets = np.array([0, 2, 3, 3], dtype=np.int64)
        dests = np.array([1, 2, 0], dtype=np.int64)
        item_offsets = np.array([0, 2, 3, 5], dtype=np.int64)
        items = np.array([10, 11, 12, 13, 14], dtype=np.int64)
        return src_offsets, dests, item_offsets, items

    def test_round_trip(self):
        pattern = CommPattern.from_csr(3, *self._columns())
        assert pattern.send_items(0, 1).tolist() == [10, 11]
        assert pattern.send_items(0, 2).tolist() == [12]
        assert pattern.send_items(1, 0).tolist() == [13, 14]
        assert pattern == CommPattern(3, {0: {1: [10, 11], 2: [12]},
                                          1: {0: [13, 14]}})

    def test_items_column_is_stored_zero_copy(self):
        pattern = CommPattern.from_csr(3, *self._columns())
        _, _, items = pattern.edge_arrays()
        assert items is pattern.csr()[3]
        assert not items.flags.writeable

    def test_frozen_producer_columns_stored_without_copy(self):
        """Producers that freeze their columns share storage with the pattern."""
        matrix = strong_scaling_problem(1024, 8).matrix
        from repro.sparse.comm_pkg import build_comm_pkg
        pkg = build_comm_pkg(matrix)
        pattern = CommPattern.from_csr(matrix.n_ranks, *pkg.send_csr)
        for pkg_column, pattern_column in zip(pkg.send_csr, pattern.csr()):
            assert pattern_column is pkg_column

    def test_rejects_inconsistent_offsets(self):
        src_offsets, dests, item_offsets, items = self._columns()
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets[:-1], dests, item_offsets, items)
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, dests, item_offsets[:-1], items)
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, dests, item_offsets, items[:-1])

    def test_rejects_unsorted_or_duplicate_dests(self):
        src_offsets, dests, item_offsets, items = self._columns()
        bad = dests.copy()
        bad[0], bad[1] = 2, 1                      # descending within segment
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, bad, item_offsets, items)
        bad[0], bad[1] = 1, 1                      # duplicate edge
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, bad, item_offsets, items)

    def test_rejects_empty_edges_and_bad_ranks(self):
        src_offsets, dests, item_offsets, items = self._columns()
        empty_edge = np.array([0, 0, 3, 5], dtype=np.int64)
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, dests, empty_edge, items)
        bad_dest = dests.copy()
        bad_dest[2] = 7
        with pytest.raises(ValidationError):
            CommPattern.from_csr(3, src_offsets, bad_dest, item_offsets, items)
