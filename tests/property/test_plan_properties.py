"""Property-based tests (hypothesis) for the collective planners.

The central invariant of the whole reproduction: for *any* communication
pattern and *any* rank placement, every planner variant delivers exactly the
set of (origin, item, destination) triples the pattern requires — no losses,
no duplicates, no spurious deliveries — and deduplication never increases any
message size.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collectives.plan import Phase, Variant
from repro.collectives.planner import all_plans
from repro.pattern.comm_pattern import CommPattern
from repro.perfmodel.params import lassen_parameters
from repro.perfmodel.postal import PostalModel
from repro.topology.presets import paper_mapping


@st.composite
def pattern_and_mapping(draw):
    """Random (pattern, mapping) pairs with small rank counts."""
    ranks_per_node = draw(st.sampled_from([2, 4, 8]))
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    n_ranks = ranks_per_node * n_nodes
    mapping = paper_mapping(n_ranks, ranks_per_node=ranks_per_node)

    n_edges = draw(st.integers(min_value=0, max_value=30))
    sends: dict[int, dict[int, list[int]]] = {}
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n_ranks - 1))
        dest = draw(st.integers(min_value=0, max_value=n_ranks - 1))
        n_items = draw(st.integers(min_value=1, max_value=6))
        # Items owned by the source (globally unique per source rank), with a
        # bias towards low ids so different destinations share values.
        items = [src * 1000 + draw(st.integers(min_value=0, max_value=8))
                 for _ in range(n_items)]
        bucket = sends.setdefault(src, {}).setdefault(dest, [])
        bucket.extend(items)
    pattern = CommPattern(n_ranks, sends)
    return pattern, mapping


@settings(max_examples=40, deadline=None)
@given(pattern_and_mapping())
def test_every_variant_delivers_exactly_the_required_items(data):
    pattern, mapping = data
    for plan in all_plans(pattern, mapping).values():
        plan.validate()   # raises on missing / duplicate / spurious deliveries


@settings(max_examples=40, deadline=None)
@given(pattern_and_mapping())
def test_dedup_never_increases_any_message(data):
    pattern, mapping = data
    plans = all_plans(pattern, mapping)
    partial = {(m.phase, m.src, m.dest): m.payload_count()
               for m in plans[Variant.PARTIAL].messages()}
    full = {(m.phase, m.src, m.dest): m.payload_count()
            for m in plans[Variant.FULL].messages()}
    assert set(partial) == set(full)
    for key, partial_count in partial.items():
        assert full[key] <= partial_count


@settings(max_examples=40, deadline=None)
@given(pattern_and_mapping())
def test_aggregation_bounds_inter_region_messages_by_region_pairs(data):
    pattern, mapping = data
    plans = all_plans(pattern, mapping)
    n_pairs_with_traffic = len({
        (mapping.region_of(src), mapping.region_of(dest))
        for src, dest, _ in pattern.edges()
        if src != dest and not mapping.same_region(src, dest)
    })
    for variant in (Variant.PARTIAL, Variant.FULL):
        global_messages = list(plans[variant].messages(Phase.GLOBAL))
        assert len(global_messages) == n_pairs_with_traffic


@settings(max_examples=40, deadline=None)
@given(pattern_and_mapping())
def test_standard_statistics_match_pattern_totals(data):
    pattern, mapping = data
    plan = all_plans(pattern, mapping)[Variant.STANDARD]
    stats = plan.statistics()
    n_off_rank_edges = sum(1 for src, dest, _ in pattern.edges() if src != dest)
    assert stats.total_local_messages + stats.total_global_messages == n_off_rank_edges


@settings(max_examples=30, deadline=None)
@given(pattern_and_mapping())
def test_modeled_times_non_negative_and_finite(data):
    pattern, mapping = data
    model = lassen_parameters(active_per_node=4)
    postal = PostalModel()
    for plan in all_plans(pattern, mapping).values():
        for m in (model, postal):
            time = plan.modeled_time(m)
            assert np.isfinite(time) and time >= 0.0


@settings(max_examples=30, deadline=None)
@given(pattern_and_mapping())
def test_full_never_moves_more_inter_region_payload_than_partial(data):
    pattern, mapping = data
    plans = all_plans(pattern, mapping)
    assert plans[Variant.FULL].global_payload_items() <= \
        plans[Variant.PARTIAL].global_payload_items()
    assert plans[Variant.PARTIAL].global_payload_items() <= \
        sum(1 for _ in plans[Variant.STANDARD].messages()) * 10_000  # sanity bound
