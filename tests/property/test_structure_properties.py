"""Property-based tests for patterns, partitions, and cost models."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pattern.builders import pattern_from_edges
from repro.pattern.validation import patterns_equivalent
from repro.perfmodel.locality import LocalityAwareModel, LocalityParameters
from repro.perfmodel.maxrate import MaxRateModel
from repro.perfmodel.postal import PostalModel
from repro.sparse.partition import RowPartition
from repro.topology.machine import Locality
from repro.topology.presets import paper_mapping
from repro.utils.arrays import counts_to_displs, displs_to_counts, partition_evenly, stable_unique


# ---------------------------------------------------------------------------
# Array helpers
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_counts_displs_roundtrip(counts):
    assert displs_to_counts(counts_to_displs(counts)).tolist() == counts


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
def test_partition_evenly_conserves_and_balances(total, parts):
    offsets = partition_evenly(total, parts)
    sizes = np.diff(offsets)
    assert sizes.sum() == total
    assert sizes.max() - sizes.min() <= 1
    assert np.all(sizes >= 0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=60))
def test_stable_unique_preserves_set_and_order(values):
    unique = stable_unique(values).tolist()
    assert set(unique) == set(values)
    positions = [values.index(v) for v in unique]
    assert positions == sorted(positions)


# ---------------------------------------------------------------------------
# Row partitions
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=5000), st.integers(min_value=1, max_value=100))
def test_row_partition_owner_consistent_with_ranges(n_rows, n_ranks):
    partition = RowPartition.even(n_rows, n_ranks)
    probe = np.unique(np.clip(np.array([0, n_rows // 3, n_rows // 2, n_rows - 1]),
                              0, n_rows - 1))
    for row in probe:
        owner = partition.owner_of(int(row))
        first, last = partition.row_range(owner)
        assert first <= row < last


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11),
              st.lists(st.integers(0, 30), min_size=1, max_size=5)),
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_pattern_transpose_is_involution(edges):
    pattern = pattern_from_edges(12, edges)
    assert patterns_equivalent(pattern.transpose().transpose(), pattern)


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_pattern_conserves_items_under_transpose(edges):
    pattern = pattern_from_edges(12, edges)
    assert pattern.total_items == pattern.transpose().total_items
    assert pattern.n_messages == pattern.transpose().n_messages


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_send_and_recv_views_agree(edges):
    pattern = pattern_from_edges(12, edges)
    for src, dest, _ in pattern.edges():
        assert pattern.send_items(src, dest).tolist() == \
            pattern.recv_items(dest, src).tolist()


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 22), st.integers(min_value=0, max_value=1 << 22),
       st.sampled_from([Locality.INTRA_SOCKET, Locality.INTER_SOCKET, Locality.INTER_NODE]))
def test_models_monotone_in_message_size(a, b, locality):
    small, large = sorted((a, b))
    for model in (PostalModel(), MaxRateModel(),
                  LocalityAwareModel()):
        assert model.message_time(small, locality) <= model.message_time(large, locality)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=1 << 20))
def test_maxrate_injection_penalty_monotone_in_active_processes(active, nbytes):
    sparse = MaxRateModel(active_per_node=1)
    busy = MaxRateModel(active_per_node=active)
    assert busy.message_time(nbytes, Locality.INTER_NODE) >= \
        sparse.message_time(nbytes, Locality.INTER_NODE)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=64), st.integers(min_value=1, max_value=16))
def test_mapping_regions_partition_ranks(n_ranks, ranks_per_node):
    mapping = paper_mapping(n_ranks, ranks_per_node=min(ranks_per_node, n_ranks))
    seen = []
    for region in range(mapping.n_regions):
        seen.extend(mapping.ranks_in_region(region).tolist())
    assert sorted(seen) == list(range(n_ranks))
