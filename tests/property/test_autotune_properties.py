"""Property-based tests (hypothesis) for the online autotuner.

The invariants ISSUE 9 pins:

* **bounded exploration** — probe scheduling is lock-stepped, so during the
  initial probe phase every cycle runs ONE candidate hierarchy-wide and no
  auto cycle can ever cost more than the worst fixed variant's cycle;
* **convergence** — within the probe budget every level commits to its
  per-level cheapest candidate, so the steady per-iteration cost equals the
  oracle's (sum of per-level minima), never worse than any fixed variant;
* **determinism** — the selector never reads a clock; fed the same values it
  produces byte-identical decision traces and cost series, and with a
  :class:`FixedStepClock` an engine-backed auto solve is just as
  reproducible;
* **drift** — a sustained change of the committed variant's cost triggers a
  clean re-probe and a new commit on the now-cheapest candidate;
* **hygiene** — recovered cycles are discarded wholesale, and measurements
  outside an open cycle never perturb the state machine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amg.hierarchy import build_hierarchy
from repro.amg.vcycle import WorldVCycle
from repro.collectives.autotune import (
    DEFAULT_CANDIDATES,
    FixedStepClock,
    OnlineSelector,
    simulate_modeled_auto,
)
from repro.collectives.plan import Variant
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError

CANDIDATES = DEFAULT_CANDIDATES

#: strictly positive, well-separated-enough costs (no subnormal noise).
_cost = st.floats(min_value=1e-6, max_value=10.0,
                  allow_nan=False, allow_infinity=False)

#: one hierarchy level: a modeled seconds value per candidate variant.
_level = st.fixed_dictionaries({variant: _cost for variant in CANDIDATES})

#: a hierarchy: per-level cost dicts, 1-5 levels.
_hierarchy = st.lists(_level, min_size=1, max_size=5)


@settings(max_examples=40, deadline=None)
@given(level_times=_hierarchy, window=st.integers(min_value=1, max_value=4))
def test_no_auto_cycle_exceeds_the_worst_fixed_variant(level_times, window):
    """Lock-stepped probing: each cycle runs one variant hierarchy-wide."""
    sim = simulate_modeled_auto(level_times, window=window)
    worst_fixed = max(sum(times[variant] for times in level_times)
                      for variant in CANDIDATES)
    for cost in sim.per_cycle:
        assert cost <= worst_fixed + 1e-12


@settings(max_examples=40, deadline=None)
@given(level_times=_hierarchy, window=st.integers(min_value=1, max_value=4))
def test_converges_to_the_per_level_best_within_the_probe_budget(
        level_times, window):
    """Exactly probe_budget cycles suffice: every level lands on its minimum."""
    sim = simulate_modeled_auto(level_times, window=window,
                                n_cycles=len(CANDIDATES) * window)
    selector = sim.selector
    assert sim.selector.probe_budget == len(CANDIDATES) * window
    oracle = 0.0
    for level, times in enumerate(level_times):
        assert not selector.is_probing(level)
        best = min(times[variant] for variant in CANDIDATES)
        # The choice may differ from argmin on exact ties, but never its cost.
        assert times[sim.choices[level]] == best
        oracle += best
    assert sim.steady_per_iteration == pytest.approx(oracle)
    # Steady state therefore beats (or ties) every fixed policy.
    for variant in CANDIDATES:
        fixed = sum(times[variant] for times in level_times)
        assert sim.steady_per_iteration <= fixed + 1e-12


@settings(max_examples=40, deadline=None)
@given(level_times=_hierarchy, window=st.integers(min_value=1, max_value=3))
def test_simulation_is_deterministic(level_times, window):
    """Same inputs → byte-identical trace JSON and identical cost series."""
    first = simulate_modeled_auto(level_times, window=window)
    second = simulate_modeled_auto(level_times, window=window)
    assert first.trace.to_json() == second.trace.to_json()
    assert first.per_cycle == second.per_cycle
    assert first.choices == second.choices
    first.trace.validate()


@settings(max_examples=40, deadline=None)
@given(level_times=_hierarchy, window=st.integers(min_value=1, max_value=3))
def test_every_commit_references_a_probe_window_that_ran(level_times, window):
    sim = simulate_modeled_auto(level_times, window=window)
    sim.trace.validate()
    # One commit per level once converged, each justified by >= 1 probe.
    for level in range(len(level_times)):
        commits = sim.trace.events(kind="commit", level=level)
        probes = sim.trace.events(kind="probe", level=level)
        assert len(commits) == 1
        assert len(probes) == len(CANDIDATES)
        windows = {event.window for event in probes}
        assert commits[0].window in windows


def test_ties_break_on_candidate_order():
    """Equal measured costs must pick candidates[0] — deterministically."""
    sim = simulate_modeled_auto(
        [{variant: 1.0 for variant in CANDIDATES}], window=2)
    assert sim.choices[0] == CANDIDATES[0]


def test_drift_triggers_a_clean_reprobe_and_a_new_commit():
    """Sustained cost change on the committed variant re-runs the probes."""
    times = {Variant.STANDARD: 1.0, Variant.PARTIAL: 2.0, Variant.FULL: 3.0}
    selector = OnlineSelector(window=2, drift_factor=2.0)
    level_times = [times]

    def run_cycles(n):
        for _ in range(n):
            selector.begin_cycle()
            selector.record(0, float(times[selector.variant_for(0)]))
            selector.end_cycle()

    selector.seed(0, times)
    run_cycles(selector.probe_budget)
    assert selector.committed(0) == Variant.STANDARD
    assert not selector.is_probing(0)

    # The committed variant's true cost quadruples: drift both past the
    # factor and past every alternative.
    times[Variant.STANDARD] = 8.0
    run_cycles(2)                      # fill the rolling window -> drift event
    assert selector.is_probing(0)
    assert selector.trace.events(kind="drift", level=0)
    run_cycles(selector.probe_budget)  # full re-probe
    assert selector.committed(0) == Variant.PARTIAL
    switches = selector.trace.events(kind="switch", level=0)
    assert switches and switches[-1].variant == Variant.PARTIAL.value
    assert switches[-1].previous == Variant.STANDARD.value
    selector.trace.validate()
    del level_times


def test_recovered_cycles_are_discarded_wholesale():
    """A recovery-tainted cycle advances nothing and poisons no estimate."""
    times = {Variant.STANDARD: 1.0, Variant.PARTIAL: 2.0, Variant.FULL: 3.0}
    selector = OnlineSelector(window=2)
    selector.seed(0, times)
    # A tainted cycle with an absurd measurement...
    selector.begin_cycle()
    selector.record(0, 1e6)
    selector.end_cycle(recovered=True)
    assert selector.trace.events(kind="recovery")
    assert selector.trace[-1].level == -1
    # ...then clean cycles: convergence proceeds as if it never happened.
    for _ in range(selector.probe_budget):
        selector.begin_cycle()
        selector.record(0, float(times[selector.variant_for(0)]))
        selector.end_cycle()
    assert selector.committed(0) == Variant.STANDARD
    assert selector.estimates(0)[Variant.STANDARD] == 1.0


def test_records_outside_a_cycle_are_ignored():
    times = {Variant.STANDARD: 1.0, Variant.PARTIAL: 2.0, Variant.FULL: 3.0}
    selector = OnlineSelector(window=1)
    selector.seed(0, times)
    selector.record(0, 1e9)            # warm-up: no open cycle, no effect
    before = selector.trace.to_json()
    assert selector.trace.to_json() == before
    for _ in range(selector.probe_budget):
        selector.begin_cycle()
        selector.record(0, float(times[selector.variant_for(0)]))
        selector.record(99, 1.0)       # unmanaged level, also ignored
        selector.end_cycle()
    assert selector.committed(0) == Variant.STANDARD
    assert selector.estimates(0)[Variant.STANDARD] == 1.0


def test_abort_cycle_consumes_nothing():
    times = {Variant.STANDARD: 1.0, Variant.PARTIAL: 2.0, Variant.FULL: 3.0}
    selector = OnlineSelector(window=1)
    selector.seed(0, times)
    selector.begin_cycle()
    selector.record(0, 1e9)
    selector.abort_cycle()
    assert selector.cycles == 0
    assert len(selector.trace) == 1    # just the seed event
    with pytest.raises(ValidationError):
        selector.end_cycle()


def test_seed_rejects_duplicates_and_incomplete_estimates():
    selector = OnlineSelector()
    selector.seed(0, {v: 1.0 for v in CANDIDATES})
    with pytest.raises(ValidationError):
        selector.seed(0, {v: 1.0 for v in CANDIDATES})
    with pytest.raises(ValidationError):
        selector.seed(1, {Variant.STANDARD: 1.0})


def test_engine_backed_auto_vcycle_is_deterministic():
    """Under the ambient runtime (engine or procs via REPRO_RUNTIME), an
    auto V-cycle driven by a FixedStepClock reproduces results and trace."""
    matrix = ParCSRMatrix(poisson_2d((12, 12)), RowPartition.even(144, 4))
    hierarchy = build_hierarchy(matrix, seed=1)
    mapping = paper_mapping(4, ranks_per_node=2)
    b = np.ones(matrix.n_rows, dtype=np.float64)

    def run():
        with WorldVCycle(hierarchy, mapping, variant="auto",
                         selector=OnlineSelector(window=1),
                         clock=FixedStepClock()) as vcycle:
            x = np.zeros(matrix.n_rows, dtype=np.float64)
            for _ in range(vcycle.selector.probe_budget + 2):
                x = vcycle.cycle(b, x)
            return x, vcycle.decision_trace.to_json()

    x_first, trace_first = run()
    x_second, trace_second = run()
    assert np.array_equal(x_first, x_second)
    assert trace_first == trace_second
