"""Property matrix: every variant x dtype x item_size delivers the reference.

The acceptance matrix of the array-native exchange: each of the four collective
variants, run over the simulated runtime with every supported element type
(float32, float64, int64, complex128) and both scalar and vector-valued items
(item_size 1 and 4), must deliver exactly the values the sequential reference
assigns — bit-identical, because the exchange only moves bytes and a correct
routing never touches them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.api import neighbor_alltoallv_init
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.builders import neighbor_lists, random_pattern
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.world import SimWorld
from repro.topology.presets import paper_mapping

N_RANKS = 8
DTYPES = [np.float32, np.float64, np.int64, np.complex128]
ITEM_SIZES = [1, 4]
VARIANTS = [Variant.POINT_TO_POINT, Variant.STANDARD, Variant.PARTIAL, Variant.FULL]


def _reference(origin: int, items: np.ndarray, item_size: int,
               dtype: np.dtype) -> np.ndarray:
    """Sequential reference: the value every (origin, item, component) must carry.

    Exact in every dtype of the matrix (small integers for int64/float32,
    origin+item encoded in real/imag for complex).
    """
    dtype = np.dtype(dtype)
    components = np.arange(item_size)
    if dtype.kind == "i":
        table = items[:, None] * 64 + origin * 8 + components[None, :]
    elif dtype.kind == "c":
        table = (origin * 1024.0 + items[:, None]) + 1j * (components[None, :] + 1)
    else:
        table = origin * 1024.0 + items[:, None] + components[None, :] / 4.0
    return table.astype(dtype)


def _matrix_program(comm, pattern, mapping, dtype, item_size):
    """Run all four variants on one simulated world and verify each."""
    rank = comm.rank
    send_items = {d: pattern.send_items(rank, d).tolist()
                  for d in pattern.send_ranks(rank)}
    recv_items = {s: pattern.recv_items(rank, s).tolist()
                  for s in pattern.recv_ranks(rank)}
    sources, dests = neighbor_lists(pattern, rank)

    for variant in VARIANTS:
        from repro.simmpi.topo_comm import dist_graph_create_adjacent

        graph = dist_graph_create_adjacent(comm, sources, dests, validate=False)
        collective = neighbor_alltoallv_init(graph, send_items, recv_items, mapping,
                                             variant=variant, dtype=dtype,
                                             item_size=item_size)
        values = _reference(rank, collective.owned_item_ids, item_size, dtype)
        if item_size == 1:
            values = values.reshape(-1)
        received = collective.exchange(values)
        expected = np.concatenate([
            _reference(src, np.array([item]), item_size, dtype)
            for item, src in zip(collective.recv_item_ids.tolist(),
                                 collective.recv_item_sources.tolist())
        ]) if collective.recv_item_ids.size else \
            np.empty((0, item_size), dtype=dtype)
        if item_size == 1:
            expected = expected.reshape(-1)
        assert received.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(received, expected)
    return True


@pytest.mark.parametrize("item_size", ITEM_SIZES)
@pytest.mark.parametrize("dtype", DTYPES)
def test_all_variants_match_sequential_reference(dtype, item_size):
    dtype = np.dtype(dtype)
    mapping = paper_mapping(N_RANKS, ranks_per_node=4)
    pattern = random_pattern(N_RANKS, avg_neighbors=4, duplicate_fraction=0.5,
                             seed=97, dtype=dtype, item_size=item_size)
    profiler = TrafficProfiler(mapping)
    world = SimWorld(N_RANKS, timeout=120, profiler=profiler)
    world.run(_matrix_program, pattern, mapping, dtype, item_size)

    # Wire accounting: across all four variants the profiler must observe
    # exactly count * item_size * dtype.itemsize bytes per planned message.
    item_bytes = item_size * dtype.itemsize
    expected_bytes = sum(
        message.payload_count() * item_bytes
        for variant in VARIANTS
        for message in make_plan(pattern, mapping, variant).messages()
    )
    assert profiler.total().byte_count == expected_bytes
