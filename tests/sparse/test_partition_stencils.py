"""Unit tests for row partitions and stencil generators."""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.generators import grid_shape_for_rows, strong_scaling_problem, weak_scaling_problem
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import (
    poisson_2d,
    poisson_3d,
    rotated_anisotropic_diffusion,
    rotated_anisotropic_stencil,
    stencil_grid,
)
from repro.utils.errors import ValidationError


class TestRowPartition:
    def test_even_split(self):
        partition = RowPartition.even(10, 3)
        assert [partition.local_size(r) for r in range(3)] == [4, 3, 3]

    def test_owner_of(self):
        partition = RowPartition.even(10, 3)
        assert partition.owner_of(0) == 0
        assert partition.owner_of(3) == 0
        assert partition.owner_of(4) == 1
        assert partition.owner_of(9) == 2

    def test_owners_of_vectorised(self):
        partition = RowPartition.even(100, 7)
        rows = np.arange(100)
        owners = partition.owners_of(rows)
        assert all(owners[i] == partition.owner_of(int(i)) for i in rows)

    def test_row_range_and_to_local(self):
        partition = RowPartition.even(12, 4)
        first, last = partition.row_range(2)
        assert (first, last) == (6, 9)
        assert partition.to_local(2, [6, 8]).tolist() == [0, 2]
        with pytest.raises(ValidationError):
            partition.to_local(2, [0])

    def test_from_sizes(self):
        partition = RowPartition.from_sizes([2, 0, 3])
        assert partition.n_rows == 5
        assert partition.local_size(1) == 0
        assert partition.active_ranks().tolist() == [0, 2]

    def test_invalid_offsets(self):
        with pytest.raises(ValidationError):
            RowPartition([1, 2])
        with pytest.raises(ValidationError):
            RowPartition([0, 5, 3])

    def test_out_of_range_queries(self):
        partition = RowPartition.even(4, 2)
        with pytest.raises(ValidationError):
            partition.owner_of(4)
        with pytest.raises(ValidationError):
            partition.row_range(2)

    def test_equality(self):
        assert RowPartition.even(10, 2) == RowPartition.even(10, 2)
        assert RowPartition.even(10, 2) != RowPartition.even(10, 5)


class TestRotatedAnisotropicStencil:
    def test_seven_nonzeros_at_default_parameters(self):
        stencil = rotated_anisotropic_stencil()
        assert np.count_nonzero(np.abs(stencil) > 1e-14) == 7

    def test_row_sum_is_zero(self):
        # The continuous operator annihilates constants; the stencil must too.
        assert abs(rotated_anisotropic_stencil().sum()) < 1e-12

    def test_isotropic_limit_is_laplacian(self):
        stencil = rotated_anisotropic_stencil(epsilon=1.0, theta=0.0)
        expected = np.array([[0, -1, 0], [-1, 4, -1], [0, -1, 0]], dtype=float)
        np.testing.assert_allclose(stencil, expected, atol=1e-12)

    def test_negative_rotation_uses_other_diagonal(self):
        stencil = rotated_anisotropic_stencil(theta=-math.pi / 4)
        assert abs(stencil[0, 2]) > 1e-6 and abs(stencil[2, 0]) > 1e-6
        assert abs(stencil[0, 0]) < 1e-12 and abs(stencil[2, 2]) < 1e-12

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            rotated_anisotropic_stencil(epsilon=0.0)


class TestStencilGrid:
    def test_shape_and_symmetry(self):
        matrix = rotated_anisotropic_diffusion((8, 8))
        assert matrix.shape == (64, 64)
        assert abs(matrix - matrix.T).max() < 1e-12

    def test_interior_row_has_seven_entries(self):
        matrix = rotated_anisotropic_diffusion((8, 8))
        interior = 3 * 8 + 3
        assert matrix[interior].nnz == 7

    def test_positive_definite_on_small_grid(self):
        matrix = rotated_anisotropic_diffusion((6, 6)).toarray()
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() > 0

    def test_poisson_2d_row_structure(self):
        matrix = poisson_2d((5, 5))
        assert matrix.shape == (25, 25)
        interior = 2 * 5 + 2
        assert matrix[interior].nnz == 5
        assert matrix.diagonal().min() == 4.0

    def test_poisson_3d_structure(self):
        matrix = poisson_3d((3, 3, 3))
        assert matrix.shape == (27, 27)
        center = 13
        assert matrix[center].nnz == 7
        assert abs(matrix - matrix.T).max() < 1e-12

    def test_stencil_grid_rejects_bad_stencil(self):
        with pytest.raises(ValidationError):
            stencil_grid(np.zeros((2, 2)), (4, 4))

    def test_boundary_truncation(self):
        matrix = poisson_2d((4, 4))
        corner = 0
        assert matrix[corner].nnz == 3  # diagonal plus two in-grid neighbours


class TestProblemGenerators:
    def test_grid_shape_exact_product(self):
        shape = grid_shape_for_rows(524288)
        assert shape[0] * shape[1] == 524288
        assert shape == (1024, 512)

    def test_grid_shape_square(self):
        assert grid_shape_for_rows(4096) == (64, 64)

    def test_grid_shape_rejects_awkward_counts(self):
        with pytest.raises(ValidationError):
            grid_shape_for_rows(7919)   # prime: only a 7919x1 grid exists

    def test_strong_scaling_problem(self):
        problem = strong_scaling_problem(4096, 32)
        assert problem.n_rows == 4096
        assert problem.matrix.n_ranks == 32
        assert problem.rows_per_rank == 128

    def test_weak_scaling_problem(self):
        problem = weak_scaling_problem(128, 16)
        assert problem.n_rows == 2048
        assert problem.matrix.partition.local_size(0) == 128
