"""Rectangular ParCSR matrices and grid-transfer SpMV.

Covers the new transfer layer end to end — ``ParCSRRectMatrix`` block views,
``transfer_pattern`` construction, and the engine/envelope execution pair —
plus the regression suite for hierarchy levels with empty ranks: a level
whose partition leaves ranks without rows must flow through
``distributed_spmv_results`` and friends cleanly (never a deep engine error),
while genuinely invalid inputs (a mapping smaller than the partition, which
used to surface as a deep planner ``TopologyError``) fail up front with a
clear :class:`ValidationError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg.hierarchy import build_hierarchy
from repro.collectives.plan import Variant
from repro.sparse.comm_pkg import build_transfer_comm_pkg, transfer_pattern
from repro.sparse.parcsr import ParCSRMatrix, ParCSRRectMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.spmv import (
    WorldRectSpMV,
    distributed_spmv_results,
    distributed_transfer_results,
)
from repro.sparse.stencils import poisson_2d
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def transfer_fixture():
    """A real prolongation with its fine/coarse partitions (8 ranks)."""
    matrix = ParCSRMatrix(poisson_2d((20, 20)), RowPartition.even(400, 8))
    hierarchy = build_hierarchy(matrix, seed=1)
    return hierarchy


class TestRectMatrix:
    def test_shape_and_partition_validation(self):
        matrix = poisson_2d((4, 4))  # 16 x 16
        with pytest.raises(ValidationError):
            ParCSRRectMatrix(matrix, RowPartition.even(12, 2),
                             RowPartition.even(16, 2))
        with pytest.raises(ValidationError):
            ParCSRRectMatrix(matrix, RowPartition.even(16, 2),
                             RowPartition.even(12, 2))
        with pytest.raises(ValidationError):
            ParCSRRectMatrix(matrix, RowPartition.even(16, 2),
                             RowPartition.even(16, 4))

    def test_blocks_reassemble_the_operator(self, transfer_fixture):
        prolongation = transfer_fixture.prolongation_matrix(0)
        x = np.arange(prolongation.n_cols, dtype=np.float64)
        result = np.empty(prolongation.n_rows)
        for rank in range(prolongation.n_ranks):
            blocks = prolongation.local_blocks(rank)
            first, last = blocks.row_range
            col_first, col_last = blocks.col_range
            local = blocks.diag @ x[col_first:col_last]
            if blocks.n_offd_cols:
                local = local + blocks.offd @ x[blocks.col_map_offd]
            result[first:last] = local
        np.testing.assert_allclose(result, prolongation.spmv(x),
                                   rtol=1e-14, atol=0)

    def test_offd_columns_match_block_view(self, transfer_fixture):
        restriction = transfer_fixture.restriction_matrix(0)
        for rank in range(restriction.n_ranks):
            assert np.array_equal(restriction.offd_columns(rank),
                                  restriction.local_blocks(rank).col_map_offd)

    def test_transpose_swaps_partitions(self, transfer_fixture):
        prolongation = transfer_fixture.prolongation_matrix(1)
        transposed = prolongation.transpose()
        assert transposed.n_rows == prolongation.n_cols
        assert transposed.row_partition == prolongation.col_partition
        assert (transposed.matrix != prolongation.matrix.T.tocsr()).nnz == 0


class TestTransferPattern:
    def test_pattern_items_are_offd_columns(self, transfer_fixture):
        prolongation = transfer_fixture.prolongation_matrix(0)
        pattern = transfer_pattern(prolongation)
        for rank in range(prolongation.n_ranks):
            wanted = prolongation.offd_columns(rank)
            received = pattern.recv_map(rank)
            got = np.sort(np.concatenate(list(received.values()))) \
                if received else np.empty(0, dtype=np.int64)
            assert np.array_equal(got, wanted)

    def test_senders_own_their_items(self, transfer_fixture):
        prolongation = transfer_fixture.prolongation_matrix(0)
        pattern = transfer_pattern(prolongation)
        col_partition = prolongation.col_partition
        for src in range(pattern.n_ranks):
            for dest, items in pattern.send_map(src).items():
                assert dest != src
                assert np.all(col_partition.owners_of(items) == src)

    def test_pkg_sides_are_transposes(self, transfer_fixture):
        pkg = build_transfer_comm_pkg(transfer_fixture.restriction_matrix(0))
        for rank in range(pkg.n_ranks):
            for src, items in pkg.recv_map(rank).items():
                assert np.array_equal(np.sort(items),
                                      np.sort(pkg.send_map(src)[rank]))


@pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL,
                                     Variant.FULL])
@pytest.mark.parametrize("level", [0, 1])
def test_transfer_engine_byte_identical_to_threads(transfer_fixture, variant,
                                                   level, rng):
    for operator in (transfer_fixture.prolongation_matrix(level),
                     transfer_fixture.restriction_matrix(level)):
        mapping = paper_mapping(operator.n_ranks, ranks_per_node=4)
        x = rng.standard_normal(operator.n_cols)
        engine = distributed_transfer_results(operator, mapping, x,
                                              variant=variant,
                                              runtime="engine")
        threads = distributed_transfer_results(operator, mapping, x,
                                               variant=variant,
                                               runtime="threads")
        assert np.array_equal(engine, threads)
        np.testing.assert_allclose(engine, operator.spmv(x),
                                   rtol=1e-12, atol=1e-12)


def test_world_rect_spmv_reusable(transfer_fixture, rng):
    operator = transfer_fixture.prolongation_matrix(0)
    mapping = paper_mapping(operator.n_ranks, ranks_per_node=4)
    spmv = WorldRectSpMV(operator, mapping, variant=Variant.FULL)
    for _ in range(3):
        x = rng.standard_normal(operator.n_cols)
        np.testing.assert_allclose(spmv.multiply(x), operator.spmv(x),
                                   rtol=1e-12, atol=1e-12)


class TestEmptyRankRegression:
    """Hierarchy levels with empty ranks flow through cleanly.

    Coarse AMG levels routinely leave ranks without rows; the engine and
    envelope paths must execute those levels (SpMV and grid transfers alike)
    rather than fail deep inside the exchange machinery.
    """

    @pytest.fixture(scope="class")
    def empty_rank_hierarchy(self):
        """4096 rows on 64 ranks: coarse levels leave many ranks empty."""
        matrix = ParCSRMatrix(poisson_2d((40, 40)),
                              RowPartition.even(1600, 32))
        return build_hierarchy(matrix, seed=1)

    def test_coarse_levels_have_empty_ranks(self, empty_rank_hierarchy):
        sizes = np.diff(empty_rank_hierarchy.levels[-1].matrix.partition.offsets)
        assert (sizes == 0).any()

    @pytest.mark.parametrize("runtime", ["engine", "threads"])
    def test_spmv_on_empty_rank_level(self, empty_rank_hierarchy, runtime, rng):
        level = empty_rank_hierarchy.levels[-1].matrix
        mapping = paper_mapping(level.n_ranks, ranks_per_node=16)
        x = rng.standard_normal(level.n_rows)
        result = distributed_spmv_results(level, mapping, x,
                                          variant=Variant.FULL,
                                          runtime=runtime)
        np.testing.assert_allclose(result, level.spmv(x),
                                   rtol=1e-12, atol=1e-12)

    def test_transfer_onto_empty_rank_level(self, empty_rank_hierarchy, rng):
        index = empty_rank_hierarchy.n_levels - 2
        operator = empty_rank_hierarchy.prolongation_matrix(index)
        mapping = paper_mapping(operator.n_ranks, ranks_per_node=16)
        x = rng.standard_normal(operator.n_cols)
        result = distributed_transfer_results(operator, mapping, x,
                                              variant=Variant.FULL)
        np.testing.assert_allclose(result, operator.spmv(x),
                                   rtol=1e-12, atol=1e-12)

    def test_world_vcycle_over_empty_rank_levels(self, empty_rank_hierarchy,
                                                 rng):
        from repro.amg.solver import BoomerAMGSolver
        from repro.amg.vcycle import WorldVCycle

        matrix = empty_rank_hierarchy.levels[0].matrix
        mapping = paper_mapping(matrix.n_ranks, ranks_per_node=16)
        b = rng.standard_normal(matrix.n_rows)
        x0 = np.zeros(matrix.n_rows)
        world_x = WorldVCycle(empty_rank_hierarchy, mapping,
                              variant=Variant.FULL).cycle(b, x0)
        seed_x = BoomerAMGSolver(matrix,
                                 hierarchy=empty_rank_hierarchy).vcycle(b, x0)
        np.testing.assert_allclose(world_x, seed_x, rtol=1e-10, atol=1e-12)

    def test_undersized_mapping_rejected_up_front(self, empty_rank_hierarchy,
                                                  rng):
        """This used to surface as a deep planner ``TopologyError`` (or pass
        silently for the standard variant); now every entry point raises a
        clear :class:`ValidationError` before any plan is built."""
        level = empty_rank_hierarchy.levels[0].matrix
        small = paper_mapping(4, ranks_per_node=4)
        x = rng.standard_normal(level.n_rows)
        with pytest.raises(ValidationError, match="mapping covers"):
            distributed_spmv_results(level, small, x)
        with pytest.raises(ValidationError, match="mapping covers"):
            distributed_transfer_results(
                empty_rank_hierarchy.prolongation_matrix(0), small,
                rng.standard_normal(empty_rank_hierarchy.levels[1].n_rows))
