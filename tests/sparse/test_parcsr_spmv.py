"""Unit tests for ParCSR matrices, communication packages, and distributed SpMV."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.collectives.plan import Variant
from repro.pattern.validation import validate_pattern
from repro.sparse.comm_pkg import build_comm_pkg, pattern_from_parcsr
from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.spmv import distributed_spmv_results, sequential_spmv
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion
from repro.topology.presets import paper_mapping
from repro.utils.errors import ValidationError


class TestParCSRMatrix:
    def test_requires_square_matrix(self):
        with pytest.raises(ValidationError):
            ParCSRMatrix(sp.random(4, 5, density=0.5, format="csr"),
                         RowPartition.even(4, 2))

    def test_partition_must_match_rows(self):
        with pytest.raises(ValidationError):
            ParCSRMatrix(sp.eye(4, format="csr"), RowPartition.even(5, 2))

    def test_diag_offd_split_reassembles_rows(self, small_anisotropic_matrix):
        matrix = small_anisotropic_matrix
        for rank in (0, 7, 15):
            blocks = matrix.local_blocks(rank)
            first, last = blocks.row_range
            local_rows = matrix.matrix[first:last, :]
            # The diag block holds exactly the columns inside the owned range.
            np.testing.assert_allclose(
                blocks.diag.toarray(), local_rows[:, first:last].toarray())
            # Every off-diagonal non-zero is accounted for in the offd block.
            assert blocks.diag.nnz + blocks.offd.nnz == local_rows.nnz

    def test_col_map_offd_sorted_and_off_process(self, small_anisotropic_matrix):
        matrix = small_anisotropic_matrix
        for rank in range(matrix.n_ranks):
            blocks = matrix.local_blocks(rank)
            col_map = blocks.col_map_offd
            assert np.all(np.diff(col_map) > 0)
            first, last = blocks.row_range
            assert np.all((col_map < first) | (col_map >= last))

    def test_offd_columns_fast_path_matches_blocks(self, small_anisotropic_matrix):
        matrix = small_anisotropic_matrix
        for rank in range(matrix.n_ranks):
            fast = matrix.offd_columns(rank)
            blocks = matrix.local_blocks(rank)
            np.testing.assert_array_equal(fast, blocks.col_map_offd)

    def test_single_rank_has_no_offd(self):
        matrix = ParCSRMatrix(poisson_2d((8, 8)), RowPartition.even(64, 1))
        blocks = matrix.local_blocks(0)
        assert blocks.n_offd_cols == 0

    def test_spmv_reference(self, small_poisson_matrix, rng):
        x = rng.random(small_poisson_matrix.n_rows)
        np.testing.assert_allclose(small_poisson_matrix.spmv(x),
                                   small_poisson_matrix.matrix @ x)

    def test_with_partition(self, small_poisson_matrix):
        repartitioned = small_poisson_matrix.with_partition(RowPartition.even(576, 4))
        assert repartitioned.n_ranks == 4
        assert repartitioned.nnz == small_poisson_matrix.nnz


class TestCommPkg:
    def test_send_and_recv_sides_are_transposes(self, small_anisotropic_matrix):
        pkg = build_comm_pkg(small_anisotropic_matrix)
        for rank, recv in pkg.recv_items.items():
            for src, items in recv.items():
                np.testing.assert_array_equal(pkg.send_items[src][rank], items)

    def test_recv_items_are_exactly_offd_columns(self, small_anisotropic_matrix):
        pkg = build_comm_pkg(small_anisotropic_matrix)
        for rank in range(small_anisotropic_matrix.n_ranks):
            needed = small_anisotropic_matrix.offd_columns(rank)
            received = np.sort(np.concatenate(
                [items for items in pkg.recv_map(rank).values()])) \
                if pkg.recv_map(rank) else np.empty(0, dtype=np.int64)
            np.testing.assert_array_equal(received, needed)

    def test_neighbors_sorted(self, small_anisotropic_matrix):
        pkg = build_comm_pkg(small_anisotropic_matrix)
        sources, destinations = pkg.neighbors(5)
        assert sources == sorted(sources)
        assert destinations == sorted(destinations)

    def test_pattern_from_parcsr_valid(self, small_anisotropic_matrix):
        pattern = pattern_from_parcsr(small_anisotropic_matrix)
        validate_pattern(pattern, require_unique_items=True, allow_self_messages=False)
        assert pattern.n_ranks == small_anisotropic_matrix.n_ranks

    def test_pattern_items_owned_by_sender(self, small_anisotropic_matrix):
        pattern = pattern_from_parcsr(small_anisotropic_matrix)
        partition = small_anisotropic_matrix.partition
        for src, _, items in pattern.edges():
            assert np.all(partition.owners_of(items) == src)

    def test_total_recv_items(self, small_anisotropic_matrix):
        pkg = build_comm_pkg(small_anisotropic_matrix)
        for rank in range(small_anisotropic_matrix.n_ranks):
            assert pkg.total_recv_items(rank) == \
                small_anisotropic_matrix.offd_columns(rank).size


class TestDistributedSpMV:
    @pytest.mark.parametrize("variant", [Variant.STANDARD, Variant.PARTIAL, Variant.FULL])
    def test_matches_sequential_product(self, variant, rng):
        matrix = ParCSRMatrix(rotated_anisotropic_diffusion((16, 16)),
                              RowPartition.even(256, 8))
        mapping = paper_mapping(8, ranks_per_node=4)
        x = rng.random(256)
        expected = sequential_spmv(matrix, x)
        result = distributed_spmv_results(matrix, mapping, x, variant=variant)
        np.testing.assert_allclose(result, expected, rtol=1e-13, atol=1e-13)

    def test_poisson_matches_sequential(self, small_poisson_matrix, rng):
        mapping = paper_mapping(8, ranks_per_node=4)
        x = rng.random(small_poisson_matrix.n_rows)
        expected = sequential_spmv(small_poisson_matrix, x)
        result = distributed_spmv_results(small_poisson_matrix, mapping, x,
                                          variant=Variant.FULL)
        np.testing.assert_allclose(result, expected, rtol=1e-13, atol=1e-13)

    def test_shape_validation(self, small_poisson_matrix):
        mapping = paper_mapping(8, ranks_per_node=4)
        with pytest.raises(ValidationError):
            distributed_spmv_results(small_poisson_matrix, mapping, np.zeros(3))
