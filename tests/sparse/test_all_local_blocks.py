"""Golden equivalence: one-pass block splitting vs per-rank ``local_blocks``.

:meth:`ParCSRMatrix.all_local_blocks` (and the rectangular counterpart)
builds every rank's diag/offd split from one vectorized classification of
the global CSR; the per-rank scipy slicing path is the pinned reference.
Structure must match exactly: dense block values, shapes, ``col_map_offd``
contents, and sorted column order inside every row.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.parcsr import ParCSRMatrix, ParCSRRectMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import poisson_2d, rotated_anisotropic_diffusion


def reference_blocks(matrix):
    """Per-rank reference splits on a cache-free twin of ``matrix``."""
    if isinstance(matrix, ParCSRRectMatrix):
        twin = ParCSRRectMatrix(matrix.matrix, matrix.row_partition,
                                matrix.col_partition)
    else:
        twin = ParCSRMatrix(matrix.matrix, matrix.partition)
    return [twin.local_blocks(rank) for rank in range(matrix.n_ranks)]


def assert_blocks_match(fast_blocks, ref_blocks):
    assert len(fast_blocks) == len(ref_blocks)
    for fast, ref in zip(fast_blocks, ref_blocks):
        assert fast.rank == ref.rank
        assert fast.row_range == ref.row_range
        assert fast.diag.shape == ref.diag.shape
        assert fast.offd.shape == ref.offd.shape
        np.testing.assert_array_equal(fast.col_map_offd, ref.col_map_offd)
        assert fast.col_map_offd.dtype == ref.col_map_offd.dtype
        np.testing.assert_array_equal(fast.diag.toarray(), ref.diag.toarray())
        np.testing.assert_array_equal(fast.offd.toarray(), ref.offd.toarray())
        for block in (fast.diag, fast.offd):
            for row in range(block.shape[0]):
                cols = block.indices[block.indptr[row]:block.indptr[row + 1]]
                assert np.all(np.diff(cols) > 0), "unsorted or duplicate cols"


@pytest.mark.parametrize("n_ranks", [1, 3, 4, 7])
def test_square_split_matches_per_rank_path(n_ranks):
    matrix = ParCSRMatrix(rotated_anisotropic_diffusion((6, 6)),
                          RowPartition.even(36, n_ranks))
    assert_blocks_match(matrix.all_local_blocks(), reference_blocks(matrix))


def test_square_split_with_empty_ranks():
    offsets = [0, 10, 10, 25, 25, 36]
    matrix = ParCSRMatrix(poisson_2d((6, 6)), RowPartition(offsets))
    assert_blocks_match(matrix.all_local_blocks(), reference_blocks(matrix))


def test_rect_split_matches_per_rank_path():
    rng = np.random.default_rng(7)
    dense = (rng.random((24, 15)) < 0.2) * rng.random((24, 15))
    matrix = ParCSRRectMatrix(sp.csr_matrix(dense),
                              RowPartition.even(24, 4),
                              RowPartition.even(15, 4))
    assert_blocks_match(matrix.all_local_blocks(), reference_blocks(matrix))


def test_all_local_blocks_respects_cache_identity():
    matrix = ParCSRMatrix(poisson_2d((4, 4)), RowPartition.even(16, 4))
    cached = matrix.local_blocks(2)
    blocks = matrix.all_local_blocks()
    assert blocks[2] is cached
    assert matrix.local_blocks(0) is blocks[0]


def test_spmv_through_vectorized_blocks():
    matrix = ParCSRMatrix(rotated_anisotropic_diffusion((5, 5)),
                          RowPartition.even(25, 5))
    x = np.arange(25, dtype=np.float64)
    expected = matrix.matrix @ x
    result = np.empty(25)
    for blocks in matrix.all_local_blocks():
        first, last = blocks.row_range
        local = blocks.diag @ x[first:last]
        if blocks.n_offd_cols:
            local = local + blocks.offd @ x[blocks.col_map_offd]
        result[first:last] = local
    np.testing.assert_allclose(result, expected, atol=1e-12)
