"""Unit tests for repro.utils.formatting and repro.utils.timing."""

import itertools

import pytest

from repro.utils.formatting import format_bytes, format_seconds, format_series, format_table
from repro.utils.timing import Timer, WallClock


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kibibytes(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mebibytes(self):
        assert "MiB" in format_bytes(5 * 1024 * 1024)

    def test_zero(self):
        assert format_bytes(0) == "0 B"


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert format_seconds(0.0025) == "2.500 ms"

    def test_microseconds(self):
        assert "us" in format_seconds(3.2e-6)

    def test_nanoseconds(self):
        assert "ns" in format_seconds(5e-9)

    def test_zero(self):
        assert format_seconds(0.0) == "0 s"


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        assert "a" in text and "bb" in text and "33" in text

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_column_alignment(self):
        text = format_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        # All data lines padded to the same width as the longest cell.
        assert len(lines[-1]) >= len("longer")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series({"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, [10, 20])
        assert len(text.splitlines()) == 4  # header, separator, two rows

    def test_missing_values_rendered_as_dash(self):
        text = format_series({"s1": [1.0]}, [10, 20])
        assert "-" in text.splitlines()[-1]


class TestTimer:
    def test_measure_uses_min_of_averages(self):
        # Fake clock advancing 1s per call: each trial of N iterations appears
        # to take exactly 1 second regardless of N.
        counter = itertools.count()
        clock = WallClock(source=lambda: float(next(counter)))
        timer = Timer(iterations=10, trials=3, clock=clock)
        result = timer.measure(lambda: None)
        assert result == pytest.approx(0.1)

    def test_measure_once(self):
        counter = itertools.count()
        clock = WallClock(source=lambda: float(next(counter)))
        timer = Timer(clock=clock)
        assert timer.measure_once(lambda: None) == pytest.approx(1.0)

    def test_invalid_configuration(self):
        timer = Timer(iterations=0)
        with pytest.raises(ValueError):
            timer.measure(lambda: None)

    def test_real_clock_monotone(self):
        clock = WallClock()
        a, b = clock.now(), clock.now()
        assert b >= a
