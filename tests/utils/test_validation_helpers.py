"""Unit tests for repro.utils.validation and the error hierarchy."""

import numpy as np
import pytest

from repro.utils.errors import (
    CommunicationError,
    PlanError,
    ReproError,
    ValidationError,
)
from repro.utils.validation import (
    check_in_range,
    check_index_array,
    check_monotone,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_type,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (ValidationError, CommunicationError, PlanError):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_communication_error_is_runtime_error(self):
        assert issubclass(CommunicationError, RuntimeError)


class TestIntChecks:
    def test_positive_int_accepts_numpy_int(self):
        assert check_positive_int("x", np.int64(5)) == 5

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int("x", 0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int("x", True)

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int("x", 3.5)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative_int("x", 0) == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative_int("x", -1)

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="n_ranks"):
            check_positive_int("n_ranks", -3)


class TestRangeChecks:
    def test_in_range_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_in_range_exclusive_rejects_bound(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability("p", 1.5)


class TestIndexArray:
    def test_accepts_list(self):
        arr = check_index_array("idx", [1, 2, 3])
        assert arr.dtype == np.int64

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_index_array("idx", [1, -2])

    def test_upper_bound(self):
        with pytest.raises(ValidationError):
            check_index_array("idx", [1, 5], upper=5)

    def test_empty_ok(self):
        assert check_index_array("idx", []).size == 0

    def test_rejects_floats(self):
        with pytest.raises(ValidationError):
            check_index_array("idx", np.array([1.5, 2.0]))


class TestMonotoneAndType:
    def test_monotone_accepts_equal(self):
        check_monotone("x", [1, 1, 2])

    def test_strict_rejects_equal(self):
        with pytest.raises(ValidationError):
            check_monotone("x", [1, 1, 2], strict=True)

    def test_monotone_rejects_decreasing(self):
        with pytest.raises(ValidationError):
            check_monotone("x", [2, 1])

    def test_check_type_single(self):
        assert check_type("x", 5, int) == 5

    def test_check_type_tuple(self):
        assert check_type("x", "abc", (int, str)) == "abc"

    def test_check_type_rejects(self):
        with pytest.raises(ValidationError, match="x must be of type"):
            check_type("x", 5, str)
