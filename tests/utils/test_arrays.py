"""Unit tests for repro.utils.arrays."""

import numpy as np
import pytest

from repro.utils.arrays import (
    as_index_array,
    concatenate_or_empty,
    counts_to_displs,
    displs_to_counts,
    gather_ranges,
    invert_permutation,
    partition_evenly,
    stable_unique,
)
from repro.utils.errors import ValidationError


class TestCountsDispls:
    def test_counts_to_displs_basic(self):
        displs = counts_to_displs([3, 0, 2, 5])
        assert displs.tolist() == [0, 3, 3, 5, 10]

    def test_counts_to_displs_empty(self):
        assert counts_to_displs([]).tolist() == [0]

    def test_counts_to_displs_rejects_negative(self):
        with pytest.raises(ValidationError):
            counts_to_displs([2, -1])

    def test_displs_to_counts_roundtrip(self):
        counts = np.array([4, 1, 0, 7])
        assert displs_to_counts(counts_to_displs(counts)).tolist() == counts.tolist()

    def test_displs_to_counts_rejects_decreasing(self):
        with pytest.raises(ValidationError):
            displs_to_counts([0, 5, 3])

    def test_displs_to_counts_empty(self):
        assert displs_to_counts([]).size == 0


class TestPartitionEvenly:
    def test_even_split(self):
        offsets = partition_evenly(12, 4)
        assert offsets.tolist() == [0, 3, 6, 9, 12]

    def test_remainder_goes_to_first_parts(self):
        offsets = partition_evenly(10, 4)
        sizes = np.diff(offsets).tolist()
        assert sizes == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        offsets = partition_evenly(2, 5)
        assert np.diff(offsets).tolist() == [1, 1, 0, 0, 0]

    def test_zero_items(self):
        assert partition_evenly(0, 3).tolist() == [0, 0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ValidationError):
            partition_evenly(10, 0)

    def test_negative_total(self):
        with pytest.raises(ValidationError):
            partition_evenly(-1, 2)


class TestPermutation:
    def test_invert_permutation(self):
        perm = np.array([2, 0, 3, 1])
        inverse = invert_permutation(perm)
        assert inverse[perm].tolist() == [0, 1, 2, 3]

    def test_invert_identity(self):
        assert invert_permutation([0, 1, 2]).tolist() == [0, 1, 2]

    def test_invert_rejects_repeats(self):
        with pytest.raises(ValidationError):
            invert_permutation([0, 0, 1])

    def test_invert_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            invert_permutation([0, 5])


class TestStableUnique:
    def test_preserves_first_occurrence_order(self):
        assert stable_unique([5, 3, 5, 1, 3, 7]).tolist() == [5, 3, 1, 7]

    def test_empty(self):
        assert stable_unique([]).size == 0

    def test_already_unique(self):
        assert stable_unique([9, 2, 4]).tolist() == [9, 2, 4]


class TestGatherRanges:
    def test_matches_slice_loop(self):
        values = np.arange(100, 120)
        starts = np.array([3, 0, 17, 9])
        lengths = np.array([4, 2, 3, 0])
        expected = np.concatenate([values[s:s + n]
                                   for s, n in zip(starts, lengths)])
        assert gather_ranges(values, starts, lengths).tolist() == expected.tolist()

    def test_overlapping_and_repeated_ranges(self):
        values = np.array([10, 11, 12, 13])
        result = gather_ranges(values, np.array([1, 1, 0]), np.array([2, 2, 4]))
        assert result.tolist() == [11, 12, 11, 12, 10, 11, 12, 13]

    def test_empty_ranges(self):
        assert gather_ranges(np.arange(5), np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)).size == 0
        assert gather_ranges(np.arange(5), np.array([2, 4]),
                             np.array([0, 0])).size == 0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValidationError, match="parallel"):
            gather_ranges(np.arange(5), np.array([0, 1]), np.array([1]))

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            gather_ranges(np.arange(5), np.array([0]), np.array([-1]))


class TestMisc:
    def test_as_index_array_scalar(self):
        assert as_index_array(3).tolist() == [3]

    def test_as_index_array_dtype(self):
        assert as_index_array([1, 2]).dtype == np.int64

    def test_concatenate_or_empty_skips_empty(self):
        result = concatenate_or_empty([np.array([1, 2]), np.array([]), np.array([3])])
        assert result.tolist() == [1, 2, 3]

    def test_concatenate_or_empty_all_empty(self):
        result = concatenate_or_empty([np.array([]), np.array([])])
        assert result.size == 0 and result.dtype == np.int64
