"""Shared-memory multiprocessing runtime for the world-stepped engine.

The serial :class:`~repro.simmpi.engine.ExchangeEngine` executes a registered
world exchange as O(phases) numpy calls — fast, but on one core.  This module
provides the ``runtime="procs"`` backend: the world work array, the per-phase
gather / scatter / wire-permutation index arrays, and the per-phase wire
arenas are placed in :mod:`multiprocessing.shared_memory` segments at
registration, and a persistent pool of worker processes (forked once per
engine, lazily at the first registration) executes every phase in parallel.

**Slab ownership.**  ``compile_world_exchange`` lays the world work array out
as contiguous per-rank row blocks and concatenates each phase's gather and
scatter indices in the same rank order, so a contiguous range of ranks owns a
contiguous, disjoint segment of every per-phase array.  The pool partitions
the ranks evenly across its workers (``partition_evenly`` over
``world.n_ranks``); worker ``w`` owns the row slab of its rank range and, per
phase, the matching ``gather_rank_offsets`` / ``scatter_rank_offsets``
segments.  A rank's gather and scatter indices only ever address its own row
block, so all of a worker's *work-array* reads and writes stay inside its own
slab; the only cross-slab traffic is the wire.

**Phase-barrier protocol.**  Each step of the schedule runs as one parallel
stanza:

* ``("send", phase)`` — worker ``w`` packs its slab's slice of the wire:
  ``wire[a:b] = work[gather[a:b]]`` (slab-local reads, disjoint wire writes);
* ``("recv", phase)`` — worker ``w`` delivers into its slab:
  ``work[scatter[a:b]] = wire[wire_perm[a:b]]`` — the wire permutation is
  where values cross slab boundaries, as actual shared-memory traffic;
* a :class:`multiprocessing.Barrier` between consecutive steps orders every
  wire write before any wire read (and every delivery before the next pack).

The parent loads owned values into the shared work array before dispatching
and copies results out after all workers report done, so no shared-memory
view ever escapes to the caller.  Message accounting (the profiler) stays in
the parent, exactly as on the serial path.

Lifecycle: workers are daemonic ``fork`` children driven over per-worker
pipes; :meth:`ProcsPool.close` shuts them down and unlinks every segment
deterministically (``ExchangeEngine.close`` / context-manager exit calls it,
with a ``weakref.finalize`` backstop for engines that are simply dropped).
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.arrays import INDEX_DTYPE, partition_evenly
from repro.utils.errors import CommunicationError

#: How long the parent waits for a worker to finish one exchange round or
#: acknowledge a command before declaring the pool wedged.
_WORKER_TIMEOUT = 120.0


def default_worker_count(n_ranks: int) -> int:
    """Worker-pool size when the caller does not choose: one per core, capped
    by the rank count (a worker owns at least one rank's slab)."""
    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, min(int(n_ranks), cores))


class SharedBlock:
    """One shared-memory segment viewed as a numpy array.

    The parent creates blocks (``SharedBlock(shape, dtype)``); workers attach
    by name (:meth:`attach`).  ``close`` drops the numpy view before closing
    the mapping (numpy holds a buffer export, so the view must die first) and
    only the parent ever unlinks.
    """

    def __init__(self, shape: Tuple[int, ...], dtype: np.dtype, *,
                 _shm: Optional[shared_memory.SharedMemory] = None):
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if _shm is None:
            # A zero-row exchange still needs a valid (1-byte) segment.
            self.shm = shared_memory.SharedMemory(create=True,
                                                  size=max(1, nbytes))
            self.owner = True
        else:
            self.shm = _shm
            self.owner = False
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.array: np.ndarray = np.ndarray(self.shape, dtype=dtype,
                                            buffer=self.shm.buf)
        if self.owner:
            self.array.fill(0)

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self.shm.name

    @classmethod
    def attach(cls, name: str, shape: Tuple[int, ...],
               dtype: np.dtype) -> "SharedBlock":  # pragma: no cover - forked child
        # Forked workers share the parent's resource tracker, whose cache is
        # a per-name set — the attach-side registration is an idempotent
        # no-op there, and the parent's unlink clears the one entry.  (Do NOT
        # "fix" bpo-39959 by unregistering here: that would remove the
        # parent's entry and make the parent's unlink trip the tracker.)
        return cls(shape, dtype, _shm=shared_memory.SharedMemory(name=name))

    def close(self) -> None:
        """Release this process's mapping (and the segment, if owner)."""
        if self.array is None:
            return
        self.array = None
        self.shm.close()
        if self.owner:
            self.shm.unlink()


@dataclass
class _PhaseBlocks:
    """Parent-side shared segments of one phase."""

    gather: SharedBlock
    scatter: SharedBlock
    wire_perm: SharedBlock
    wire: SharedBlock
    gather_bounds: np.ndarray  # (n_workers + 1,) worker segment offsets
    scatter_bounds: np.ndarray

    def blocks(self) -> List[SharedBlock]:
        return [self.gather, self.scatter, self.wire_perm, self.wire]


@dataclass
class SharedProgram:
    """Parent-side shared-memory image of one registered world exchange.

    ``work.array`` is the parent's view of the world work array — the engine
    loads owned values into it before a round and fancy-index-copies results
    out after, so callers only ever see private copies.
    """

    work: SharedBlock
    phases: Dict[object, _PhaseBlocks]
    steps: Tuple[Tuple[str, object], ...]

    def close(self) -> None:
        for phase_blocks in self.phases.values():
            for block in phase_blocks.blocks():
                block.close()
        self.work.close()

    def descriptor(self, handle: int) -> dict:
        """Picklable registration message a worker rebuilds its views from."""
        return {
            "handle": handle,
            "work": (self.work.name, self.work.shape, self.work.dtype.str),
            "steps": [(kind, phase) for kind, phase in self.steps],
            "phases": {
                phase: {
                    "gather": (pb.gather.name, pb.gather.shape),
                    "scatter": (pb.scatter.name, pb.scatter.shape),
                    "wire_perm": (pb.wire_perm.name, pb.wire_perm.shape),
                    "wire": (pb.wire.name, pb.wire.shape,
                             pb.wire.dtype.str),
                    "gather_bounds": pb.gather_bounds.tolist(),
                    "scatter_bounds": pb.scatter_bounds.tolist(),
                }
                for phase, pb in self.phases.items()
            },
        }


def share_program(world, n_workers: int) -> SharedProgram:
    """Build the shared-memory image of a compiled world exchange.

    Slab boundaries come from the per-rank row blocks: the ranks are split
    evenly across the workers, and each phase's per-worker gather/scatter
    segments are read off the program's rank offsets.
    """
    spec = world.spec
    work = SharedBlock((world.n_world_rows, spec.item_size), spec.dtype)
    rank_bounds = partition_evenly(world.n_ranks, n_workers)
    phases: Dict[object, _PhaseBlocks] = {}
    for phase, program in world.programs.items():
        gather = SharedBlock((program.gather.size,), INDEX_DTYPE)
        gather.array[:] = program.gather
        scatter = SharedBlock((program.scatter.size,), INDEX_DTYPE)
        scatter.array[:] = program.scatter
        wire_perm = SharedBlock((program.wire_perm.size,), INDEX_DTYPE)
        wire_perm.array[:] = program.wire_perm
        wire = SharedBlock((program.gather.size, spec.item_size), spec.dtype)
        phases[phase] = _PhaseBlocks(
            gather=gather, scatter=scatter, wire_perm=wire_perm, wire=wire,
            gather_bounds=program.gather_rank_offsets[rank_bounds],
            scatter_bounds=program.scatter_rank_offsets[rank_bounds],
        )
    return SharedProgram(work=work, phases=phases, steps=tuple(world.steps))


# -- the worker side ---------------------------------------------------------------


def _attach_program(descriptor: dict) -> dict:  # pragma: no cover - forked child
    """Rebuild a worker's views of a registered program from its descriptor."""
    work_name, work_shape, work_dtype = descriptor["work"]
    views = {
        "work": SharedBlock.attach(work_name, tuple(work_shape),
                                   np.dtype(work_dtype)),
        "steps": descriptor["steps"],
        "phases": {},
    }
    for phase, meta in descriptor["phases"].items():
        wire_name, wire_shape, wire_dtype = meta["wire"]
        views["phases"][phase] = {
            "gather": SharedBlock.attach(*meta["gather"], INDEX_DTYPE),
            "scatter": SharedBlock.attach(*meta["scatter"], INDEX_DTYPE),
            "wire_perm": SharedBlock.attach(*meta["wire_perm"], INDEX_DTYPE),
            "wire": SharedBlock.attach(wire_name, tuple(wire_shape),
                                       np.dtype(wire_dtype)),
            "gather_bounds": meta["gather_bounds"],
            "scatter_bounds": meta["scatter_bounds"],
        }
    return views


def _run_round(program: dict, worker_id: int, barrier) -> None:  # pragma: no cover
    """Execute one exchange round's steps for this worker's slab."""
    from repro.collectives.kernels import active_backend

    kernels = active_backend()
    work = program["work"].array
    for kind, phase in program["steps"]:
        views = program["phases"][phase]
        if kind == "send":
            lo = views["gather_bounds"][worker_id]
            hi = views["gather_bounds"][worker_id + 1]
            if hi > lo:
                kernels.gather(work, views["gather"].array[lo:hi],
                               views["wire"].array[lo:hi])
        else:
            lo = views["scatter_bounds"][worker_id]
            hi = views["scatter_bounds"][worker_id + 1]
            if hi > lo:
                wire = views["wire"].array
                perm = views["wire_perm"].array[lo:hi]
                kernels.scatter(work, views["scatter"].array[lo:hi],
                                wire[perm])
        barrier.wait()


def _worker_main(worker_id: int, conn: Connection,
                 barrier) -> None:  # pragma: no cover - forked child
    """Worker loop: register programs, run rounds, exit on close."""
    import threading

    programs: Dict[int, dict] = {}
    try:
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "close":
                break
            try:
                if kind == "register":
                    descriptor = command[1]
                    programs[descriptor["handle"]] = \
                        _attach_program(descriptor)
                elif kind == "run":
                    _run_round(programs[command[1]], worker_id, barrier)
                conn.send((worker_id, None))
            except threading.BrokenBarrierError:
                conn.send((worker_id, "barrier broken by a peer worker"))
            except Exception as exc:
                barrier.abort()
                conn.send((worker_id, f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        for program in programs.values():
            for views in program["phases"].values():
                for key in ("gather", "scatter", "wire_perm", "wire"):
                    views[key].close()
            program["work"].close()
        conn.close()


# -- the parent side ---------------------------------------------------------------


@dataclass
class ProcsPool:
    """A persistent pool of slab workers plus their shared programs.

    One pool per ``runtime="procs"`` engine.  The workers are forked lazily at
    the first :meth:`register` (so an engine that never registers anything
    never forks) and live until :meth:`close`.
    """

    n_workers: int
    _processes: List[mp.Process] = field(default_factory=list)
    _connections: List[Connection] = field(default_factory=list)
    _barrier: Optional[object] = None
    _programs: List[SharedProgram] = field(default_factory=list)
    _closed: bool = False

    @property
    def started(self) -> bool:
        """Whether the workers have been forked yet."""
        return bool(self._processes)

    def _ensure_started(self) -> None:
        if self._processes or self._closed:
            return
        # Start the parent's resource tracker BEFORE forking, so every worker
        # inherits it and their shared-memory attaches register with the one
        # tracker the parent's unlink later clears.  Forking first would leave
        # each child to spawn a private tracker whose cache nobody clears —
        # "leaked shared_memory objects" warnings at interpreter shutdown.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        context = mp.get_context("fork")
        self._barrier = context.Barrier(self.n_workers)
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(worker_id, child_conn, self._barrier),
                daemon=True,
                name=f"repro-exchange-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._connections.append(parent_conn)

    def _collect(self, what: str) -> None:
        """Wait for every worker's acknowledgement; surface the first error."""
        errors: List[str] = []
        for worker_id, conn in enumerate(self._connections):
            if not conn.poll(_WORKER_TIMEOUT):
                raise CommunicationError(
                    f"procs worker {worker_id} did not answer a {what} "
                    f"command within {_WORKER_TIMEOUT:.0f}s"
                )
            _, error = conn.recv()
            if error is not None:
                errors.append(f"worker {worker_id}: {error}")
        if errors:
            self._barrier.reset()
            raise CommunicationError(
                f"procs {what} failed: " + "; ".join(errors)
            )

    def register(self, world) -> SharedProgram:
        """Share a compiled world exchange and hand it to every worker."""
        if self._closed:
            raise CommunicationError("exchange engine is closed")
        self._ensure_started()
        program = share_program(world, self.n_workers)
        self._programs.append(program)
        descriptor = program.descriptor(len(self._programs) - 1)
        for conn in self._connections:
            conn.send(("register", descriptor))
        self._collect("register")
        return program

    def run(self, handle: int) -> None:
        """Execute one exchange round across all workers (blocking)."""
        if self._closed:
            raise CommunicationError("exchange engine is closed")
        for conn in self._connections:
            conn.send(("run", handle))
        self._collect("run")

    def close(self) -> None:
        """Shut the workers down and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=10.0)
            process.close()
        for conn in self._connections:
            conn.close()
        self._processes.clear()
        self._connections.clear()
        for program in self._programs:
            program.close()
        self._programs.clear()
