"""Shared-memory multiprocessing runtime for the world-stepped engine.

The serial :class:`~repro.simmpi.engine.ExchangeEngine` executes a registered
world exchange as O(phases) numpy calls — fast, but on one core.  This module
provides the ``runtime="procs"`` backend: the world work array, the per-phase
gather / scatter / wire-permutation index arrays, and the per-phase wire
arenas are placed in :mod:`multiprocessing.shared_memory` segments at
registration, and a persistent pool of worker processes (forked once per
engine, lazily at the first registration) executes every phase in parallel.

**Slab ownership.**  ``compile_world_exchange`` lays the world work array out
as contiguous per-rank row blocks and concatenates each phase's gather and
scatter indices in the same rank order, so a contiguous range of ranks owns a
contiguous, disjoint segment of every per-phase array.  The pool partitions
the ranks evenly across its workers (``partition_evenly`` over
``world.n_ranks``); worker ``w`` owns the row slab of its rank range and, per
phase, the matching ``gather_rank_offsets`` / ``scatter_rank_offsets``
segments.  A rank's gather and scatter indices only ever address its own row
block, so all of a worker's *work-array* reads and writes stay inside its own
slab; the only cross-slab traffic is the wire.

**Phase-barrier protocol.**  Each step of the schedule runs as one parallel
stanza:

* ``("send", phase)`` — worker ``w`` packs its slab's slice of the wire:
  ``wire[a:b] = work[gather[a:b]]`` (slab-local reads, disjoint wire writes);
* ``("recv", phase)`` — worker ``w`` delivers into its slab:
  ``work[scatter[a:b]] = wire[wire_perm[a:b]]`` — the wire permutation is
  where values cross slab boundaries, as actual shared-memory traffic;
* a :class:`multiprocessing.Barrier` between consecutive steps orders every
  wire write before any wire read (and every delivery before the next pack).

The parent loads owned values into the shared work array before dispatching
and copies results out after all workers report done, so no shared-memory
view ever escapes to the caller.  Message accounting (the profiler) stays in
the parent, exactly as on the serial path.

**Supervision.**  The parent collects acknowledgements with one
``multiprocessing.connection.wait`` over every command pipe *and* every
process sentinel, so a worker that dies mid-round (OOM kill, segfault,
``os._exit``) is diagnosed the moment its sentinel fires — not after a
per-worker poll timeout.  Failures are classified: a dead, wedged, or
wire-corrupted worker raises :class:`~repro.utils.errors.WorkerError`
carrying structured :class:`~repro.utils.errors.WorkerCrash` records
(retryable infrastructure fault); an exception *inside* a worker's program
raises plain :class:`~repro.utils.errors.CommunicationError` (deterministic
bug — retrying would only repeat it).  The ack timeout is configurable
(``timeout=`` here and on the engine, ``REPRO_WORKER_TIMEOUT`` in the
environment).

**Recovery.**  On a :class:`WorkerError` the pool tears the broken workers
down (aborting the barrier so survivors blocked in ``Barrier.wait`` exit
cleanly), respawns the pool, re-registers every retained
:class:`SharedProgram` from the parent-side segments, and re-dispatches the
failed command — up to ``max_retries`` times with exponential backoff.  The
parent reloads owned rows before each round and workers only ever write
scatter destinations and wire rows, all fully rewritten in schedule order,
so a half-written round is safely discarded and the retried result is
byte-identical to the serial engine.  Every decision lands in ``events`` as
a structured :class:`RecoveryEvent` (the decision-trace idiom).  Fault
injection for all of this is deterministic:
:class:`~repro.simmpi.faults.FaultPlan` (``REPRO_FAULTS``).

Lifecycle: workers are daemonic ``fork`` children driven over per-worker
pipes; :meth:`ProcsPool.close` shuts them down and unlinks every segment
deterministically (``ExchangeEngine.close`` / context-manager exit calls it,
with a ``weakref.finalize`` backstop for engines that are simply dropped).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simmpi.faults import CORRUPT_WIRE_BYTES, FaultPlan, FaultSpec, fire
from repro.utils.arrays import INDEX_DTYPE, partition_evenly
from repro.utils.errors import (
    CommunicationError,
    ValidationError,
    WorkerCrash,
    WorkerError,
)

#: Environment variable overriding the default worker-acknowledgement timeout.
TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"

#: How long the parent waits for a worker to finish one exchange round or
#: acknowledge a command before declaring the pool wedged (default; see
#: ``REPRO_WORKER_TIMEOUT`` and the ``timeout=`` keywords).
_WORKER_TIMEOUT = 120.0

#: After the first failure is detected, how long the parent keeps draining
#: the surviving workers' pending acknowledgements (they unblock as soon as
#: the barrier is aborted) so a recovered pool never reads a stale ack.
_DRAIN_GRACE = 5.0


def default_worker_timeout() -> float:
    """The ack timeout a ``timeout=None`` caller gets: ``REPRO_WORKER_TIMEOUT``
    when set (must be a positive number of seconds), 120 s otherwise."""
    text = os.environ.get(TIMEOUT_ENV, "").strip()
    if not text:
        return _WORKER_TIMEOUT
    try:
        value = float(text)
    except ValueError:
        raise ValidationError(
            f"{TIMEOUT_ENV} must be a number of seconds, got {text!r}"
        ) from None
    if value <= 0:
        raise ValidationError(
            f"{TIMEOUT_ENV} must be positive, got {value}"
        )
    return value


def default_worker_count(n_ranks: int) -> int:
    """Worker-pool size when the caller does not choose: one per core, capped
    by the rank count (a worker owns at least one rank's slab)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, min(int(n_ranks), cores))


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervision decision, recorded in the pool/engine event trace.

    ``action`` names what was decided (``"retry"`` — respawn and re-dispatch;
    ``"give-up"`` — retries exhausted, error propagated; ``"fallback"`` —
    engine finished the round on the single-process path); ``command`` is
    what failed (``"run"`` or ``"register"``), ``attempt`` the 0-based
    delivery attempt that failed, ``crashes`` the structured per-worker
    diagnoses, and ``chosen`` the human-readable decision line.
    """

    action: str
    command: str
    attempt: int
    chosen: str
    crashes: Tuple[WorkerCrash, ...] = ()

    def describe(self) -> str:
        """One trace line: what failed, what was chosen."""
        failed = "; ".join(crash.describe() for crash in self.crashes) \
            or "no worker diagnosis"
        return (f"[{self.action}] {self.command} attempt {self.attempt} "
                f"failed ({failed}) -> {self.chosen}")


class SharedBlock:
    """One shared-memory segment viewed as a numpy array.

    The parent creates blocks (``SharedBlock(shape, dtype)``); workers attach
    by name (:meth:`attach`).  ``close`` drops the numpy view before closing
    the mapping (numpy holds a buffer export, so the view must die first) and
    only the parent ever unlinks.
    """

    def __init__(self, shape: Tuple[int, ...], dtype: np.dtype, *,
                 _shm: Optional[shared_memory.SharedMemory] = None):
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if _shm is None:
            # A zero-row exchange still needs a valid (1-byte) segment.
            self.shm = shared_memory.SharedMemory(create=True,
                                                  size=max(1, nbytes))
            self.owner = True
        else:
            self.shm = _shm
            self.owner = False
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.array: np.ndarray = np.ndarray(self.shape, dtype=dtype,
                                            buffer=self.shm.buf)
        if self.owner:
            self.array.fill(0)

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self.shm.name

    @classmethod
    def attach(cls, name: str, shape: Tuple[int, ...],
               dtype: np.dtype) -> "SharedBlock":  # pragma: no cover - forked child
        # Forked workers share the parent's resource tracker, whose cache is
        # a per-name set — the attach-side registration is an idempotent
        # no-op there, and the parent's unlink clears the one entry.  (Do NOT
        # "fix" bpo-39959 by unregistering here: that would remove the
        # parent's entry and make the parent's unlink trip the tracker.)
        return cls(shape, dtype, _shm=shared_memory.SharedMemory(name=name))

    def close(self) -> None:
        """Release this process's mapping (and the segment, if owner)."""
        if self.array is None:
            return
        self.array = None
        self.shm.close()
        if self.owner:
            self.shm.unlink()


@dataclass
class _PhaseBlocks:
    """Parent-side shared segments of one phase."""

    gather: SharedBlock
    scatter: SharedBlock
    wire_perm: SharedBlock
    wire: SharedBlock
    gather_bounds: np.ndarray  # (n_workers + 1,) worker segment offsets
    scatter_bounds: np.ndarray

    def blocks(self) -> List[SharedBlock]:
        return [self.gather, self.scatter, self.wire_perm, self.wire]


@dataclass
class SharedProgram:
    """Parent-side shared-memory image of one registered world exchange.

    ``work.array`` is the parent's view of the world work array — the engine
    loads owned values into it before a round and fancy-index-copies results
    out after, so callers only ever see private copies.  The segments outlive
    any one worker generation: after a crash the respawned pool re-attaches
    to exactly these blocks (:meth:`ProcsPool._respawn`).
    """

    work: SharedBlock
    phases: Dict[object, _PhaseBlocks]
    steps: Tuple[Tuple[str, object], ...]

    def close(self) -> None:
        for phase_blocks in self.phases.values():
            for block in phase_blocks.blocks():
                block.close()
        self.work.close()

    def descriptor(self, handle: int) -> dict:
        """Picklable registration message a worker rebuilds its views from."""
        return {
            "handle": handle,
            "work": (self.work.name, self.work.shape, self.work.dtype.str),
            "steps": [(kind, phase) for kind, phase in self.steps],
            "phases": {
                phase: {
                    "gather": (pb.gather.name, pb.gather.shape),
                    "scatter": (pb.scatter.name, pb.scatter.shape),
                    "wire_perm": (pb.wire_perm.name, pb.wire_perm.shape),
                    "wire": (pb.wire.name, pb.wire.shape,
                             pb.wire.dtype.str),
                    "gather_bounds": pb.gather_bounds.tolist(),
                    "scatter_bounds": pb.scatter_bounds.tolist(),
                }
                for phase, pb in self.phases.items()
            },
        }


def share_program(world, n_workers: int) -> SharedProgram:
    """Build the shared-memory image of a compiled world exchange.

    Slab boundaries come from the per-rank row blocks: the ranks are split
    evenly across the workers, and each phase's per-worker gather/scatter
    segments are read off the program's rank offsets.
    """
    spec = world.spec
    work = SharedBlock((world.n_world_rows, spec.item_size), spec.dtype)
    rank_bounds = partition_evenly(world.n_ranks, n_workers)
    phases: Dict[object, _PhaseBlocks] = {}
    for phase, program in world.programs.items():
        gather = SharedBlock((program.gather.size,), INDEX_DTYPE)
        gather.array[:] = program.gather
        scatter = SharedBlock((program.scatter.size,), INDEX_DTYPE)
        scatter.array[:] = program.scatter
        wire_perm = SharedBlock((program.wire_perm.size,), INDEX_DTYPE)
        wire_perm.array[:] = program.wire_perm
        wire = SharedBlock((program.gather.size, spec.item_size), spec.dtype)
        phases[phase] = _PhaseBlocks(
            gather=gather, scatter=scatter, wire_perm=wire_perm, wire=wire,
            gather_bounds=program.gather_rank_offsets[rank_bounds],
            scatter_bounds=program.scatter_rank_offsets[rank_bounds],
        )
    return SharedProgram(work=work, phases=phases, steps=tuple(world.steps))


# -- the worker side ---------------------------------------------------------------


def _attach_program(descriptor: dict) -> dict:  # pragma: no cover - forked child
    """Rebuild a worker's views of a registered program from its descriptor."""
    work_name, work_shape, work_dtype = descriptor["work"]
    views = {
        "work": SharedBlock.attach(work_name, tuple(work_shape),
                                   np.dtype(work_dtype)),
        "steps": descriptor["steps"],
        "phases": {},
    }
    for phase, meta in descriptor["phases"].items():
        wire_name, wire_shape, wire_dtype = meta["wire"]
        views["phases"][phase] = {
            "gather": SharedBlock.attach(*meta["gather"], INDEX_DTYPE),
            "scatter": SharedBlock.attach(*meta["scatter"], INDEX_DTYPE),
            "wire_perm": SharedBlock.attach(*meta["wire_perm"], INDEX_DTYPE),
            "wire": SharedBlock.attach(wire_name, tuple(wire_shape),
                                       np.dtype(wire_dtype)),
            "gather_bounds": meta["gather_bounds"],
            "scatter_bounds": meta["scatter_bounds"],
        }
    return views


def _run_round(program: dict, worker_id: int, barrier,
               conn, fault: Optional[FaultSpec]) -> None:  # pragma: no cover
    """Execute one exchange round's steps for this worker's slab.

    ``fault`` (chaos testing only) fires at the first step whose kind matches
    the spec's phase — *inside* the round, peers already committed to their
    barrier waits, exactly where a real OOM kill or wedge lands.
    """
    from repro.collectives.kernels import active_backend

    kernels = active_backend()
    work = program["work"].array
    for kind, phase in program["steps"]:
        if fault is not None and fault.phase == kind:
            fire(fault, conn)
            fault = None  # a "hang" fault eventually returns; fire once
        views = program["phases"][phase]
        if kind == "send":
            lo = views["gather_bounds"][worker_id]
            hi = views["gather_bounds"][worker_id + 1]
            if hi > lo:
                kernels.gather(work, views["gather"].array[lo:hi],
                               views["wire"].array[lo:hi])
        else:
            lo = views["scatter_bounds"][worker_id]
            hi = views["scatter_bounds"][worker_id + 1]
            if hi > lo:
                wire = views["wire"].array
                perm = views["wire_perm"].array[lo:hi]
                kernels.scatter(work, views["scatter"].array[lo:hi],
                                wire[perm])
        barrier.wait()


def _safe_send(conn: Connection, payload) -> bool:  # pragma: no cover - forked child
    """Send an acknowledgement, tolerating a parent that is already gone.

    A worker whose parent died (or closed the pipe) must exit its loop
    instead of raising into a retry spin — the orphan-hygiene guarantee.
    """
    try:
        conn.send(payload)
        return True
    except (BrokenPipeError, OSError):
        return False


def _worker_main(worker_id: int, conn: Connection, barrier,
                 fault_plan: Optional[FaultPlan]) -> None:  # pragma: no cover - forked child
    """Worker loop: register programs, run rounds, exit on close.

    Every command carries the delivery coordinate (round/handle, attempt)
    the fault plan is consulted with; a healthy run never pays more than a
    ``None`` check.
    """
    import threading

    programs: Dict[int, dict] = {}
    try:
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "close":
                break
            corrupt_ack = False
            try:
                if kind == "register":
                    descriptor, attempt = command[1], command[2]
                    fault = fault_plan.match(
                        phases=("register",), round=descriptor["handle"],
                        worker=worker_id, attempt=attempt,
                    ) if fault_plan else None
                    if fault is not None:
                        if fault.kind == "corrupt":
                            corrupt_ack = True
                        else:
                            fire(fault, conn)
                    programs[descriptor["handle"]] = \
                        _attach_program(descriptor)
                elif kind == "run":
                    handle, round_index, attempt = command[1:4]
                    fault = fault_plan.match(
                        phases=("send", "recv"), round=round_index,
                        worker=worker_id, attempt=attempt,
                    ) if fault_plan else None
                    if fault is not None and fault.kind == "corrupt":
                        corrupt_ack, fault = True, None
                    _run_round(programs[handle], worker_id, barrier, conn,
                               fault)
                if corrupt_ack:
                    conn.send_bytes(CORRUPT_WIRE_BYTES)
                elif not _safe_send(conn, (worker_id, None)):
                    break
            except threading.BrokenBarrierError:
                if not _safe_send(conn, (worker_id,
                                         "barrier broken by a peer worker")):
                    break
            except Exception as exc:
                barrier.abort()
                if not _safe_send(conn, (worker_id,
                                         f"{type(exc).__name__}: {exc}")):
                    break
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        for program in programs.values():
            for views in program["phases"].values():
                for key in ("gather", "scatter", "wire_perm", "wire"):
                    views[key].close()
            program["work"].close()
        try:
            conn.close()
        except OSError:
            pass


# -- the parent side ---------------------------------------------------------------


@dataclass
class ProcsPool:
    """A persistent, supervised pool of slab workers plus their shared programs.

    One pool per ``runtime="procs"`` engine.  The workers are forked lazily at
    the first :meth:`register` (so an engine that never registers anything
    never forks) and live until :meth:`close` — or until one of them dies,
    in which case the pool respawns them and retries (``max_retries`` times,
    exponential ``retry_backoff`` between attempts) before letting the
    :class:`~repro.utils.errors.WorkerError` escape to the engine's
    ``on_failure`` policy.  ``events`` accumulates one
    :class:`RecoveryEvent` per supervision decision.
    """

    n_workers: int
    timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    fault_plan: Optional[FaultPlan] = None
    events: Optional[List[RecoveryEvent]] = None
    _processes: List[mp.Process] = field(default_factory=list)
    _connections: List[Connection] = field(default_factory=list)
    _barrier: Optional[object] = None
    _programs: List[SharedProgram] = field(default_factory=list)
    _round: int = 0
    _broken: bool = False
    _closed: bool = False

    def __post_init__(self) -> None:
        if self.timeout is None:
            self.timeout = default_worker_timeout()
        self.timeout = float(self.timeout)
        if self.timeout <= 0:
            raise ValidationError(
                f"worker timeout must be positive, got {self.timeout}"
            )
        if int(self.max_retries) < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        self.max_retries = int(self.max_retries)
        if self.fault_plan is None:
            self.fault_plan = FaultPlan.from_environment()
        if self.events is None:
            self.events = []

    @property
    def started(self) -> bool:
        """Whether the workers have been forked yet."""
        return bool(self._processes)

    def _ensure_started(self) -> None:
        if self._processes or self._closed:
            return
        # Start the parent's resource tracker BEFORE forking, so every worker
        # inherits it and their shared-memory attaches register with the one
        # tracker the parent's unlink later clears.  Forking first would leave
        # each child to spawn a private tracker whose cache nobody clears —
        # "leaked shared_memory objects" warnings at interpreter shutdown.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        context = mp.get_context("fork")
        self._barrier = context.Barrier(self.n_workers)
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(worker_id, child_conn, self._barrier, self.fault_plan),
                daemon=True,
                name=f"repro-exchange-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._connections.append(parent_conn)
        self._broken = False

    # -- supervision ---------------------------------------------------------------

    def _abort_barrier(self) -> None:
        """Wake every worker blocked in ``Barrier.wait`` (idempotent)."""
        if self._barrier is not None:
            self._barrier.abort()

    def _crash(self, worker_id: int, what: str, detail: str) -> WorkerCrash:
        process = self._processes[worker_id]
        process.join(timeout=0.2)  # reap, and settle the exit code
        return WorkerCrash(worker_id=worker_id, exitcode=process.exitcode,
                           command=what, detail=detail)

    def _collect(self, what: str) -> None:
        """Wait for every worker's acknowledgement; diagnose failures.

        One ``connection.wait`` over all command pipes *and* process
        sentinels: a dead worker surfaces the instant its sentinel fires.
        After the first failure the barrier is aborted (unblocking peers
        committed to ``Barrier.wait``) and the survivors' pending acks are
        drained for a short grace period, so a pool that outlives the error
        never reads a stale acknowledgement on its next command.
        """
        pending: Dict[int, Tuple[mp.Process, Connection]] = {
            worker_id: (process, conn)
            for worker_id, (process, conn)
            in enumerate(zip(self._processes, self._connections))
        }
        crashes: List[WorkerCrash] = []
        soft_errors: List[str] = []
        deadline = time.monotonic() + self.timeout
        drain_deadline: Optional[float] = None

        def start_draining() -> None:
            nonlocal drain_deadline
            if drain_deadline is None:
                self._abort_barrier()
                drain_deadline = time.monotonic() + min(self.timeout,
                                                        _DRAIN_GRACE)

        while pending:
            now = time.monotonic()
            limit = drain_deadline if drain_deadline is not None else deadline
            if now >= limit:
                if drain_deadline is not None:
                    # Grace exhausted: whoever still has not answered is
                    # genuinely wedged, not merely barrier-blocked.
                    for worker_id in sorted(pending):
                        crashes.append(self._crash(
                            worker_id, what,
                            f"no acknowledgement within the "
                            f"{min(self.timeout, _DRAIN_GRACE):.1f}s drain "
                            f"grace after the barrier was aborted"))
                    pending.clear()
                    break
                # Primary timeout: abort the barrier and give the workers
                # one short grace to distinguish wedged from barrier-blocked.
                start_draining()
                continue
            by_object = {}
            for worker_id, (process, conn) in pending.items():
                by_object[conn] = worker_id
                by_object[process.sentinel] = worker_id
            ready = mp_connection.wait(list(by_object), timeout=limit - now)
            for worker_id in sorted({by_object[obj] for obj in ready}):
                process, conn = pending[worker_id]
                # Prefer the pipe: a worker may have answered and *then*
                # died; its ack is still the truth about this command.
                if conn.poll(0):
                    try:
                        _, error = conn.recv()
                    except (EOFError, OSError):
                        crashes.append(self._crash(
                            worker_id, what,
                            "command pipe closed before acknowledgement"))
                    except Exception as exc:  # corrupted wire bytes
                        crashes.append(self._crash(
                            worker_id, what,
                            f"unreadable acknowledgement "
                            f"({type(exc).__name__}: {exc})"))
                    else:
                        if error is not None:
                            soft_errors.append(
                                f"worker {worker_id}: {error}")
                    del pending[worker_id]
                elif not process.is_alive():
                    crashes.append(self._crash(
                        worker_id, what, "worker process died"))
                    del pending[worker_id]
            if crashes or soft_errors:
                start_draining()

        if crashes:
            self._broken = True
            message = (f"procs {what} failed: "
                       + "; ".join(crash.describe() for crash in crashes))
            if soft_errors:
                message += " (peers: " + "; ".join(soft_errors) + ")"
            raise WorkerError(message, crashes=tuple(crashes))
        if soft_errors:
            # A program error inside a worker: deterministic, not retryable.
            # The barrier was aborted to unblock peers; restore it so the
            # pool stays usable for the caller's next (corrected) command.
            real = [error for error in soft_errors
                    if "barrier broken by a peer worker" not in error]
            self._barrier.reset()
            raise CommunicationError(
                f"procs {what} failed: " + "; ".join(real or soft_errors)
            )

    def _dispatch(self, command: tuple, what: str) -> None:
        """Send one command to every worker; a dead pipe is a crash."""
        crashes: List[WorkerCrash] = []
        for worker_id, conn in enumerate(self._connections):
            try:
                conn.send(command)
            except (BrokenPipeError, OSError):
                crashes.append(self._crash(
                    worker_id, what,
                    "command pipe broken before dispatch"))
        if crashes:
            self._broken = True
            self._abort_barrier()
            raise WorkerError(
                f"procs {what} dispatch failed: "
                + "; ".join(crash.describe() for crash in crashes),
                crashes=tuple(crashes))

    # -- recovery ------------------------------------------------------------------

    def _record(self, action: str, what: str, attempt: int, chosen: str,
                exc: WorkerError) -> None:
        self.events.append(RecoveryEvent(
            action=action, command=what, attempt=attempt, chosen=chosen,
            crashes=exc.crashes))

    def _teardown_workers(self, *, graceful: bool) -> None:
        """Stop the current worker generation, keeping the shared programs.

        Aborts the barrier *first* so a worker blocked in ``Barrier.wait``
        (its peer died mid-round) wakes up and reads the close command
        instead of deadlocking the join.
        """
        self._abort_barrier()
        if graceful:
            for conn in self._connections:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        join_timeout = 10.0 if graceful else 0.5
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=10.0)
            process.close()
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._processes.clear()
        self._connections.clear()
        self._barrier = None

    def _respawn(self, attempt: int) -> None:
        """Replace a broken worker generation and restore its state.

        Re-registers every retained :class:`SharedProgram` from the
        parent-side segments (which survive worker death) so the new workers
        see exactly the handles the old ones did.
        """
        self._teardown_workers(graceful=False)
        self._ensure_started()
        for handle, program in enumerate(self._programs):
            self._dispatch(("register", program.descriptor(handle), attempt),
                           "register")
            self._collect("register")

    def quarantine(self) -> None:
        """Stop the workers but keep every shared segment alive.

        The engine calls this before falling back to the single-process
        path: a wedged worker that later wakes must not scribble on the
        work array while the serial kernels are using it.  The pool stays
        un-closed so :meth:`close` still unlinks the segments.
        """
        if self._closed:
            return
        self._teardown_workers(graceful=False)
        self._broken = True

    def _retry_loop(self, what: str, dispatch) -> None:
        """Run ``dispatch()`` with supervised retry + backoff + respawn."""
        attempt = 0
        while True:
            try:
                if self._broken and self._programs:
                    self._respawn(attempt)
                    if what == "register":
                        # The respawn re-registered every retained program —
                        # including the one this call appended — so the
                        # failed registration is already redone.
                        return
                self._ensure_started()
                dispatch(attempt)
                return
            except WorkerError as exc:
                if attempt >= self.max_retries:
                    self._record(
                        "give-up", what, attempt,
                        f"retries exhausted after {attempt + 1} attempt(s); "
                        f"raising to the engine's on_failure policy", exc)
                    raise
                backoff = self.retry_backoff * (2 ** attempt)
                self._record(
                    "retry", what, attempt,
                    f"respawning {self.n_workers} worker(s) and retrying "
                    f"after {backoff:.2f}s backoff "
                    f"(attempt {attempt + 2}/{self.max_retries + 1})", exc)
                time.sleep(backoff)
                attempt += 1

    # -- commands ------------------------------------------------------------------

    def register(self, world) -> SharedProgram:
        """Share a compiled world exchange and hand it to every worker."""
        if self._closed:
            raise CommunicationError("exchange engine is closed")
        program = share_program(world, self.n_workers)
        self._programs.append(program)
        descriptor = program.descriptor(len(self._programs) - 1)

        def dispatch(attempt: int) -> None:
            self._dispatch(("register", descriptor, attempt), "register")
            self._collect("register")

        try:
            self._retry_loop("register", dispatch)
        except Exception:
            # Registration never took: drop the segments immediately rather
            # than carrying a half-registered program to the next respawn.
            self._programs.pop()
            program.close()
            raise
        return program

    def run(self, handle: int) -> None:
        """Execute one exchange round across all workers (blocking)."""
        if self._closed:
            raise CommunicationError("exchange engine is closed")
        round_index = self._round
        self._round += 1

        def dispatch(attempt: int) -> None:
            self._dispatch(("run", handle, round_index, attempt), "run")
            self._collect("run")

        self._retry_loop("run", dispatch)

    def close(self) -> None:
        """Shut the workers down and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        self._teardown_workers(graceful=True)
        for program in self._programs:
            program.close()
        self._programs.clear()
