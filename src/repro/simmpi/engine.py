"""The world-stepped exchange engine: batched columnar delivery for all ranks.

The envelope-routed runtime (:mod:`repro.simmpi.mailbox`) moves one Python
:class:`~repro.simmpi.mailbox.Envelope` per message — faithful to MPI
semantics, and the pinned reference — but a full exchange round costs
O(messages) Python work.  The :class:`ExchangeEngine` executes the same
exchange as a *world program*
(:class:`~repro.collectives.exchange.WorldExchange`): every rank's work array
becomes a block of one world work array, and a whole phase for the whole
communicator is one kernel call.

Two engine runtimes execute a registered program:

* ``runtime="engine"`` (default) — single-process, using the *fused*
  gather–permute–scatter kernels of :mod:`repro.collectives.kernels`: the
  send step only accounts traffic, and the receive step performs the whole
  phase as ``work[scatter] = work[gather[wire_perm]]`` — one indexed copy
  instead of the three fancy-index passes of the unfused form, byte-identical
  because every work row holds its ``(origin, item)`` key's one
  per-iteration value.  The kernel backend (numba parallel loops or pure
  numpy) is chosen at import time and overridable via
  ``REPRO_KERNELS=numba|numpy``.
* ``runtime="procs"`` — a persistent shared-memory worker pool
  (:mod:`repro.simmpi.procs`): work array, index arrays, and wire arenas live
  in ``multiprocessing.shared_memory``; each forked worker owns a contiguous
  slab of world rows and executes slab-local gathers plus cross-slab wire
  deliveries with a barrier between steps.

Both runtimes produce byte-identical results and identical profiler
data-path totals to the envelope-routed path; the per-envelope mailbox
remains in place for control-plane and object traffic (setup gathers,
barriers).  ``REPRO_RUNTIME=procs`` in the environment flips the default for
every engine in the process — how CI runs the whole tier-1 suite through the
worker pool.

Engines own external resources only under ``runtime="procs"`` (workers and
shared segments); :meth:`ExchangeEngine.close` — or using the engine as a
context manager — releases them deterministically on any runtime, with a
``weakref.finalize`` backstop for engines that are simply dropped.

The engine deliberately knows nothing about plans or patterns: it executes
whatever registered program it is handed, which keeps :mod:`repro.simmpi`
free of dependencies on :mod:`repro.collectives` (compilation lives there, in
:func:`~repro.collectives.exchange.compile_world_exchange`; the kernel import
happens lazily, inside the engine's methods, for the same reason).
"""

from __future__ import annotations

import os
import time
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.simmpi.profiler import TrafficProfiler
from repro.utils.errors import CommunicationError, ValidationError, WorkerError
from repro.utils.validation import check_value_preserving_cast

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.collectives.exchange import WorldExchange, WorldPhaseProgram
    from repro.simmpi.faults import FaultPlan
    from repro.simmpi.procs import ProcsPool, RecoveryEvent, SharedProgram

#: Per-iteration input: one dense array per rank, or one flat concatenation of
#: all ranks' owned values in rank order (the zero-copy fast path).
WorldValues = Union[Sequence[np.ndarray], np.ndarray]

#: Environment variable that flips the default runtime for every engine (and
#: for the ``runtime=`` keywords of the user surface) in the process.
RUNTIME_ENV = "REPRO_RUNTIME"

#: Environment variable that flips the default worker-failure policy for
#: every ``runtime="procs"`` engine (and the ``on_failure=`` keywords of the
#: user surface) in the process.
ON_FAILURE_ENV = "REPRO_ON_FAILURE"

#: Runtimes the engine itself executes.  ``"threads"`` is a *user-surface*
#: runtime (one simulated-rank thread per rank on the envelope-routed
#: mailbox) and never reaches the engine.
ENGINE_RUNTIMES = ("engine", "procs")

#: What a ``runtime="procs"`` engine does when a worker dies, hangs, or
#: corrupts its pipe: ``"retry"`` respawns the pool and retries (then
#: raises), ``"fallback"`` retries and — with retries exhausted — finishes
#: the round on the single-process fused-kernel path and stays serial,
#: ``"raise"`` fails fast with no retry.
ON_FAILURE_POLICIES = ("retry", "fallback", "raise")


def default_runtime(allowed: Sequence[str] = ("engine", "threads", "procs"),
                    ) -> str:
    """The runtime a ``runtime=None`` caller gets: ``REPRO_RUNTIME`` when it
    names an allowed runtime, ``"engine"`` otherwise."""
    value = os.environ.get(RUNTIME_ENV, "").strip().lower()
    return value if value in allowed else "engine"


def default_on_failure() -> str:
    """The policy an ``on_failure=None`` caller gets: ``REPRO_ON_FAILURE``
    when it names a known policy, ``"retry"`` otherwise."""
    value = os.environ.get(ON_FAILURE_ENV, "").strip().lower()
    return value if value in ON_FAILURE_POLICIES else "retry"


@dataclass
class _RegisteredProgram:
    """Engine-side state of one registered world exchange.

    ``fused_sources`` maps each phase to ``gather[wire_perm]`` — the work
    rows the fused receive step copies from, precomputed at registration.
    ``shared`` is the program's shared-memory image under ``runtime="procs"``
    (``work`` then aliases its work segment).
    """

    world: "WorldExchange"
    work: np.ndarray
    fused_sources: Dict[object, np.ndarray]
    shared: Optional["SharedProgram"] = None


class ExchangeEngine:
    """Executes registered world exchanges, one phase at a time for all ranks.

    One engine serves one world (communicator size); any number of world
    exchanges — e.g. one per AMG level — can be registered against it and
    executed repeatedly.  When a :class:`TrafficProfiler` is attached, every
    phase of every iteration is accounted through
    :meth:`TrafficProfiler.record_batch` with exactly the messages the
    envelope-routed path would have sent.

    ``runtime`` selects the execution backend (``"engine"`` fused
    single-process, ``"procs"`` shared-memory worker pool; ``None`` resolves
    through ``REPRO_RUNTIME``); ``n_workers`` sizes the procs pool (default:
    one per available core, capped by ``n_ranks``); ``kernels`` pins a
    specific kernel backend name or :class:`KernelBackend` for the fused
    path (default: the import-time selection).

    Worker failures on the procs backend are supervised: ``on_failure``
    picks the policy (``"retry"`` — respawn the pool and retry, then raise;
    ``"fallback"`` — retry, then finish the round on the single-process
    path and stay serial; ``"raise"`` — fail fast; ``None`` resolves
    through ``REPRO_ON_FAILURE``, default ``"retry"``), ``timeout`` bounds
    how long the parent waits for worker acknowledgements
    (``REPRO_WORKER_TIMEOUT``, default 120 s), ``max_retries`` /
    ``retry_backoff`` shape the retry schedule, and ``fault_plan`` injects
    deterministic chaos (:mod:`repro.simmpi.faults`, ``REPRO_FAULTS``).
    Every supervision decision is recorded in :attr:`events`.

    ``clock`` supplies the timestamps of the per-round timing hook
    (:meth:`set_run_observer`, used by the online autotuner); the default is
    ``time.perf_counter``, and injecting a deterministic clock makes timed
    runs bit-reproducible.  The clock is only consulted while an observer
    is attached — the plain data path never reads it.
    """

    def __init__(self, n_ranks: int, *, profiler: TrafficProfiler | None = None,
                 runtime: str | None = None, n_workers: int | None = None,
                 kernels=None, on_failure: str | None = None,
                 timeout: float | None = None, max_retries: int = 2,
                 retry_backoff: float = 0.05,
                 fault_plan: "FaultPlan | None" = None,
                 clock=None):
        if n_ranks <= 0:
            raise CommunicationError("an exchange engine needs at least one rank")
        if runtime is None:
            runtime = default_runtime(ENGINE_RUNTIMES)
        if runtime not in ENGINE_RUNTIMES:
            raise ValidationError(
                f"engine runtime must be one of {ENGINE_RUNTIMES}, "
                f"got {runtime!r}"
            )
        if on_failure is None:
            on_failure = default_on_failure()
        if on_failure not in ON_FAILURE_POLICIES:
            raise ValidationError(
                f"on_failure must be one of {ON_FAILURE_POLICIES}, "
                f"got {on_failure!r}"
            )
        self.n_ranks = int(n_ranks)
        self.profiler = profiler
        self.runtime = runtime
        self.on_failure = on_failure
        self._programs: List[_RegisteredProgram] = []
        self._closed = False
        self._pool: Optional["ProcsPool"] = None
        self._pool_failed = False
        self._events: List["RecoveryEvent"] = []
        self._finalizer = None
        self._clock = clock if clock is not None else time.perf_counter
        self._run_observer = None
        from repro.collectives.kernels import select_backend

        self._kernels = select_backend(kernels)
        if runtime == "procs":
            from repro.simmpi.procs import ProcsPool, default_worker_count

            if n_workers is not None and int(n_workers) < 1:
                raise ValidationError(
                    f"n_workers must be >= 1, got {n_workers}"
                )
            self._pool = ProcsPool(
                n_workers=int(n_workers) if n_workers is not None
                else default_worker_count(self.n_ranks),
                timeout=timeout,
                # "raise" means fail fast: the pool gets no retry budget.
                max_retries=0 if on_failure == "raise" else max_retries,
                retry_backoff=retry_backoff,
                fault_plan=fault_plan,
                events=self._events)
            # The backstop must not keep the engine alive, so it closes the
            # pool object directly (close() is idempotent).
            self._finalizer = weakref.finalize(self, ProcsPool.close,
                                               self._pool)

    # -- lifecycle ------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Workers executing each round (1 on the single-process runtime)."""
        return self._pool.n_workers if self._pool is not None else 1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the engine's resources."""
        return self._closed

    @property
    def events(self) -> List["RecoveryEvent"]:
        """The supervision decision trace: every retry, give-up, and fallback
        recorded as a structured :class:`~repro.simmpi.procs.RecoveryEvent`,
        in the order they were decided."""
        return list(self._events)

    @property
    def degraded(self) -> bool:
        """Whether the procs pool failed permanently and the engine now runs
        every round on the single-process fused-kernel path."""
        return self._pool_failed

    def close(self) -> None:
        """Release workers and shared-memory segments deterministically.

        Idempotent; a no-op beyond flagging on the single-process runtime
        (which owns no external resources).  A closed engine rejects further
        ``register`` and ``run`` calls.
        """
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.close()
        self._programs.clear()
        self._run_observer = None

    def __enter__(self) -> "ExchangeEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise CommunicationError("exchange engine is closed")

    # -- registration ---------------------------------------------------------

    def register(self, world: "WorldExchange") -> int:
        """Register a compiled world exchange; returns its engine handle.

        Mirrors ``neighbor_alltoallv_init``: registration allocates the
        persistent world work array (a shared-memory segment under
        ``runtime="procs"``) and precomputes each phase's fused source rows,
        so the per-iteration path performs no allocation-sized Python work
        beyond numpy's own temporaries.
        """
        self._check_open()
        if world.n_ranks > self.n_ranks:
            raise CommunicationError(
                "world exchange spans more ranks than the engine provides"
            )
        spec = world.spec
        fused_sources = {
            phase: np.ascontiguousarray(program.gather[program.wire_perm])
            for phase, program in world.programs.items()
        }
        shared = None
        if self._pool is not None and not self._pool_failed:
            try:
                shared = self._pool.register(world)
            except WorkerError as exc:
                if self.on_failure != "fallback":
                    raise
                self._fall_back("register", exc)
        if shared is not None:
            work = shared.work.array
        else:
            work = np.zeros((world.n_world_rows, spec.item_size),
                            dtype=spec.dtype)
        self._programs.append(_RegisteredProgram(
            world=world, work=work, fused_sources=fused_sources,
            shared=shared))
        return len(self._programs) - 1

    def _program(self, handle: int) -> _RegisteredProgram:
        if handle < 0 or handle >= len(self._programs):
            raise CommunicationError(f"unknown exchange handle {handle}")
        return self._programs[handle]

    # -- per-iteration execution ----------------------------------------------

    def set_run_observer(self, observer) -> None:
        """Attach (or with ``None`` detach) the per-round timing hook.

        While attached, every :meth:`run` is bracketed by two readings of
        the engine's clock and ``observer(handle, seconds)`` is called with
        the elapsed wall time of the round — retries, fallbacks, and serial
        completion included, which is exactly what an online autotuner must
        see.  One observer per engine; setting a new one replaces the old.
        """
        self._run_observer = observer

    def run(self, handle: int, values: WorldValues) -> List[np.ndarray]:
        """Execute one full exchange round for every rank (start + wait).

        ``values`` holds every rank's owned item values, either as a sequence
        of per-rank dense arrays (each in that rank's ``owned_item_ids``
        order) or as one flat array concatenating them in rank order.  Returns
        one dense array per rank, in that rank's ``recv_item_ids`` order —
        the same values ``PersistentNeighborCollective.wait`` hands each rank
        on the envelope-routed path.
        """
        observer = self._run_observer
        if observer is None:
            return self._execute(handle, values)
        start = self._clock()
        result = self._execute(handle, values)
        observer(handle, self._clock() - start)
        return result

    def _execute(self, handle: int, values: WorldValues) -> List[np.ndarray]:
        """One exchange round, untimed (the body :meth:`run` wraps)."""
        self._check_open()
        state = self._program(handle)
        world = state.world
        work = state.work
        work[world.owned_rows] = self._load_values(world, values)
        if state.shared is not None and not self._pool_failed:
            # The workers advance through the steps behind their barrier;
            # accounting stays here, one bulk record per send step, in the
            # same schedule order as the single-process path.
            try:
                self._pool.run(handle)
            except WorkerError as exc:
                if self.on_failure != "fallback":
                    raise
                # Finish *this* round serially: owned rows are still loaded,
                # workers only ever write scatter/wire rows, and the serial
                # schedule rewrites all of them in order — so the
                # half-written round is discarded byte-exactly.
                self._fall_back("run", exc)
                self._run_serial(state)
            else:
                for kind, phase in world.steps:
                    if kind == "send":
                        self._account(world.programs[phase])
        else:
            self._run_serial(state)
        flat = work[world.result_rows]
        if world.spec.item_size == 1:
            flat = flat.reshape(-1)
        return np.split(flat, world.result_offsets[1:-1])

    # -- helpers --------------------------------------------------------------

    def _run_serial(self, state: _RegisteredProgram) -> None:
        """One exchange round on the single-process fused-kernel path."""
        fused = self._kernels.fused
        work = state.work
        for kind, phase in state.world.steps:
            program = state.world.programs[phase]
            if kind == "send":
                self._account(program)
            elif program.scatter.size:
                fused(work, program.scatter, state.fused_sources[phase])

    def _fall_back(self, command: str, exc: WorkerError) -> None:
        """Degrade permanently to the single-process path after pool failure.

        Quarantines the pool (stopping any wedged worker that might later
        wake and scribble on the shared work arrays — the parent-side
        segments stay alive, so registered programs keep their work views)
        and records the decision in the event trace.  Every subsequent round
        of every registered program runs serially.
        """
        from repro.simmpi.procs import RecoveryEvent

        self._pool.quarantine()
        self._pool_failed = True
        self._events.append(RecoveryEvent(
            action="fallback", command=command,
            attempt=self._pool.max_retries,
            chosen=(f"retries exhausted; quarantined the "
                    f"{self._pool.n_workers}-worker pool and completed the "
                    f"{command} on the single-process fused-kernel path "
                    f"(engine stays serial from here on)"),
            crashes=exc.crashes))

    def _load_values(self, world: "WorldExchange",
                     values: WorldValues) -> np.ndarray:
        """Validate and concatenate the per-iteration input into owned rows."""
        spec = world.spec
        n_owned_total = int(world.owned_offsets[-1])
        if isinstance(values, np.ndarray):
            check_value_preserving_cast(values.dtype, spec.dtype)
            flat = values.astype(spec.dtype, copy=False)
            expected = (n_owned_total,) if spec.item_size == 1 \
                else (n_owned_total, spec.item_size)
            if flat.shape != expected and \
                    flat.shape != (n_owned_total, spec.item_size):
                raise ValidationError(
                    f"flat world input must have shape {expected}, "
                    f"got {flat.shape}"
                )
            return flat.reshape(n_owned_total, spec.item_size)
        if len(values) != world.n_ranks:
            raise ValidationError(
                f"expected one value array per rank ({world.n_ranks}), "
                f"got {len(values)}"
            )
        parts: List[np.ndarray] = []
        offsets = world.owned_offsets
        for rank, rank_values in enumerate(values):
            array = np.asarray(rank_values)
            check_value_preserving_cast(array.dtype, spec.dtype)
            array = array.astype(spec.dtype, copy=False)
            n_owned = int(offsets[rank + 1] - offsets[rank])
            expected = (n_owned,) if spec.item_size == 1 \
                else (n_owned, spec.item_size)
            if array.shape != expected and \
                    array.shape != (n_owned, spec.item_size):
                raise ValidationError(
                    f"rank {rank} owns {n_owned} items of size "
                    f"{spec.item_size}; values must have shape {expected}, "
                    f"got {array.shape}"
                )
            parts.append(array.reshape(n_owned, spec.item_size))
        if not parts:
            return np.empty((0, spec.item_size), dtype=spec.dtype)
        return np.concatenate(parts)

    def _account(self, program: "WorldPhaseProgram") -> None:
        """Bulk-record the phase's messages with the attached profiler."""
        if self.profiler is None or program.msg_sources.size == 0:
            return
        self.profiler.record_batch(program.msg_sources, program.msg_dests,
                                   program.msg_nbytes, tag=program.tag)
