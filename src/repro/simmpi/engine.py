"""The world-stepped exchange engine: batched columnar delivery for all ranks.

The envelope-routed runtime (:mod:`repro.simmpi.mailbox`) moves one Python
:class:`~repro.simmpi.mailbox.Envelope` per message — faithful to MPI
semantics, and the pinned reference — but a full exchange round costs
O(messages) Python work.  The :class:`ExchangeEngine` executes the same
exchange as a *world program*
(:class:`~repro.collectives.exchange.WorldExchange`): every rank's work array
becomes a block of one world work array, and a whole phase for the whole
communicator is

* one fancy-index gather (``wire = work[gather]``, all ranks' send arenas),
* one bulk profiler record (byte/message counters for every message), and
* one permuted fancy-index scatter (``work[scatter] = wire[perm]``, all
  ranks' receive arenas),

so an exchange round is O(phases) numpy calls regardless of rank count.  The
engine produces byte-identical results and identical profiler data-path
totals to the envelope-routed path; the per-envelope mailbox remains in place
for control-plane and object traffic (setup gathers, barriers).

The engine deliberately knows nothing about plans or patterns: it executes
whatever registered program it is handed, which keeps :mod:`repro.simmpi`
free of dependencies on :mod:`repro.collectives` (compilation lives there, in
:func:`~repro.collectives.exchange.compile_world_exchange`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

import numpy as np

from repro.simmpi.profiler import TrafficProfiler
from repro.utils.errors import CommunicationError, ValidationError
from repro.utils.validation import check_value_preserving_cast

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.collectives.exchange import WorldExchange, WorldPhaseProgram

#: Per-iteration input: one dense array per rank, or one flat concatenation of
#: all ranks' owned values in rank order (the zero-copy fast path).
WorldValues = Union[Sequence[np.ndarray], np.ndarray]


@dataclass
class _RegisteredProgram:
    """Engine-side state of one registered world exchange."""

    world: "WorldExchange"
    work: np.ndarray
    wires: Dict[object, np.ndarray]


class ExchangeEngine:
    """Executes registered world exchanges, one phase at a time for all ranks.

    One engine serves one world (communicator size); any number of world
    exchanges — e.g. one per AMG level — can be registered against it and
    executed repeatedly.  When a :class:`TrafficProfiler` is attached, every
    phase of every iteration is accounted through
    :meth:`TrafficProfiler.record_batch` with exactly the messages the
    envelope-routed path would have sent.
    """

    def __init__(self, n_ranks: int, *, profiler: TrafficProfiler | None = None):
        if n_ranks <= 0:
            raise CommunicationError("an exchange engine needs at least one rank")
        self.n_ranks = int(n_ranks)
        self.profiler = profiler
        self._programs: List[_RegisteredProgram] = []

    # -- registration ---------------------------------------------------------

    def register(self, world: "WorldExchange") -> int:
        """Register a compiled world exchange; returns its engine handle.

        Mirrors ``neighbor_alltoallv_init``: registration allocates the
        persistent world work array and one wire arena per phase, so the
        per-iteration path performs no allocation-sized Python work beyond
        numpy's own temporaries.
        """
        if world.n_ranks > self.n_ranks:
            raise CommunicationError(
                "world exchange spans more ranks than the engine provides"
            )
        spec = world.spec
        work = np.zeros((world.n_world_rows, spec.item_size), dtype=spec.dtype)
        wires = {
            phase: np.empty((program.gather.size, spec.item_size),
                            dtype=spec.dtype)
            for phase, program in world.programs.items()
        }
        self._programs.append(_RegisteredProgram(world=world, work=work,
                                                 wires=wires))
        return len(self._programs) - 1

    def _program(self, handle: int) -> _RegisteredProgram:
        if handle < 0 or handle >= len(self._programs):
            raise CommunicationError(f"unknown exchange handle {handle}")
        return self._programs[handle]

    # -- per-iteration execution ----------------------------------------------

    def run(self, handle: int, values: WorldValues) -> List[np.ndarray]:
        """Execute one full exchange round for every rank (start + wait).

        ``values`` holds every rank's owned item values, either as a sequence
        of per-rank dense arrays (each in that rank's ``owned_item_ids``
        order) or as one flat array concatenating them in rank order.  Returns
        one dense array per rank, in that rank's ``recv_item_ids`` order —
        the same values ``PersistentNeighborCollective.wait`` hands each rank
        on the envelope-routed path.
        """
        state = self._program(handle)
        world = state.world
        work = state.work
        work[world.owned_rows] = self._load_values(world, values)
        for kind, phase in world.steps:
            program = world.programs[phase]
            if kind == "send":
                wire = state.wires[phase]
                if program.gather.size:
                    np.take(work, program.gather, axis=0, out=wire)
                self._account(program)
            else:
                if program.scatter.size:
                    work[program.scatter] = state.wires[phase][program.wire_perm]
        flat = work[world.result_rows]
        if world.spec.item_size == 1:
            flat = flat.reshape(-1)
        offsets = world.result_offsets
        return [flat[offsets[rank]:offsets[rank + 1]]
                for rank in range(world.n_ranks)]

    # -- helpers --------------------------------------------------------------

    def _load_values(self, world: "WorldExchange",
                     values: WorldValues) -> np.ndarray:
        """Validate and concatenate the per-iteration input into owned rows."""
        spec = world.spec
        n_owned_total = int(world.owned_offsets[-1])
        if isinstance(values, np.ndarray):
            check_value_preserving_cast(values.dtype, spec.dtype)
            flat = values.astype(spec.dtype, copy=False)
            expected = (n_owned_total,) if spec.item_size == 1 \
                else (n_owned_total, spec.item_size)
            if flat.shape != expected and \
                    flat.shape != (n_owned_total, spec.item_size):
                raise ValidationError(
                    f"flat world input must have shape {expected}, "
                    f"got {flat.shape}"
                )
            return flat.reshape(n_owned_total, spec.item_size)
        if len(values) != world.n_ranks:
            raise ValidationError(
                f"expected one value array per rank ({world.n_ranks}), "
                f"got {len(values)}"
            )
        parts: List[np.ndarray] = []
        offsets = world.owned_offsets
        for rank, rank_values in enumerate(values):
            array = np.asarray(rank_values)
            check_value_preserving_cast(array.dtype, spec.dtype)
            array = array.astype(spec.dtype, copy=False)
            n_owned = int(offsets[rank + 1] - offsets[rank])
            expected = (n_owned,) if spec.item_size == 1 \
                else (n_owned, spec.item_size)
            if array.shape != expected and \
                    array.shape != (n_owned, spec.item_size):
                raise ValidationError(
                    f"rank {rank} owns {n_owned} items of size "
                    f"{spec.item_size}; values must have shape {expected}, "
                    f"got {array.shape}"
                )
            parts.append(array.reshape(n_owned, spec.item_size))
        if not parts:
            return np.empty((0, spec.item_size), dtype=spec.dtype)
        return np.concatenate(parts)

    def _account(self, program: "WorldPhaseProgram") -> None:
        """Bulk-record the phase's messages with the attached profiler."""
        if self.profiler is None or program.msg_sources.size == 0:
            return
        self.profiler.record_batch(program.msg_sources, program.msg_dests,
                                   program.msg_nbytes, tag=program.tag)
