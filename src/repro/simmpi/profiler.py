"""Traffic profiling for the simulated runtime.

The profiler records every envelope a rank sends, classifies it by locality
(when given a :class:`~repro.topology.mapping.RankMapping`), and produces the
per-process and per-class statistics that the integration tests compare against
the pure planner's predictions — if the functional collectives and the planner
ever disagree about how many inter-region bytes move, something is wrong.

Traffic arrives through two doors:

* :meth:`TrafficProfiler.record_envelope` — the per-message callback the
  envelope-routed mailbox path installs on every :class:`SimComm`;
* :meth:`TrafficProfiler.record_batch` — the bulk counters the world-stepped
  :class:`~repro.simmpi.engine.ExchangeEngine` calls once per phase with
  column arrays describing *all* messages of the phase.

Both doors feed the same counters, and a batch of N messages is accounted
exactly like N envelope records (same filters, same locality classification),
so byte/message totals are identical between the two execution paths — that
equivalence is pinned by the engine's golden tests.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.simmpi.mailbox import Envelope
from repro.topology.machine import Locality
from repro.topology.mapping import RankMapping

#: Code order of the vectorized locality classification (``Locality`` values).
_LOCALITY_ORDER = (Locality.SELF, Locality.INTRA_SOCKET,
                   Locality.INTER_SOCKET, Locality.INTER_NODE)


@dataclass(frozen=True)
class TrafficRecord:
    """One observed message."""

    source: int
    dest: int
    tag: int
    nbytes: int
    locality: Optional[Locality]
    #: True for numpy data-path traffic, False for pickled setup-phase objects.
    is_array: bool = True


@dataclass(frozen=True)
class TrafficBatch:
    """Many observed messages of one bulk record (one engine phase).

    Column arrays are parallel: message ``i`` went ``sources[i] ->
    dests[i]`` carrying ``nbytes[i]`` bytes.  ``locality_codes`` holds the
    vectorized classification (``Locality`` integer values) or ``None`` when
    the profiler has no mapping.
    """

    sources: np.ndarray
    dests: np.ndarray
    nbytes: np.ndarray
    tag: int
    locality_codes: Optional[np.ndarray]
    is_array: bool = True

    @property
    def message_count(self) -> int:
        """Messages in the batch."""
        return int(self.sources.size)

    def expand(self) -> List[TrafficRecord]:
        """Materialise one :class:`TrafficRecord` per message (query-time only)."""
        localities: List[Optional[Locality]]
        if self.locality_codes is None:
            localities = [None] * self.message_count
        else:
            localities = [_LOCALITY_ORDER[code]
                          for code in self.locality_codes.tolist()]
        return [TrafficRecord(source=s, dest=d, tag=self.tag, nbytes=b,
                              locality=l, is_array=self.is_array)
                for s, d, b, l in zip(self.sources.tolist(), self.dests.tolist(),
                                      self.nbytes.tolist(), localities)]


_Entry = Union[TrafficRecord, TrafficBatch]


@dataclass
class TrafficSummary:
    """Aggregated counters for one locality class (or for all traffic)."""

    message_count: int = 0
    byte_count: int = 0

    def add(self, nbytes: int) -> None:
        self.message_count += 1
        self.byte_count += int(nbytes)

    def add_bulk(self, message_count: int, byte_count: int) -> None:
        """Account many messages at once (batch-record accumulation)."""
        self.message_count += int(message_count)
        self.byte_count += int(byte_count)


class TrafficProfiler:
    """Thread-safe collector of sent messages across a simulated world."""

    def __init__(self, mapping: RankMapping | None = None, *,
                 ignore_self_messages: bool = True,
                 ignore_object_messages: bool = True):
        self.mapping = mapping
        self.ignore_self_messages = ignore_self_messages
        #: When True (default), setup-phase control traffic — pickled objects
        #: and packed arrays on internal collective tags — is not recorded;
        #: only data-path buffer traffic counts.
        self.ignore_object_messages = ignore_object_messages
        self._lock = threading.Lock()
        self._entries: List[_Entry] = []

    # -- recording -----------------------------------------------------------

    def record_envelope(self, envelope: Envelope) -> None:
        """Callback installed on :class:`SimComm`; records one sent envelope."""
        is_array = not envelope.is_control
        if self.ignore_object_messages and not is_array:
            return
        if self.ignore_self_messages and envelope.source == envelope.dest:
            return
        locality = None
        if self.mapping is not None:
            locality = self.mapping.locality(envelope.source, envelope.dest)
        record = TrafficRecord(source=envelope.source, dest=envelope.dest,
                               tag=envelope.tag, nbytes=envelope.nbytes,
                               locality=locality, is_array=is_array)
        with self._lock:
            self._entries.append(record)

    def record_batch(self, sources: np.ndarray, dests: np.ndarray,
                     nbytes: np.ndarray, *, tag: int = 0,
                     is_array: bool = True) -> None:
        """Record many messages with one call (the engine's bulk counters).

        ``sources`` / ``dests`` / ``nbytes`` are parallel arrays, one entry
        per message.  The same filters as :meth:`record_envelope` apply —
        self-messages are dropped element-wise when ``ignore_self_messages``
        is set — and locality classification runs vectorized, so a phase of
        ten thousand messages costs one Python call, not ten thousand.
        """
        if self.ignore_object_messages and not is_array:
            return
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        if not (sources.shape == dests.shape == nbytes.shape):
            raise ValueError("record_batch columns must be parallel arrays")
        if self.ignore_self_messages:
            keep = sources != dests
            if not keep.all():
                sources, dests, nbytes = sources[keep], dests[keep], nbytes[keep]
        if sources.size == 0:
            return
        codes = None
        if self.mapping is not None:
            codes = self.mapping.locality_codes(sources, dests)
        batch = TrafficBatch(sources=sources, dests=dests, nbytes=nbytes,
                             tag=int(tag), locality_codes=codes,
                             is_array=is_array)
        with self._lock:
            self._entries.append(batch)

    def clear(self) -> None:
        """Drop all recorded traffic."""
        with self._lock:
            self._entries.clear()

    # -- queries --------------------------------------------------------------

    def _snapshot(self) -> List[_Entry]:
        with self._lock:
            return list(self._entries)

    @property
    def records(self) -> List[TrafficRecord]:
        """All recorded messages, batches expanded in recording order."""
        expanded: List[TrafficRecord] = []
        for entry in self._snapshot():
            if isinstance(entry, TrafficBatch):
                expanded.extend(entry.expand())
            else:
                expanded.append(entry)
        return expanded

    def total(self) -> TrafficSummary:
        """Counters over all recorded messages."""
        summary = TrafficSummary()
        for entry in self._snapshot():
            if isinstance(entry, TrafficBatch):
                summary.add_bulk(entry.message_count, int(entry.nbytes.sum()))
            else:
                summary.add(entry.nbytes)
        return summary

    def object_traffic(self) -> TrafficSummary:
        """Counters over setup-phase object messages (pickled-size estimates).

        Only non-empty when the profiler was built with
        ``ignore_object_messages=False``.
        """
        summary = TrafficSummary()
        for entry in self._snapshot():
            if entry.is_array:
                continue
            if isinstance(entry, TrafficBatch):
                summary.add_bulk(entry.message_count, int(entry.nbytes.sum()))
            else:
                summary.add(entry.nbytes)
        return summary

    def data_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All data-path traffic as ``(sources, dests, nbytes)`` column arrays.

        The bulk view observed-statistics consumers build on (one
        ``np.bincount`` away from per-rank byte counts); batches contribute
        their columns directly, per-envelope records are packed.
        """
        source_parts: List[np.ndarray] = []
        dest_parts: List[np.ndarray] = []
        nbyte_parts: List[np.ndarray] = []
        singles: List[Tuple[int, int, int]] = []
        for entry in self._snapshot():
            if not entry.is_array:
                continue
            if isinstance(entry, TrafficBatch):
                source_parts.append(entry.sources)
                dest_parts.append(entry.dests)
                nbyte_parts.append(entry.nbytes)
            else:
                singles.append((entry.source, entry.dest, entry.nbytes))
        if singles:
            columns = np.asarray(singles, dtype=np.int64).reshape(len(singles), 3)
            source_parts.append(columns[:, 0])
            dest_parts.append(columns[:, 1])
            nbyte_parts.append(columns[:, 2])
        if not source_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (np.concatenate(source_parts), np.concatenate(dest_parts),
                np.concatenate(nbyte_parts))

    def by_locality(self) -> Dict[Locality, TrafficSummary]:
        """Counters split by locality class (requires a mapping)."""
        summaries: Dict[Locality, TrafficSummary] = defaultdict(TrafficSummary)
        for entry in self._snapshot():
            if isinstance(entry, TrafficBatch):
                if entry.locality_codes is None:
                    continue
                counts = np.bincount(entry.locality_codes,
                                     minlength=len(_LOCALITY_ORDER))
                bytes_per_class = np.bincount(entry.locality_codes,
                                              weights=entry.nbytes,
                                              minlength=len(_LOCALITY_ORDER))
                for code, locality in enumerate(_LOCALITY_ORDER):
                    if counts[code]:
                        summaries[locality].add_bulk(int(counts[code]),
                                                     int(bytes_per_class[code]))
            elif entry.locality is not None:
                summaries[entry.locality].add(entry.nbytes)
        return dict(summaries)

    def per_rank(self, *, localities: Iterable[Locality] | None = None
                 ) -> Dict[int, TrafficSummary]:
        """Counters of sent traffic per source rank, optionally filtered by class."""
        wanted = set(localities) if localities is not None else None
        # Accumulate columnar, convert once: the filtered (source, nbytes)
        # columns of every entry are concatenated and reduced with a single
        # bincount pair instead of touching a summary dict per record.
        source_parts: List[np.ndarray] = []
        nbyte_parts: List[np.ndarray] = []
        singles: List[tuple[int, int]] = []
        for entry in self._snapshot():
            if isinstance(entry, TrafficBatch):
                sources, nbytes = entry.sources, entry.nbytes
                if wanted is not None:
                    if entry.locality_codes is None:
                        continue
                    keep = np.isin(entry.locality_codes,
                                   np.asarray([int(l) for l in wanted]))
                    sources, nbytes = sources[keep], nbytes[keep]
                if sources.size:
                    source_parts.append(sources)
                    nbyte_parts.append(nbytes)
            else:
                if wanted is not None and entry.locality not in wanted:
                    continue
                singles.append((entry.source, entry.nbytes))
        if singles:
            columns = np.asarray(singles, dtype=np.int64).reshape(
                len(singles), 2)
            source_parts.append(columns[:, 0])
            nbyte_parts.append(columns[:, 1])
        if not source_parts:
            return {}
        sources = np.concatenate(source_parts)
        nbytes = np.concatenate(nbyte_parts)
        length = int(sources.max()) + 1
        counts = np.bincount(sources, minlength=length)
        byte_counts = np.bincount(sources, weights=nbytes, minlength=length)
        return {int(rank): TrafficSummary(int(counts[rank]),
                                          int(byte_counts[rank]))
                for rank in np.flatnonzero(counts)}

    def max_messages_per_rank(self, *, localities: Iterable[Locality] | None = None) -> int:
        """Maximum number of messages sent by any single rank."""
        per_rank = self.per_rank(localities=localities)
        if not per_rank:
            return 0
        return max(s.message_count for s in per_rank.values())

    def max_bytes_per_rank(self, *, localities: Iterable[Locality] | None = None) -> int:
        """Maximum number of bytes sent by any single rank."""
        per_rank = self.per_rank(localities=localities)
        if not per_rank:
            return 0
        return max(s.byte_count for s in per_rank.values())

    def inter_region_records(self) -> List[TrafficRecord]:
        """Messages whose endpoints lie in different aggregation regions."""
        if self.mapping is None:
            return []
        return [r for r in self.records
                if not self.mapping.same_region(r.source, r.dest)]
