"""Traffic profiling for the simulated runtime.

The profiler records every envelope a rank sends, classifies it by locality
(when given a :class:`~repro.topology.mapping.RankMapping`), and produces the
per-process and per-class statistics that the integration tests compare against
the pure planner's predictions — if the functional collectives and the planner
ever disagree about how many inter-region bytes move, something is wrong.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.simmpi.mailbox import Envelope
from repro.topology.machine import Locality
from repro.topology.mapping import RankMapping


@dataclass(frozen=True)
class TrafficRecord:
    """One observed message."""

    source: int
    dest: int
    tag: int
    nbytes: int
    locality: Optional[Locality]
    #: True for numpy data-path traffic, False for pickled setup-phase objects.
    is_array: bool = True


@dataclass
class TrafficSummary:
    """Aggregated counters for one locality class (or for all traffic)."""

    message_count: int = 0
    byte_count: int = 0

    def add(self, nbytes: int) -> None:
        self.message_count += 1
        self.byte_count += int(nbytes)


class TrafficProfiler:
    """Thread-safe collector of sent messages across a simulated world."""

    def __init__(self, mapping: RankMapping | None = None, *,
                 ignore_self_messages: bool = True,
                 ignore_object_messages: bool = True):
        self.mapping = mapping
        self.ignore_self_messages = ignore_self_messages
        #: When True (default), setup-phase control traffic — pickled objects
        #: and packed arrays on internal collective tags — is not recorded;
        #: only data-path buffer traffic counts.
        self.ignore_object_messages = ignore_object_messages
        self._lock = threading.Lock()
        self._records: List[TrafficRecord] = []

    # -- recording -----------------------------------------------------------

    def record_envelope(self, envelope: Envelope) -> None:
        """Callback installed on :class:`SimComm`; records one sent envelope."""
        is_array = not envelope.is_control
        if self.ignore_object_messages and not is_array:
            return
        if self.ignore_self_messages and envelope.source == envelope.dest:
            return
        locality = None
        if self.mapping is not None:
            locality = self.mapping.locality(envelope.source, envelope.dest)
        record = TrafficRecord(source=envelope.source, dest=envelope.dest,
                               tag=envelope.tag, nbytes=envelope.nbytes,
                               locality=locality, is_array=is_array)
        with self._lock:
            self._records.append(record)

    def clear(self) -> None:
        """Drop all recorded traffic."""
        with self._lock:
            self._records.clear()

    # -- queries --------------------------------------------------------------

    @property
    def records(self) -> List[TrafficRecord]:
        """Copy of all recorded messages."""
        with self._lock:
            return list(self._records)

    def total(self) -> TrafficSummary:
        """Counters over all recorded messages."""
        summary = TrafficSummary()
        for record in self.records:
            summary.add(record.nbytes)
        return summary

    def object_traffic(self) -> TrafficSummary:
        """Counters over setup-phase object messages (pickled-size estimates).

        Only non-empty when the profiler was built with
        ``ignore_object_messages=False``.
        """
        summary = TrafficSummary()
        for record in self.records:
            if not record.is_array:
                summary.add(record.nbytes)
        return summary

    def by_locality(self) -> Dict[Locality, TrafficSummary]:
        """Counters split by locality class (requires a mapping)."""
        summaries: Dict[Locality, TrafficSummary] = defaultdict(TrafficSummary)
        for record in self.records:
            if record.locality is not None:
                summaries[record.locality].add(record.nbytes)
        return dict(summaries)

    def per_rank(self, *, localities: Iterable[Locality] | None = None
                 ) -> Dict[int, TrafficSummary]:
        """Counters of sent traffic per source rank, optionally filtered by class."""
        wanted = set(localities) if localities is not None else None
        summaries: Dict[int, TrafficSummary] = defaultdict(TrafficSummary)
        for record in self.records:
            if wanted is not None and record.locality not in wanted:
                continue
            summaries[record.source].add(record.nbytes)
        return dict(summaries)

    def max_messages_per_rank(self, *, localities: Iterable[Locality] | None = None) -> int:
        """Maximum number of messages sent by any single rank."""
        per_rank = self.per_rank(localities=localities)
        if not per_rank:
            return 0
        return max(s.message_count for s in per_rank.values())

    def max_bytes_per_rank(self, *, localities: Iterable[Locality] | None = None) -> int:
        """Maximum number of bytes sent by any single rank."""
        per_rank = self.per_rank(localities=localities)
        if not per_rank:
            return 0
        return max(s.byte_count for s in per_rank.values())

    def inter_region_records(self) -> List[TrafficRecord]:
        """Messages whose endpoints lie in different aggregation regions."""
        if self.mapping is None:
            return []
        return [r for r in self.records
                if not self.mapping.same_region(r.source, r.dest)]
