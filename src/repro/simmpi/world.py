"""World management: running SPMD programs over simulated ranks.

:func:`run_spmd` is the main entry point used by tests and examples: it creates
one thread per rank, hands each a :class:`~repro.simmpi.comm.SimComm`, runs the
supplied function, and returns the per-rank results.  Any exception on any rank
aborts the whole world (waking ranks blocked in receives) and is re-raised to
the caller with the failing rank identified.
"""

from __future__ import annotations

import threading
import traceback
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.simmpi.comm import SimComm
from repro.simmpi.mailbox import MessageFabric
from repro.simmpi.profiler import TrafficProfiler
from repro.utils.errors import CommunicationError
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import ExchangeEngine


class SimWorld:
    """A fixed-size collection of simulated ranks sharing one message fabric."""

    def __init__(self, n_ranks: int, *, timeout: float = 60.0,
                 profiler: TrafficProfiler | None = None):
        check_positive_int("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.timeout = float(timeout)
        self.fabric = MessageFabric(self.n_ranks, timeout=timeout)
        self.profiler = profiler

    def comm(self, rank: int) -> SimComm:
        """Create the world communicator handle for ``rank``."""
        callback = self.profiler.record_envelope if self.profiler is not None else None
        return SimComm(self.fabric, rank, self.n_ranks, context=0,
                       traffic_callback=callback)

    def exchange_engine(self, *, runtime: str | None = None,
                        n_workers: int | None = None,
                        on_failure: str | None = None) -> "ExchangeEngine":
        """Create a world-stepped :class:`ExchangeEngine` over this world's ranks.

        The engine shares the world's profiler, so batched data-path traffic
        lands in the same counters as envelope-routed traffic — the two
        execution paths report identical totals for the same plan.
        ``runtime``/``n_workers`` select the engine's execution backend
        (serial kernels or the shared-memory worker pool) and ``on_failure``
        its worker-failure policy; see
        :class:`~repro.simmpi.engine.ExchangeEngine`.
        """
        from repro.simmpi.engine import ExchangeEngine

        return ExchangeEngine(self.n_ranks, profiler=self.profiler,
                              runtime=runtime, n_workers=n_workers,
                              on_failure=on_failure)

    def run(self, program: Callable[..., Any], *args: Any,
            rank_args: Optional[Sequence[tuple]] = None) -> List[Any]:
        """Run ``program(comm, *args)`` on every rank and collect results.

        Parameters
        ----------
        program:
            Callable invoked as ``program(comm, *args)`` (or with per-rank
            arguments when ``rank_args`` is given).
        rank_args:
            Optional sequence of per-rank positional argument tuples appended
            after the shared ``args``.
        """
        if rank_args is not None and len(rank_args) != self.n_ranks:
            raise CommunicationError(
                f"rank_args must have {self.n_ranks} entries, got {len(rank_args)}"
            )
        results: List[Any] = [None] * self.n_ranks
        errors: List[tuple[int, BaseException, str]] = []
        errors_lock = threading.Lock()

        def runner(rank: int) -> None:
            comm = self.comm(rank)
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                results[rank] = program(comm, *args, *extra)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with errors_lock:
                    errors.append((rank, exc, traceback.format_exc()))
                self.fabric.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=runner, args=(rank,), daemon=True,
                                    name=f"simmpi-rank-{rank}")
                   for rank in range(self.n_ranks)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout + 5.0)
        stuck = [t.name for t in threads if t.is_alive()]
        if errors:
            rank, exc, text = sorted(errors)[0]
            raise CommunicationError(
                f"rank {rank} failed: {type(exc).__name__}: {exc}\n{text}"
            ) from exc
        if stuck:
            self.fabric.abort("deadlock suspected")
            raise CommunicationError(
                f"ranks did not terminate (suspected deadlock): {', '.join(stuck)}"
            )
        return results


def run_spmd(n_ranks: int, program: Callable[..., Any], *args: Any,
             timeout: float = 60.0,
             profiler: TrafficProfiler | None = None,
             rank_args: Optional[Sequence[tuple]] = None) -> List[Any]:
    """Convenience wrapper: build a :class:`SimWorld` and run one program.

    Returns the list of per-rank return values, indexed by rank.
    """
    world = SimWorld(n_ranks, timeout=timeout, profiler=profiler)
    return world.run(program, *args, rank_args=rank_args)
