"""Requests: handles for non-blocking and persistent operations.

The neighborhood collectives in the paper are built from *persistent*
point-to-point requests (``MPI_Send_init`` / ``MPI_Recv_init`` followed by
``MPI_Start`` and ``MPI_Wait`` every iteration).  The classes here mirror that
life-cycle: a persistent request is created once, then repeatedly started and
waited; starting an already-active request or waiting on an inactive one is an
error, exactly as in MPI.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.simmpi.mailbox import Envelope, MessageFabric
from repro.utils.errors import CommunicationError


class Request(abc.ABC):
    """Base class for all request handles."""

    def __init__(self):
        self._active = False
        self._completed = False

    @property
    def active(self) -> bool:
        """True between ``start()`` and the completing ``wait()``."""
        return self._active

    @abc.abstractmethod
    def start(self) -> None:
        """Begin the operation."""

    @abc.abstractmethod
    def wait(self) -> None:
        """Block until the operation completes."""


class PersistentRequest(Request):
    """Common state of persistent send/recv requests."""

    def __init__(self, fabric: MessageFabric, rank: int, peer: int, tag: int,
                 context: int):
        super().__init__()
        self.fabric = fabric
        self.rank = int(rank)
        self.peer = int(peer)
        self.tag = int(tag)
        self.context = int(context)

    def _check_startable(self) -> None:
        if self._active:
            raise CommunicationError(
                f"request ({self.rank}<->{self.peer}, tag {self.tag}) started twice "
                "without an intervening wait"
            )

    def _check_waitable(self) -> None:
        if not self._active:
            raise CommunicationError(
                f"wait on inactive request ({self.rank}<->{self.peer}, tag {self.tag})"
            )


class PersistentSendRequest(PersistentRequest):
    """Persistent send: snapshots the buffer at every start and delivers eagerly.

    The buffer is kept as a *view* — callers post slices of a contiguous send
    arena and repack the arena in place between starts; the single
    ``np.array`` snapshot at start time is the simulated wire transfer.
    """

    def __init__(self, fabric: MessageFabric, rank: int, dest: int, tag: int,
                 context: int, buffer: np.ndarray, *, on_start=None):
        super().__init__(fabric, rank, dest, tag, context)
        self.buffer = np.asarray(buffer)
        self._on_start = on_start

    def start(self) -> None:
        """Deliver a copy of the current buffer contents to the destination."""
        self._check_startable()
        payload = np.array(self.buffer, copy=True)
        envelope = Envelope(source=self.rank, dest=self.peer, tag=self.tag,
                            context=self.context, payload=payload)
        if self._on_start is not None:
            self._on_start(envelope)
        self.fabric.deliver(envelope)
        self._active = True

    def wait(self) -> None:
        """Complete the send (a no-op beyond state tracking; delivery is eager)."""
        self._check_waitable()
        self._active = False
        self._completed = True


class PersistentRecvRequest(PersistentRequest):
    """Persistent receive: waits for a matching envelope and fills the buffer."""

    def __init__(self, fabric: MessageFabric, rank: int, source: int, tag: int,
                 context: int, buffer: np.ndarray):
        super().__init__(fabric, rank, source, tag, context)
        buffer = np.asarray(buffer)
        if not buffer.flags.writeable:
            raise CommunicationError("receive buffer must be writeable")
        if not buffer.flags.c_contiguous:
            # Arena slices along axis 0 are contiguous; anything else would
            # silently lose the received data through a reshape copy.
            raise CommunicationError("receive buffer must be C-contiguous")
        self.buffer = buffer

    def start(self) -> None:
        """Post the receive (matching happens at wait time)."""
        self._check_startable()
        self._active = True

    def wait(self) -> None:
        """Block for the matching message and copy it into the receive buffer."""
        self._check_waitable()
        envelope = self.fabric.collect(self.rank, self.peer, self.tag, self.context)
        payload = np.asarray(envelope.payload)
        if payload.size != self.buffer.size:
            raise CommunicationError(
                f"receive buffer size {self.buffer.size} does not match message "
                f"size {payload.size} (from rank {self.peer}, tag {self.tag})"
            )
        if payload.dtype != self.buffer.dtype:
            raise CommunicationError(
                f"receive buffer dtype {self.buffer.dtype} does not match message "
                f"dtype {payload.dtype} (from rank {self.peer}, tag {self.tag})"
            )
        self.buffer.reshape(-1)[:] = payload.reshape(-1)
        self._active = False
        self._completed = True


def start_all(requests: Iterable[Request]) -> None:
    """Start every request in order (MPI_Startall)."""
    for request in requests:
        request.start()


def wait_all(requests: Sequence[Request]) -> None:
    """Wait for every request (MPI_Waitall).

    Receives are completed first so that buffered sends never block the
    caller; order within each group follows the argument order.
    """
    recvs = [r for r in requests if isinstance(r, PersistentRecvRequest)]
    others = [r for r in requests if not isinstance(r, PersistentRecvRequest)]
    for request in recvs:
        request.wait()
    for request in others:
        request.wait()
