"""The message fabric: thread-safe mailboxes connecting simulated ranks.

Messages are matched MPI-style on ``(source, destination, tag, context)`` with
FIFO ordering per matching key, where ``context`` distinguishes communicators
(every :class:`~repro.simmpi.comm.SimComm` gets its own context id).  Delivery
is eager: a send deposits an immutable copy of its payload and completes
immediately; a receive blocks until a matching envelope arrives.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Tuple

import numpy as np

from repro.utils.errors import CommunicationError

#: Tags at or above this value are reserved for internal collective plumbing
#: (barriers, object gathers, packed setup-phase array exchanges).  Defined
#: here so both the communicator and the profiler agree on the boundary.
INTERNAL_TAG_BASE = 1 << 20


@dataclass(frozen=True)
class Envelope:
    """One in-flight message."""

    source: int
    dest: int
    tag: int
    context: int
    payload: Any

    @property
    def is_array(self) -> bool:
        """True when the payload is a numpy buffer (data-path traffic)."""
        return isinstance(self.payload, np.ndarray)

    @property
    def is_control(self) -> bool:
        """True for setup-phase control traffic (internal tag or object payload).

        Packed neighbor-list and pattern gathers travel as numpy arrays on
        internal tags; they are still control-plane, not data-path, traffic.
        """
        return self.tag >= INTERNAL_TAG_BASE or not self.is_array

    @property
    def nbytes(self) -> int:
        """Payload size in bytes.

        Arrays report their exact buffer size; object payloads (setup-phase
        control messages) are estimated via their pickled size, so traffic
        accounting of the initialisation phase is no longer zero.
        """
        if isinstance(self.payload, np.ndarray):
            return int(self.payload.nbytes)
        try:
            return len(pickle.dumps(self.payload, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return 0


_Key = Tuple[int, int, int, int]  # (dest, source, tag, context)


class MessageFabric:
    """Shared mailbox store for one simulated world."""

    def __init__(self, n_ranks: int, *, timeout: float = 60.0):
        if n_ranks <= 0:
            raise CommunicationError("a world needs at least one rank")
        self.n_ranks = int(n_ranks)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queues: Dict[_Key, Deque[Envelope]] = {}
        self._aborted: str | None = None

    # -- sending ------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Deposit ``envelope`` for its destination rank (never blocks)."""
        self._check_rank(envelope.source)
        self._check_rank(envelope.dest)
        key = (envelope.dest, envelope.source, envelope.tag, envelope.context)
        with self._available:
            if self._aborted:
                raise CommunicationError(f"world aborted: {self._aborted}")
            self._queues.setdefault(key, deque()).append(envelope)
            self._available.notify_all()

    # -- receiving ----------------------------------------------------------

    def collect(self, dest: int, source: int, tag: int, context: int) -> Envelope:
        """Block until a message matching the key is available and return it."""
        self._check_rank(dest)
        self._check_rank(source)
        key = (dest, source, tag, context)
        with self._available:
            waited = 0.0
            step = 0.05
            while True:
                if self._aborted:
                    raise CommunicationError(f"world aborted: {self._aborted}")
                queue = self._queues.get(key)
                if queue:
                    envelope = queue.popleft()
                    if not queue:
                        del self._queues[key]
                    return envelope
                if waited >= self.timeout:
                    raise CommunicationError(
                        f"rank {dest} timed out after {self.timeout:.1f}s waiting for "
                        f"a message from rank {source} with tag {tag}"
                    )
                self._available.wait(step)
                waited += step

    def try_collect(self, dest: int, source: int, tag: int, context: int) -> Envelope | None:
        """Non-blocking variant of :meth:`collect`; returns None when empty."""
        key = (dest, source, tag, context)
        with self._available:
            queue = self._queues.get(key)
            if not queue:
                return None
            envelope = queue.popleft()
            if not queue:
                del self._queues[key]
            return envelope

    # -- failure handling ---------------------------------------------------

    def abort(self, reason: str) -> None:
        """Mark the world as failed and wake every waiting rank.

        Called when one rank raises, so that the remaining ranks do not hang
        on receives that will never be satisfied.
        """
        with self._available:
            if self._aborted is None:
                self._aborted = reason
            self._available.notify_all()

    @property
    def aborted(self) -> str | None:
        """Reason the world was aborted, or None while healthy."""
        with self._lock:
            return self._aborted

    def pending_count(self) -> int:
        """Number of undelivered envelopes (useful for leak checks in tests)."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    # -- helpers ------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if rank < 0 or rank >= self.n_ranks:
            raise CommunicationError(
                f"rank {rank} out of range for world of size {self.n_ranks}"
            )
