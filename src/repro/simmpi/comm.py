"""The simulated communicator.

:class:`SimComm` exposes the slice of the MPI interface the library needs:

* blocking and persistent point-to-point operations on numpy buffers,
* object send/recv for small control messages (setup exchanges),
* ``barrier``, ``allgather_obj``, ``allreduce`` and ``alltoall_obj``
  collectives implemented on top of point-to-point,
* communicator duplication (fresh context id) so concurrent collectives on the
  same ranks never match each other's messages.

Every communicator carries a *context id*; messages only match within a
context, mirroring MPI's communicator isolation guarantee.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, List, Sequence

import numpy as np

from repro.simmpi.mailbox import INTERNAL_TAG_BASE, Envelope, MessageFabric
from repro.simmpi.request import (
    PersistentRecvRequest,
    PersistentSendRequest,
)
from repro.utils.errors import CommunicationError

# Tags at or above this value are reserved for internal collective plumbing.
_INTERNAL_TAG_BASE = INTERNAL_TAG_BASE


class SimComm:
    """A communicator over the ranks of one :class:`~repro.simmpi.world.SimWorld`."""

    _context_counter = itertools.count(1)
    _context_lock = threading.Lock()

    def __init__(self, fabric: MessageFabric, rank: int, size: int, *,
                 context: int | None = None,
                 context_allocator: Callable[[], int] | None = None,
                 traffic_callback: Callable[[Envelope], None] | None = None):
        if rank < 0 or rank >= size:
            raise CommunicationError(f"rank {rank} out of range for size {size}")
        if size > fabric.n_ranks:
            raise CommunicationError("communicator larger than the world fabric")
        self.fabric = fabric
        self.rank = int(rank)
        self.size = int(size)
        self.context = int(context) if context is not None else 0
        self._context_allocator = context_allocator
        self._traffic_callback = traffic_callback

    # -- communicator management --------------------------------------------

    def dup(self) -> "SimComm":
        """Duplicate the communicator with a fresh context id.

        All ranks must call ``dup`` the same number of times in the same order
        (as in MPI); the context id is derived deterministically from the
        parent context so that every rank computes the same value without
        synchronising.
        """
        new_context = self._derive_context(self.context)
        return SimComm(self.fabric, self.rank, self.size, context=new_context,
                       traffic_callback=self._traffic_callback)

    @staticmethod
    def _derive_context(parent_context: int) -> int:
        # Deterministic: every rank derives the same child id from the parent.
        return parent_context * 131 + 7

    def set_traffic_callback(self, callback: Callable[[Envelope], None] | None) -> None:
        """Install a callback invoked with every envelope this rank sends."""
        self._traffic_callback = callback

    # -- point-to-point: persistent ------------------------------------------

    def send_init(self, buffer: np.ndarray, dest: int, tag: int = 0) -> PersistentSendRequest:
        """Create a persistent send request (MPI_Send_init)."""
        self._check_peer(dest)
        self._check_tag(tag)
        return PersistentSendRequest(self.fabric, self.rank, dest, tag, self.context,
                                     buffer, on_start=self._traffic_callback)

    def recv_init(self, buffer: np.ndarray, source: int, tag: int = 0) -> PersistentRecvRequest:
        """Create a persistent receive request (MPI_Recv_init)."""
        self._check_peer(source)
        self._check_tag(tag)
        return PersistentRecvRequest(self.fabric, self.rank, source, tag, self.context,
                                     buffer)

    # -- point-to-point: blocking ---------------------------------------------

    def send(self, buffer: np.ndarray, dest: int, tag: int = 0) -> None:
        """Blocking (eager) send of a numpy buffer."""
        request = self.send_init(buffer, dest, tag)
        request.start()
        request.wait()

    def recv(self, buffer: np.ndarray, source: int, tag: int = 0) -> np.ndarray:
        """Blocking receive into ``buffer``; returns the buffer."""
        request = self.recv_init(buffer, source, tag)
        request.start()
        request.wait()
        return request.buffer

    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send an arbitrary (small) Python object; used for setup exchanges."""
        self._check_peer(dest)
        envelope = Envelope(source=self.rank, dest=dest, tag=self._obj_tag(tag),
                            context=self.context, payload=obj)
        if self._traffic_callback is not None:
            self._traffic_callback(envelope)
        self.fabric.deliver(envelope)

    def recv_obj(self, source: int, tag: int = 0) -> Any:
        """Receive an object sent with :meth:`send_obj`."""
        self._check_peer(source)
        envelope = self.fabric.collect(self.rank, source, self._obj_tag(tag),
                                       self.context)
        return envelope.payload

    # -- collectives ------------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks (gather-to-root then broadcast of a token)."""
        root = 0
        if self.rank == root:
            for source in range(self.size):
                if source != root:
                    self.recv_obj(source, tag=_INTERNAL_TAG_BASE + 1)
            for dest in range(self.size):
                if dest != root:
                    self.send_obj(None, dest, tag=_INTERNAL_TAG_BASE + 2)
        else:
            self.send_obj(None, root, tag=_INTERNAL_TAG_BASE + 1)
            self.recv_obj(root, tag=_INTERNAL_TAG_BASE + 2)

    def allgather_obj(self, value: Any) -> List[Any]:
        """Gather one Python object from every rank onto every rank."""
        root = 0
        if self.rank == root:
            gathered: List[Any] = [None] * self.size
            gathered[root] = value
            for source in range(self.size):
                if source != root:
                    gathered[source] = self.recv_obj(source, tag=_INTERNAL_TAG_BASE + 3)
            for dest in range(self.size):
                if dest != root:
                    self.send_obj(gathered, dest, tag=_INTERNAL_TAG_BASE + 4)
            return list(gathered)
        self.send_obj(value, root, tag=_INTERNAL_TAG_BASE + 3)
        return list(self.recv_obj(root, tag=_INTERNAL_TAG_BASE + 4))

    def allgatherv_array(self, array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather variable-length 1-D numpy arrays from every rank onto every rank.

        Returns ``(flat, counts)`` where ``flat`` concatenates every rank's
        contribution in rank order and ``counts[r]`` is rank ``r``'s length —
        the packed count/displacement form neighborhood setup code consumes
        (rank ``r``'s slice is ``flat[displs[r]:displs[r + 1]]`` with
        ``displs = counts_to_displs(counts)``).  Payloads travel as typed
        numpy buffers; only the lengths ride the object path, exactly like an
        MPI ``MPI_Allgatherv`` preceded by its count exchange.  All ranks must
        pass the same dtype.
        """
        array = np.ascontiguousarray(array)
        if array.ndim != 1:
            raise CommunicationError("allgatherv_array requires 1-D arrays")
        root = 0
        tag_count = _INTERNAL_TAG_BASE + 7
        tag_data = _INTERNAL_TAG_BASE + 8
        if self.rank == root:
            counts = np.empty(self.size, dtype=np.int64)
            counts[root] = array.size
            chunks: List[np.ndarray] = [None] * self.size  # type: ignore[list-item]
            chunks[root] = array
            for source in range(self.size):
                if source == root:
                    continue
                size = int(self.recv_obj(source, tag=tag_count))
                chunk = np.empty(size, dtype=array.dtype)
                if size:
                    self._recv_internal(chunk, source, tag_data)
                counts[source] = size
                chunks[source] = chunk
            flat = np.concatenate(chunks) if int(counts.sum()) else \
                np.empty(0, dtype=array.dtype)
            for dest in range(self.size):
                if dest == root:
                    continue
                self._send_internal(counts, dest, tag_count)
                if flat.size:
                    self._send_internal(flat, dest, tag_data)
            return flat, counts
        self.send_obj(int(array.size), root, tag=tag_count)
        if array.size:
            self._send_internal(array, root, tag_data)
        counts = np.empty(self.size, dtype=np.int64)
        self._recv_internal(counts, root, tag_count)
        flat = np.empty(int(counts.sum()), dtype=array.dtype)
        if flat.size:
            self._recv_internal(flat, root, tag_data)
        return flat, counts

    def _send_internal(self, buffer: np.ndarray, dest: int, tag: int) -> None:
        """Blocking buffer send on a reserved internal tag (no user-tag check)."""
        request = PersistentSendRequest(self.fabric, self.rank, dest, tag,
                                        self.context, buffer,
                                        on_start=self._traffic_callback)
        request.start()
        request.wait()

    def _recv_internal(self, buffer: np.ndarray, source: int, tag: int) -> None:
        """Blocking buffer receive matching :meth:`_send_internal`."""
        request = PersistentRecvRequest(self.fabric, self.rank, source, tag,
                                        self.context, buffer)
        request.start()
        request.wait()

    def bcast_obj(self, value: Any, root: int = 0) -> Any:
        """Broadcast a Python object from ``root`` to every rank."""
        self._check_peer(root)
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send_obj(value, dest, tag=_INTERNAL_TAG_BASE + 5)
            return value
        return self.recv_obj(root, tag=_INTERNAL_TAG_BASE + 5)

    def allreduce(self, value: float, op: Callable[[float, float], float] = None) -> float:
        """All-reduce a scalar; ``op`` defaults to addition."""
        import operator
        op = op or operator.add
        contributions = self.allgather_obj(value)
        result = contributions[0]
        for item in contributions[1:]:
            result = op(result, item)
        return result

    def alltoall_obj(self, values: Sequence[Any]) -> List[Any]:
        """Personalised all-to-all of Python objects (one item per rank)."""
        if len(values) != self.size:
            raise CommunicationError(
                f"alltoall requires exactly {self.size} items, got {len(values)}"
            )
        for dest in range(self.size):
            if dest != self.rank:
                self.send_obj(values[dest], dest, tag=_INTERNAL_TAG_BASE + 6)
        received: List[Any] = [None] * self.size
        received[self.rank] = values[self.rank]
        for source in range(self.size):
            if source != self.rank:
                received[source] = self.recv_obj(source, tag=_INTERNAL_TAG_BASE + 6)
        return received

    def reduce_scalar_max(self, value: float) -> float:
        """Convenience max-allreduce used by statistics gathering."""
        return self.allreduce(value, op=max)

    # -- helpers -----------------------------------------------------------------

    def _obj_tag(self, tag: int) -> int:
        return _INTERNAL_TAG_BASE * 2 + tag

    def _check_peer(self, peer: int) -> None:
        if peer < 0 or peer >= self.size:
            raise CommunicationError(
                f"peer rank {peer} out of range for communicator of size {self.size}"
            )

    def _check_tag(self, tag: int) -> None:
        if tag < 0 or tag >= _INTERNAL_TAG_BASE:
            raise CommunicationError(
                f"user tags must lie in [0, {_INTERNAL_TAG_BASE}), got {tag}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size}, context={self.context})"
