"""Deterministic fault injection for the ``runtime="procs"`` worker pool.

The supervision and recovery machinery of :mod:`repro.simmpi.procs` exists
for failures — OOM-killed workers, wedged native kernels, dropped pipes —
that never occur on a healthy laptop.  This module makes them occur *on
demand and deterministically*: a :class:`FaultPlan` names exactly which
worker fails, how, at which round/phase, and on which retry attempt, so the
chaos suite can pin detection latency, recovery, and fallback behaviour
without ever sleeping on a race.

A plan is a set of :class:`FaultSpec` entries.  Each entry fires at most
once per matching (round, phase, worker, attempt) coordinate:

* ``kind="crash"`` — the worker SIGKILLs itself (the OOM-killer shape);
* ``kind="hang"`` — the worker sleeps far past any timeout (wedged kernel);
* ``kind="pipe_drop"`` — the worker closes its command pipe and exits
  (orphaned/zombie shape: the parent sees EOF, never an acknowledgement);
* ``kind="corrupt"`` — the worker answers with garbage bytes instead of a
  pickled acknowledgement (corrupted wire).

``phase`` places the fault: ``"send"`` / ``"recv"`` fire at the first step
of that kind inside the chosen exchange round; ``"register"`` fires while
handling the registration whose handle equals ``round``.  ``attempt``
selects which delivery attempt fails (default ``0``: the first try fails
and the respawned pool succeeds — the recovery path); ``attempt=None``
(spelled ``*`` in the environment form) fires on *every* attempt, which is
how the retry-exhaustion/fallback path is exercised.

Plans come from the programmatic API (``FaultPlan([...])``, handed to
:class:`~repro.simmpi.engine.ExchangeEngine` or
:class:`~repro.simmpi.procs.ProcsPool`) or from the ``REPRO_FAULTS``
environment variable, whose value is a semicolon-separated list of
``kind:round:phase:worker[:attempt]`` entries, e.g.::

    REPRO_FAULTS="crash:0:send:1;hang:2:recv:0:*"
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.utils.errors import ValidationError

#: Environment variable holding the textual fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds a worker can inject.
FAULT_KINDS = ("crash", "hang", "pipe_drop", "corrupt")

#: Injection points.  ``"send"``/``"recv"`` are exchange-round steps;
#: ``"register"`` is program registration (``round`` is then the handle).
FAULT_PHASES = ("send", "recv", "register")

#: How long a ``"hang"`` fault sleeps — far beyond any sane worker timeout,
#: so the parent's supervision (not the fault) decides when it is dead.
HANG_SECONDS = 3600.0

#: Bytes a ``"corrupt"`` fault sends in place of a pickled acknowledgement;
#: guaranteed to make ``Connection.recv`` raise an unpickling error.
CORRUPT_WIRE_BYTES = b"repro-corrupted-wire-bytes"


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *worker* fails via *kind* at (*round*,
    *phase*), on delivery attempt *attempt* (``None`` = every attempt)."""

    kind: str
    round: int
    phase: str
    worker: int
    attempt: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.phase not in FAULT_PHASES:
            raise ValidationError(
                f"fault phase must be one of {FAULT_PHASES}, "
                f"got {self.phase!r}"
            )
        if int(self.round) < 0 or int(self.worker) < 0:
            raise ValidationError(
                f"fault round and worker must be >= 0, "
                f"got round={self.round}, worker={self.worker}"
            )

    def matches(self, *, phase: str, round: int, worker: int,
                attempt: int) -> bool:
        """Whether this fault fires at the given coordinate."""
        return (self.phase == phase and self.round == int(round)
                and self.worker == int(worker)
                and (self.attempt is None or self.attempt == int(attempt)))

    def describe(self) -> str:
        """The environment-variable spelling of this spec."""
        attempt = "*" if self.attempt is None else str(self.attempt)
        return f"{self.kind}:{self.round}:{self.phase}:{self.worker}:{attempt}"


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries.

    Workers inherit the plan at fork time and consult it at each injection
    point; an empty plan is represented as ``None`` throughout the runtime
    so the healthy path pays no lookup cost.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``kind:round:phase:worker[:attempt]`` list form."""
        specs = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (4, 5):
                raise ValidationError(
                    f"fault entry must be kind:round:phase:worker[:attempt], "
                    f"got {entry!r}"
                )
            kind, round_text, phase, worker_text = parts[:4]
            attempt: Optional[int] = 0
            if len(parts) == 5:
                attempt = None if parts[4].strip() == "*" \
                    else _parse_int(parts[4], entry)
            specs.append(FaultSpec(
                kind=kind.strip().lower(),
                round=_parse_int(round_text, entry),
                phase=phase.strip().lower(),
                worker=_parse_int(worker_text, entry),
                attempt=attempt,
            ))
        return cls(specs)

    @classmethod
    def from_environment(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        plan = cls.parse(text)
        return plan if plan else None

    def match(self, *, phases: Sequence[str], round: int, worker: int,
              attempt: int) -> Optional[FaultSpec]:
        """First spec firing at this coordinate for any of ``phases``."""
        for spec in self.specs:
            for phase in phases:
                if spec.matches(phase=phase, round=round, worker=worker,
                                attempt=attempt):
                    return spec
        return None

    def describe(self) -> str:
        """The environment-variable spelling of the whole plan."""
        return ";".join(spec.describe() for spec in self.specs)


def _parse_int(text: str, entry: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise ValidationError(
            f"fault entry field {text!r} is not an integer (in {entry!r})"
        ) from None


def fire(spec: FaultSpec, conn) -> None:  # pragma: no cover - forked child
    """Execute an injected fault inside a worker process.

    ``"corrupt"`` is *not* handled here — it fires at acknowledgement time
    (the worker's command loop substitutes :data:`CORRUPT_WIRE_BYTES` for
    the pickled ack) because the fault is in the wire, not the work.
    """
    import signal
    import time

    if spec.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "hang":
        time.sleep(HANG_SECONDS)
    elif spec.kind == "pipe_drop":
        conn.close()
        os._exit(0)
