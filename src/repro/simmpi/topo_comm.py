"""Distributed-graph topology communicators.

``MPI_Dist_graph_create_adjacent`` turns a flat communicator plus per-rank
neighbor lists into a topology communicator that neighborhood collectives run
on.  The simulated version validates the neighbor lists, optionally verifies
global consistency (every directed edge declared by its source must also be
declared by its destination), and carries the lists around for the collective
implementations in :mod:`repro.collectives`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simmpi.comm import SimComm
from repro.utils.arrays import as_index_array, counts_to_displs
from repro.utils.errors import CommunicationError, ValidationError


class DistGraphComm:
    """A communicator with attached directed-graph neighborhood information.

    Attributes
    ----------
    comm:
        The underlying :class:`SimComm` (duplicated, so collectives on the
        graph communicator never collide with traffic on the parent).
    sources:
        Ranks this process receives from (in-neighbors), in call order.
    destinations:
        Ranks this process sends to (out-neighbors), in call order.
    """

    def __init__(self, comm: SimComm, sources: np.ndarray, destinations: np.ndarray,
                 *, sourceweights: np.ndarray | None = None,
                 destweights: np.ndarray | None = None):
        self.comm = comm
        self.sources = as_index_array(sources)
        self.destinations = as_index_array(destinations)
        self.sourceweights = (as_index_array(sourceweights)
                              if sourceweights is not None else None)
        self.destweights = (as_index_array(destweights)
                            if destweights is not None else None)
        for name, ranks in (("sources", self.sources),
                            ("destinations", self.destinations)):
            if ranks.size and (ranks.min() < 0 or ranks.max() >= comm.size):
                raise CommunicationError(f"{name} contains ranks outside the communicator")
        if self.sourceweights is not None and self.sourceweights.size != self.sources.size:
            raise CommunicationError("sourceweights length must match sources")
        if self.destweights is not None and self.destweights.size != self.destinations.size:
            raise CommunicationError("destweights length must match destinations")

    # -- MPI-style accessors ---------------------------------------------------

    @property
    def rank(self) -> int:
        """Rank of the calling process in the communicator."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """Size of the underlying communicator."""
        return self.comm.size

    @property
    def indegree(self) -> int:
        """Number of in-neighbors (MPI_Dist_graph_neighbors_count)."""
        return int(self.sources.size)

    @property
    def outdegree(self) -> int:
        """Number of out-neighbors."""
        return int(self.destinations.size)

    def neighbors(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` copies (MPI_Dist_graph_neighbors)."""
        return self.sources.copy(), self.destinations.copy()


def dist_graph_create_adjacent(comm: SimComm,
                               sources: Sequence[int],
                               destinations: Sequence[int],
                               *,
                               sourceweights: Sequence[int] | None = None,
                               destweights: Sequence[int] | None = None,
                               validate: bool = True) -> DistGraphComm:
    """Create a distributed-graph communicator from adjacent neighbor lists.

    Every rank passes the ranks it will receive from (``sources``) and send to
    (``destinations``).  With ``validate=True`` (the default, and the expensive
    part that Figure 6 measures) the call performs a global exchange to check
    that the declared edges are mutually consistent; passing ``validate=False``
    skips the synchronisation, mirroring an unchecked MPI implementation.
    """
    sources = as_index_array(sources)
    destinations = as_index_array(destinations)
    # Reject malformed neighbor lists before any collective traffic: a
    # duplicate or out-of-range neighbor would otherwise surface only deep
    # inside the exchange (mismatched message counts, unmatched receives).
    for name, ranks in (("sources", sources), ("destinations", destinations)):
        if ranks.size == 0:
            continue
        if int(ranks.min()) < 0 or int(ranks.max()) >= comm.size:
            raise ValidationError(
                f"{name} contains ranks outside the communicator of size {comm.size}"
            )
        if np.unique(ranks).size != ranks.size:
            raise ValidationError(f"{name} contains duplicate ranks")
    graph_comm = DistGraphComm(comm.dup(), sources, destinations,
                               sourceweights=sourceweights, destweights=destweights)
    if validate:
        # Each rank publishes its out-edges as a packed int64 array; one
        # count/displacement allgather then lets every rank check that each of
        # its in-edges was declared by the corresponding source, with one
        # vectorized membership test instead of per-edge list scans.  The
        # synchronisation cost this stands in for is exactly what the paper's
        # Figure 6 measures.
        all_dests, counts = graph_comm.comm.allgatherv_array(destinations)
        displs = counts_to_displs(counts)
        me = comm.rank
        # Ranks that declared an out-edge to this process:
        rows = np.flatnonzero(all_dests == me)
        declarers = np.searchsorted(displs, rows, side="right") - 1
        missing = sources[~np.isin(sources, declarers)]
        if missing.size:
            raise CommunicationError(
                f"rank {me} lists rank {int(missing[0])} as a source, but that rank "
                "does not list it as a destination"
            )
    return graph_comm
