"""A functional, in-process simulated MPI runtime.

The real system in the paper runs on thousands of MPI ranks; this package
provides enough of MPI — persistent point-to-point communication, a handful of
collectives, and distributed-graph topology communicators — for the
neighborhood-collective implementations in :mod:`repro.collectives` to execute
unmodified and be verified for correctness.  Ranks are Python threads inside
one process exchanging numpy buffers through an in-memory fabric, so the
runtime is about *data movement correctness*, never about wall-clock speed
(timings come from :mod:`repro.perfmodel`).

Typical use::

    from repro import simmpi

    def program(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        send = comm.send_init(np.full(4, comm.rank), dest=right, tag=7)
        recv = comm.recv_init(np.empty(4), source=left, tag=7)
        simmpi.start_all([send, recv]); simmpi.wait_all([send, recv])
        return recv.buffer.copy()

    results = simmpi.run_spmd(8, program)
"""

from repro.simmpi.mailbox import MessageFabric
from repro.simmpi.request import (
    Request,
    PersistentRequest,
    PersistentSendRequest,
    PersistentRecvRequest,
    start_all,
    wait_all,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import (
    ENGINE_RUNTIMES,
    ON_FAILURE_ENV,
    ON_FAILURE_POLICIES,
    RUNTIME_ENV,
    ExchangeEngine,
    default_on_failure,
    default_runtime,
)
from repro.simmpi.faults import FAULTS_ENV, FaultPlan, FaultSpec
from repro.simmpi.procs import (
    TIMEOUT_ENV,
    ProcsPool,
    RecoveryEvent,
    default_worker_count,
    default_worker_timeout,
)
from repro.simmpi.world import SimWorld, run_spmd
from repro.simmpi.topo_comm import DistGraphComm, dist_graph_create_adjacent
from repro.simmpi.profiler import TrafficBatch, TrafficProfiler, TrafficRecord

__all__ = [
    "ENGINE_RUNTIMES",
    "FAULTS_ENV",
    "ON_FAILURE_ENV",
    "ON_FAILURE_POLICIES",
    "RUNTIME_ENV",
    "TIMEOUT_ENV",
    "ExchangeEngine",
    "FaultPlan",
    "FaultSpec",
    "ProcsPool",
    "RecoveryEvent",
    "default_on_failure",
    "default_runtime",
    "default_worker_count",
    "default_worker_timeout",
    "TrafficBatch",
    "MessageFabric",
    "Request",
    "PersistentRequest",
    "PersistentSendRequest",
    "PersistentRecvRequest",
    "start_all",
    "wait_all",
    "SimComm",
    "SimWorld",
    "run_spmd",
    "DistGraphComm",
    "dist_graph_create_adjacent",
    "TrafficProfiler",
    "TrafficRecord",
]
