"""repro: locality-aware persistent neighborhood collectives, reproduced in Python.

This library reproduces "Optimizing Irregular Communication with Neighborhood
Collectives and Locality-Aware Parallelism" (Collom, Li, Bienz -- EuroMPI 2023).
It contains:

* the paper's contribution -- persistent neighborhood collectives with standard,
  locality-aware (three-step aggregation), and deduplicating implementations,
  plus model-driven dynamic selection (:mod:`repro.collectives`);
* every substrate the evaluation depends on -- machine topology and rank
  placement (:mod:`repro.topology`), communication performance models
  (:mod:`repro.perfmodel`), a simulated MPI runtime (:mod:`repro.simmpi`),
  communication patterns (:mod:`repro.pattern`), ParCSR-style distributed
  matrices and SpMV (:mod:`repro.sparse`), and a BoomerAMG-style solver
  (:mod:`repro.amg`);
* the experiment harness regenerating every figure of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro.topology import paper_mapping
    from repro.pattern import random_pattern
    from repro.collectives import all_plans, Variant
    from repro.perfmodel import lassen_parameters

    mapping = paper_mapping(n_ranks=64)
    pattern = random_pattern(64, seed=0)
    plans = all_plans(pattern, mapping)
    model = lassen_parameters()
    for variant, plan in plans.items():
        print(variant.value, plan.modeled_time(model))
"""

from repro import topology
from repro import perfmodel
from repro import simmpi
from repro import pattern
from repro import collectives
from repro import sparse
from repro import amg
from repro import utils

__version__ = "1.0.0"

__all__ = [
    "topology",
    "perfmodel",
    "simmpi",
    "pattern",
    "collectives",
    "sparse",
    "amg",
    "utils",
    "__version__",
]
