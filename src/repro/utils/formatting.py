"""Plain-text report formatting for the experiment harness.

The benchmark targets print the same rows/series the paper's figures report;
these helpers keep that output consistent (fixed-width tables, SI-ish units)
without requiring matplotlib.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_bytes(num_bytes: float) -> str:
    """Render a byte count using binary prefixes (B, KiB, MiB, GiB)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit that keeps the mantissa readable."""
    value = float(seconds)
    if value == 0.0:
        return "0 s"
    if abs(value) >= 1.0:
        return f"{value:.3f} s"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    if abs(value) >= 1e-6:
        return f"{value * 1e6:.3f} us"
    return f"{value * 1e9:.3f} ns"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Format rows as a fixed-width text table.

    Column widths are computed from the content; all values are converted with
    ``str``.  Used by every benchmark to print the paper-figure series.
    """
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i < len(widths) else cell
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x: Sequence[object],
                  *, x_label: str = "x", title: str | None = None,
                  value_format: str = "{:.6g}") -> str:
    """Format several named series sharing an x axis as a table.

    This is the textual stand-in for the paper's line plots: one row per x
    value, one column per protocol.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(x):
        row = [xv]
        for name in series:
            values = series[name]
            row.append(value_format.format(values[i]) if i < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
