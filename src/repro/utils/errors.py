"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the package with a single ``except`` clause
while still letting programming errors (``TypeError`` from numpy, etc.)
propagate unchanged.

:class:`WorkerCrash` is the structured diagnosis of one dead or wedged
``runtime="procs"`` worker; :class:`WorkerError` carries a tuple of them and
marks the failure as *infrastructure* (a process died, hung, or its pipe
broke) rather than a program bug — the distinction the supervision layer's
retry policy keys on: only :class:`WorkerError` is retryable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or structure)."""


class CommunicationError(ReproError, RuntimeError):
    """The simulated MPI runtime detected an illegal communication.

    Examples: posting a receive that is never matched, waiting on an inactive
    persistent request, message size mismatch between sender and receiver.
    """


@dataclass(frozen=True)
class WorkerCrash:
    """Structured diagnosis of one failed ``runtime="procs"`` worker.

    ``exitcode`` is the process exit status (negative means killed by that
    signal number, ``None`` means the process was still alive — a wedged
    worker that stopped answering); ``command`` is the last command the
    parent dispatched to it (``"run"`` or ``"register"``).
    """

    worker_id: int
    exitcode: Optional[int]
    command: str
    detail: str

    @property
    def signal(self) -> Optional[int]:
        """Signal number that killed the worker, if one did."""
        if self.exitcode is not None and self.exitcode < 0:
            return -self.exitcode
        return None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.signal is not None:
            fate = f"killed by signal {self.signal}"
        elif self.exitcode is not None:
            fate = f"exited with code {self.exitcode}"
        else:
            fate = "stopped answering"
        return (f"worker {self.worker_id} {fate} during "
                f"{self.command}: {self.detail}")


class WorkerError(CommunicationError):
    """One or more ``runtime="procs"`` workers crashed, hung, or lost their
    pipe mid-command.

    Unlike a plain :class:`CommunicationError` (a deterministic program
    error that retrying would only repeat), a ``WorkerError`` is an
    infrastructure fault: the supervision layer may respawn the pool and
    retry, or fall back to the single-process path, per its
    ``on_failure`` policy.  ``crashes`` holds one structured
    :class:`WorkerCrash` per failed worker.
    """

    def __init__(self, message: str,
                 crashes: Tuple[WorkerCrash, ...] = ()):
        super().__init__(message)
        self.crashes = tuple(crashes)


class PlanError(ReproError, RuntimeError):
    """A collective plan is internally inconsistent.

    Raised when a planner produces (or is given) a phase plan whose messages do
    not conserve payload, reference ranks outside the communicator, or violate
    the aggregation invariants described in DESIGN.md.
    """


class TopologyError(ReproError, ValueError):
    """A machine description or rank mapping is inconsistent."""


class SolverError(ReproError, RuntimeError):
    """An AMG setup or solve failed (singular level, empty coarse grid, ...)."""
