"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the package with a single ``except`` clause
while still letting programming errors (``TypeError`` from numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or structure)."""


class CommunicationError(ReproError, RuntimeError):
    """The simulated MPI runtime detected an illegal communication.

    Examples: posting a receive that is never matched, waiting on an inactive
    persistent request, message size mismatch between sender and receiver.
    """


class PlanError(ReproError, RuntimeError):
    """A collective plan is internally inconsistent.

    Raised when a planner produces (or is given) a phase plan whose messages do
    not conserve payload, reference ranks outside the communicator, or violate
    the aggregation invariants described in DESIGN.md.
    """


class TopologyError(ReproError, ValueError):
    """A machine description or rank mapping is inconsistent."""


class SolverError(ReproError, RuntimeError):
    """An AMG setup or solve failed (singular level, empty coarse grid, ...)."""
