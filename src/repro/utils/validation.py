"""Lightweight argument validation helpers.

These raise :class:`repro.utils.errors.ValidationError` with messages that name
the offending argument, which keeps error reporting uniform across the library
without pulling in a validation framework.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.utils.errors import ValidationError


def check_type(name: str, value: Any, types) -> Any:
    """Check that ``value`` is an instance of ``types`` and return it."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise ValidationError(
            f"{name} must be of type {expected}, got {type(value).__name__}"
        )
    return value


def check_positive_int(name: str, value: Any) -> int:
    """Check that ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return int(value)


def check_value_preserving_cast(source: np.dtype, target: np.dtype) -> None:
    """Reject casts from ``source`` into ``target`` that would corrupt values.

    Within-kind narrowing (float64 -> float32) is C-style assignment and
    allowed; cross-kind casts must be value-preserving — int64 into a float
    buffer or complex into a real one would corrupt data silently.  Shared by
    the per-rank collective executor and the world exchange engine, so both
    reject exactly the same inputs.
    """
    if source != target and source.kind != target.kind \
            and not np.can_cast(source, target, casting="safe"):
        raise ValidationError(
            f"values of dtype {source} cannot be safely cast to the "
            f"collective's {target}; cast explicitly if truncation "
            "is intended"
        )


def check_non_negative_int(name: str, value: Any) -> int:
    """Check that ``value`` is an integer greater than or equal to zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_in_range(name: str, value: float, low: float, high: float,
                   *, inclusive: bool = True) -> float:
    """Check that a scalar lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Check that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_index_array(name: str, values: Iterable[int], *,
                      upper: int | None = None) -> np.ndarray:
    """Validate an array of non-negative indices, optionally bounded above.

    Returns the values as a contiguous ``int64`` numpy array.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError(f"{name} must contain integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min(initial=0) < 0:
        raise ValidationError(f"{name} must be non-negative")
    if upper is not None and arr.size and arr.max() >= upper:
        raise ValidationError(
            f"{name} contains index {int(arr.max())} >= upper bound {upper}"
        )
    return np.ascontiguousarray(arr)


def check_monotone(name: str, values: Sequence[float], *, strict: bool = False) -> np.ndarray:
    """Check that a sequence is non-decreasing (or strictly increasing)."""
    arr = np.asarray(values)
    if arr.size <= 1:
        return arr
    diffs = np.diff(arr)
    if strict:
        if not np.all(diffs > 0):
            raise ValidationError(f"{name} must be strictly increasing")
    else:
        if not np.all(diffs >= 0):
            raise ValidationError(f"{name} must be non-decreasing")
    return arr
