"""Shared utilities used by every ``repro`` subpackage.

The helpers here are intentionally small and dependency-free so that the
substrate packages (:mod:`repro.topology`, :mod:`repro.simmpi`, ...) never have
to import each other just to validate arguments or format a report table.
"""

from repro.utils.errors import (
    ReproError,
    ValidationError,
    CommunicationError,
    PlanError,
)
from repro.utils.validation import (
    check_positive_int,
    check_non_negative_int,
    check_in_range,
    check_probability,
    check_index_array,
    check_monotone,
    check_type,
)
from repro.utils.arrays import (
    as_index_array,
    concatenate_or_empty,
    counts_to_displs,
    displs_to_counts,
    invert_permutation,
    partition_evenly,
    stable_unique,
)
from repro.utils.formatting import (
    format_bytes,
    format_seconds,
    format_table,
    format_series,
)
from repro.utils.timing import Timer, WallClock

__all__ = [
    "ReproError",
    "ValidationError",
    "CommunicationError",
    "PlanError",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_probability",
    "check_index_array",
    "check_monotone",
    "check_type",
    "as_index_array",
    "concatenate_or_empty",
    "counts_to_displs",
    "displs_to_counts",
    "invert_permutation",
    "partition_evenly",
    "stable_unique",
    "format_bytes",
    "format_seconds",
    "format_table",
    "format_series",
    "Timer",
    "WallClock",
]
