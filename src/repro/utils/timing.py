"""Wall-clock timing helpers.

The paper times 1000 ``MPI_Start``/``MPI_Wait`` pairs, repeats each measurement
three times, and keeps the minimum average.  :class:`Timer` implements that
min-of-averages protocol for the parts of this library whose wall-clock cost is
meaningful in pure Python (planning, setup); modeled communication times come
from :mod:`repro.perfmodel` instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


class WallClock:
    """Monotonic wall clock with an injectable time source (for tests)."""

    def __init__(self, source: Callable[[], float] | None = None):
        self._source = source or time.perf_counter

    def now(self) -> float:
        """Return the current time in seconds."""
        return self._source()


@dataclass
class Timer:
    """Min-of-averages repetition timer mirroring the paper's protocol.

    ``measure`` runs ``fn`` ``iterations`` times per trial, for ``trials``
    trials, and returns the minimum over trials of the average per-call time.
    """

    iterations: int = 1000
    trials: int = 3
    clock: WallClock = field(default_factory=WallClock)

    def measure(self, fn: Callable[[], None]) -> float:
        """Return the minimum average per-iteration time of ``fn`` in seconds."""
        if self.iterations <= 0 or self.trials <= 0:
            raise ValueError("iterations and trials must be positive")
        best = float("inf")
        for _ in range(self.trials):
            start = self.clock.now()
            for _ in range(self.iterations):
                fn()
            elapsed = self.clock.now() - start
            best = min(best, elapsed / self.iterations)
        return best

    def measure_once(self, fn: Callable[[], None]) -> float:
        """Time a single call to ``fn`` (used for setup/initialisation costs)."""
        start = self.clock.now()
        fn()
        return self.clock.now() - start
