"""Array helpers shared by the pattern, collective, and sparse layers.

Everything here operates on plain numpy arrays and is deliberately free of any
knowledge about communicators or matrices; the functions encode the handful of
index manipulations (counts/displacements, stable uniques, even partitions)
that MPI-style code needs constantly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.errors import ValidationError

INDEX_DTYPE = np.int64


def as_index_array(values: Iterable[int]) -> np.ndarray:
    """Return ``values`` as a contiguous int64 array (empty allowed)."""
    arr = np.asarray(values, dtype=INDEX_DTYPE)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    return np.ascontiguousarray(arr)


def concatenate_or_empty(arrays: Sequence[np.ndarray], dtype=INDEX_DTYPE) -> np.ndarray:
    """Concatenate arrays, returning a typed empty array when the list is empty."""
    arrays = [np.asarray(a) for a in arrays if np.asarray(a).size]
    if not arrays:
        return np.empty(0, dtype=dtype)
    return np.concatenate(arrays).astype(dtype, copy=False)


def counts_to_displs(counts: Sequence[int]) -> np.ndarray:
    """Convert per-destination counts into exclusive-prefix displacements.

    The returned array has ``len(counts) + 1`` entries so that the data for
    destination ``i`` occupies ``buf[displs[i]:displs[i + 1]]`` — the same
    convention as MPI's ``sdispls``/``rdispls`` plus a trailing total.
    """
    counts = np.asarray(counts, dtype=INDEX_DTYPE)
    if counts.size and counts.min() < 0:
        raise ValidationError("counts must be non-negative")
    displs = np.zeros(counts.size + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=displs[1:])
    return displs


def displs_to_counts(displs: Sequence[int]) -> np.ndarray:
    """Convert an exclusive-prefix displacement array back into counts."""
    displs = np.asarray(displs, dtype=INDEX_DTYPE)
    if displs.size == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    counts = np.diff(displs)
    if counts.size and counts.min() < 0:
        raise ValidationError("displacements must be non-decreasing")
    return counts


def invert_permutation(perm: Sequence[int]) -> np.ndarray:
    """Return the inverse of a permutation given as an index array."""
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    n = perm.size
    if n and (perm.min() < 0 or perm.max() >= n):
        raise ValidationError("not a permutation: entries out of range")
    inverse = np.empty(n, dtype=INDEX_DTYPE)
    inverse[perm] = np.arange(n, dtype=INDEX_DTYPE)
    if n and not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValidationError("not a permutation: repeated entries")
    return inverse


def partition_evenly(total: int, parts: int) -> np.ndarray:
    """Split ``total`` items into ``parts`` contiguous chunks as evenly as possible.

    Returns an array of ``parts + 1`` offsets.  The first ``total % parts``
    chunks receive one extra item, matching the row-partitioning convention
    used by Hypre's ``IJMatrix`` interface.
    """
    if parts <= 0:
        raise ValidationError(f"parts must be > 0, got {parts}")
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    base = total // parts
    extra = total % parts
    sizes = np.full(parts, base, dtype=INDEX_DTYPE)
    sizes[:extra] += 1
    offsets = np.zeros(parts + 1, dtype=INDEX_DTYPE)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def gather_ranges(values: np.ndarray, starts: np.ndarray,
                  lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i]:starts[i] + lengths[i]]`` for every ``i``.

    The vectorized form of a slice-and-concatenate loop: one index array is
    built with ``repeat``/``arange`` and applied in a single fancy index, so
    unpacking N variable-length ranges costs O(total) numpy work instead of
    N Python-level slices.  This is the parse primitive of the packed setup
    gathers (``_gather_pattern`` and the batched ``init_many`` form).
    """
    starts = np.asarray(starts, dtype=INDEX_DTYPE)
    lengths = np.asarray(lengths, dtype=INDEX_DTYPE)
    if starts.shape != lengths.shape:
        raise ValidationError("starts and lengths must be parallel arrays")
    if lengths.size and lengths.min() < 0:
        raise ValidationError("lengths must be non-negative")
    offsets = counts_to_displs(lengths)
    total = int(offsets[-1])
    index = np.arange(total, dtype=INDEX_DTYPE)
    index += np.repeat(starts - offsets[:-1], lengths)
    return values[index]


def buffer_writable(array: np.ndarray) -> bool:
    """True when the array's memory can be written through any alias.

    Walks the ``base`` chain, so a read-only view of a writable buffer still
    counts as writable — the check immutable containers use to decide whether
    a caller's array must be copied before freezing.
    """
    while True:
        if array.flags.writeable:
            return True
        base = array.base
        if not isinstance(base, np.ndarray):
            return False
        array = base


def frozen_copy_on_write(arr: np.ndarray, source) -> np.ndarray:
    """Freeze ``arr``, copying first when it may alias caller-writable memory.

    ``source`` is the caller-supplied object ``arr`` was coerced from.  The
    one shared implementation of the copy-if-shared-writable rule used by
    every immutable int64 container (CommPattern item arrays, SlotTable
    columns).
    """
    if isinstance(source, np.ndarray) and np.may_share_memory(arr, source) \
            and buffer_writable(source):
        arr = arr.copy()
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


def run_starts_mask(*columns: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first row of every run of equal keys.

    ``columns`` are parallel pre-sorted key columns; row ``k`` starts a new
    run when any key differs from row ``k - 1`` (row 0 always does).  This is
    the boundary step of every lexsort-group-reduce pass in the planner,
    validator, deduplicator, and exchange compiler.
    """
    first = columns[0]
    mask = np.empty(first.size, dtype=bool)
    if first.size == 0:
        return mask
    mask[0] = True
    np.not_equal(first[1:], first[:-1], out=mask[1:])
    for column in columns[1:]:
        np.logical_or(mask[1:], column[1:] != column[:-1], out=mask[1:])
    return mask


def group_rows_to_csr(n_keys: int, primary: np.ndarray, secondary: np.ndarray,
                      items: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack ``(primary, secondary, item)`` rows into per-primary-key CSR columns.

    Returns ``(offsets, secondaries, item_offsets, items)``: the edges of key
    ``p`` occupy slots ``offsets[p]:offsets[p + 1]``, edge ``e`` pairs key
    ``secondaries[e]`` with ``items[item_offsets[e]:item_offsets[e + 1]]``.
    The sort is one *stable* lexsort by ``(primary, secondary)``, so items
    keep their input order within each edge — the invariant that makes the
    CSR build byte-identical to edge-by-edge dict accumulation.  This is the
    one shared grouping pass behind ``CommPattern.from_edge_arrays`` and the
    comm-package builder.
    """
    if items.size == 0:
        return (np.zeros(n_keys + 1, dtype=INDEX_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.zeros(1, dtype=INDEX_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE))
    order = np.lexsort((secondary, primary))
    primary, secondary, items = primary[order], secondary[order], items[order]
    starts = run_starts_mask(primary, secondary)
    boundaries = np.flatnonzero(starts)
    item_offsets = np.empty(boundaries.size + 1, dtype=INDEX_DTYPE)
    item_offsets[:-1] = boundaries
    item_offsets[-1] = items.size
    offsets = counts_to_displs(np.bincount(primary[starts], minlength=n_keys))
    return offsets, secondary[starts], item_offsets, np.ascontiguousarray(items)


def freeze_columns(*columns: np.ndarray) -> None:
    """Mark arrays read-only in place (producer-side freeze before storage).

    Columns a producer freezes before handing them to an immutable container
    (e.g. ``CommPattern.from_csr``) are stored without a defensive copy.
    """
    for column in columns:
        if column.flags.writeable:
            column.flags.writeable = False


def stable_unique(values: Sequence[int]) -> np.ndarray:
    """Return unique values preserving first-occurrence order.

    ``np.unique`` sorts; communication code frequently needs the *stable*
    variant so that send buffers keep the order the application packed them in.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return arr.astype(INDEX_DTYPE, copy=False)
    _, first_index = np.unique(arr, return_index=True)
    return arr[np.sort(first_index)].astype(INDEX_DTYPE, copy=False)
