"""The distributed AMG solve phase: whole V-cycles through the exchange layer.

The seed :class:`~repro.amg.solver.BoomerAMGSolver` validates the hierarchy by
relaxing and grid-transferring on the assembled global operators; the classes
here execute the same V-cycle *distributed*, so every SpMV and smoother halo
exchange of every hierarchy level — the irregular communication the paper
times inside BoomerAMG's solve phase — actually runs through the
neighborhood collectives:

* :class:`DistributedVCycle` is one rank's V-cycle on the envelope-routed
  runtime (one instance per simulated-rank thread, the pinned reference):
  per level a :class:`~repro.sparse.spmv.DistributedSpMV` for the operator,
  a :class:`~repro.amg.relax.DistributedJacobi` smoother, and two
  :class:`~repro.sparse.spmv.DistributedRectSpMV` grid transfers (restrict
  ``Pᵀ r``, prolong-correct ``x + P e``), each with its own communication
  pattern derived from the transfer operator's column map.
* :class:`WorldVCycle` is the world-stepped twin: the same per-level
  exchanges compiled once and registered with the batched
  :class:`~repro.simmpi.engine.ExchangeEngine`, so one ``cycle`` call runs a
  whole V-cycle for *all* ranks with O(phases) numpy calls per level — no
  per-message envelopes, no threads, byte-identical results and identical
  data-path profiler totals.
* :class:`WorldAMGSolver` is the ``BoomerAMGSolver.solve``-equivalent built
  on top: stationary world-stepped V-cycle iterations with residual norms
  computed through the fine-level world SpMV, so no assembled-matrix
  multiply remains on the data path.

The coarsest-level direct solve needs every rank to see the full coarse
right-hand side.  Instead of an object allgather on the control plane, the
gather is expressed as one more neighborhood collective
(:func:`coarse_gather_pattern`: every owning rank sends its coarse entries to
every other rank) and executed through the same engine/envelope machinery as
the halo exchanges — batching the last setup-gather-style collective of the
solve phase through the data path, with identical traffic on both runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.amg.hierarchy import AMGHierarchy, build_hierarchy
from repro.amg.relax import DistributedJacobi, WorldJacobi
from repro.amg.solver import SolveResult
from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.api import (
    CollectiveRequest,
    neighbor_alltoallv_init_many,
    neighbor_alltoallv_init_world,
)
from repro.collectives.autotune import (
    DecisionTrace,
    OnlineSelector,
    is_auto_variant,
)
from repro.collectives.persistent import (
    PersistentNeighborCollective,
    WorldNeighborCollective,
)
from repro.collectives.plan import Variant
from repro.pattern.comm_pattern import CommPattern
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import ExchangeEngine
from repro.simmpi.profiler import TrafficProfiler
from repro.sparse.comm_pkg import build_comm_pkg, build_transfer_comm_pkg
from repro.sparse.partition import RowPartition
from repro.sparse.spmv import (
    DistributedRectSpMV,
    DistributedSpMV,
    WorldRectSpMV,
    WorldSpMV,
    check_mapping_covers,
)
from repro.topology.mapping import RankMapping
from repro.utils.arrays import INDEX_DTYPE
from repro.utils.errors import SolverError, ValidationError


def coarse_gather_pattern(partition: RowPartition, *,
                          dtype=np.float64, item_size: int = 1) -> CommPattern:
    """The all-gather of the coarsest level as a neighborhood pattern.

    Every rank owning coarse rows sends them to every *other* rank (item ids
    are global coarse row indices), so after one exchange round each rank
    holds the full coarse right-hand side: its own entries plus everything
    the pattern delivered.  Expressing the gather as a pattern lets the
    coarse solve ride the same collective machinery — and the same traffic
    accounting — as the halo exchanges, on both the envelope-routed and the
    world-stepped runtime.
    """
    n_ranks = partition.n_ranks
    srcs: List[int] = []
    dests: List[int] = []
    item_arrays: List[np.ndarray] = []
    for src in partition.active_ranks().tolist():
        items = partition.rows_of(src)
        for dest in range(n_ranks):
            if dest == src:
                continue
            srcs.append(src)
            dests.append(dest)
            item_arrays.append(items)
    return CommPattern.from_edge_lists(
        n_ranks, np.asarray(srcs, dtype=INDEX_DTYPE),
        np.asarray(dests, dtype=INDEX_DTYPE), item_arrays,
        dtype=dtype, item_size=item_size)


def _coarse_factorized(matrix: sp.spmatrix):
    """Factorized direct solver of the coarsest operator (None for 0 rows)."""
    return spla.factorized(sp.csc_matrix(matrix)) if matrix.shape[0] > 0 else None


def _check_cycle_arguments(hierarchy: AMGHierarchy, mapping: RankMapping,
                           pre_sweeps: int, post_sweeps: int) -> None:
    if hierarchy.n_levels == 0:
        raise SolverError("hierarchy has no levels")
    if pre_sweeps < 0 or post_sweeps < 0:
        raise ValidationError("sweep counts must be non-negative")
    check_mapping_covers(mapping, hierarchy.levels[0].matrix.n_ranks)


def _check_level_profilers(level_profilers, n_levels: int) -> None:
    if level_profilers is not None and len(level_profilers) != n_levels:
        raise ValidationError(
            f"level_profilers must have one entry per level ({n_levels}), "
            f"got {len(level_profilers)}"
        )


# -- per-rank V-cycle on the envelope-routed runtime ---------------------------------


@dataclass
class _DistributedLevel:
    """One rank's collectives for one (non-coarsest) level."""

    spmv: DistributedSpMV
    smoother: DistributedJacobi
    restrict: DistributedRectSpMV
    prolong: DistributedRectSpMV


class DistributedVCycle:
    """One rank's V-cycle over a distributed AMG hierarchy (envelope runtime).

    Construction is collective: every rank of the communicator builds its own
    instance with the same hierarchy and mapping, in the same order, exactly
    like the SpMV and smoother it is made of.  ``cycle`` then runs one
    V-cycle on this rank's rows; the ranks advance in lockstep through the
    per-level exchanges.

    ``level_profilers`` (optional, one :class:`TrafficProfiler` per level)
    attaches per-level traffic accounting: each level's collectives are built
    on a duplicated communicator whose traffic callback records into that
    level's profiler — the envelope-side mirror of the world V-cycle's
    per-level engines.
    """

    def __init__(self, comm: SimComm, hierarchy: AMGHierarchy,
                 mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 pre_sweeps: int = 1, post_sweeps: int = 1,
                 omega: float = 2.0 / 3.0,
                 level_profilers: Optional[Sequence[TrafficProfiler]] = None):
        _check_cycle_arguments(hierarchy, mapping, pre_sweeps, post_sweeps)
        _check_level_profilers(level_profilers, hierarchy.n_levels)
        self.hierarchy = hierarchy
        self.mapping = mapping
        self.rank = comm.rank
        self.pre_sweeps = int(pre_sweeps)
        self.post_sweeps = int(post_sweeps)
        self.omega = float(omega)
        n_levels = hierarchy.n_levels

        def level_comm(index: int) -> SimComm:
            duplicate = comm.dup()
            if level_profilers is not None:
                duplicate.set_traffic_callback(
                    level_profilers[index].record_envelope)
            return duplicate

        # Every level's collectives — operator SpMV, restriction, prolongation,
        # plus the coarsest level's gather-to-all — initialise through ONE
        # batched setup gather (``neighbor_alltoallv_init_many``) instead of
        # one allgather round per collective: the collectives that come back
        # are byte-identical, the setup synchronisation count drops from
        # O(levels) to one.  Each collective still executes on its own
        # duplicate of its level's communicator, so per-level traffic
        # callbacks see exactly the envelopes they always did.
        requests: List[CollectiveRequest] = []
        level_comms: List[SimComm] = []
        for index in range(n_levels - 1):
            lcomm = level_comm(index)
            level_comms.append(lcomm)
            for pkg in (build_comm_pkg(hierarchy.levels[index].matrix),
                        build_transfer_comm_pkg(
                            hierarchy.restriction_matrix(index)),
                        build_transfer_comm_pkg(
                            hierarchy.prolongation_matrix(index))):
                requests.append(CollectiveRequest(
                    send_items=pkg.send_map(self.rank),
                    recv_items=pkg.recv_map(self.rank),
                    comm=lcomm.dup()))

        # Coarsest level: the gather-to-all collective plus a (redundant,
        # deterministic) local factorization of the assembled coarse operator
        # — the distributed analogue of hypre's gathered Gaussian elimination.
        coarsest = hierarchy.levels[-1]
        self._coarse_partition = coarsest.matrix.partition
        self._coarse_rows = self._coarse_partition.rows_of(self.rank)
        self._coarse_solver = _coarse_factorized(coarsest.matrix.matrix)
        self._coarse_collective: PersistentNeighborCollective | None = None
        pattern = coarse_gather_pattern(self._coarse_partition)
        if pattern.n_messages:
            gather_comm = level_comm(n_levels - 1)
            requests.append(CollectiveRequest(
                send_items=pattern.send_map(self.rank),
                recv_items=pattern.recv_map(self.rank),
                comm=gather_comm.dup()))

        collectives = neighbor_alltoallv_init_many(comm, requests, mapping,
                                                   variant=variant,
                                                   strategy=strategy)
        if pattern.n_messages:
            self._coarse_collective = collectives[-1]

        self.levels: List[_DistributedLevel] = []
        for index in range(n_levels - 1):
            lcomm = level_comms[index]
            spmv_coll, restrict_coll, prolong_coll = collectives[3 * index:
                                                                 3 * index + 3]
            spmv = DistributedSpMV(lcomm, hierarchy.levels[index].matrix,
                                   mapping, variant=variant, strategy=strategy,
                                   collective=spmv_coll)
            smoother = DistributedJacobi(spmv, omega=self.omega)
            restrict = DistributedRectSpMV(
                lcomm, hierarchy.restriction_matrix(index), mapping,
                variant=variant, strategy=strategy, collective=restrict_coll)
            prolong = DistributedRectSpMV(
                lcomm, hierarchy.prolongation_matrix(index), mapping,
                variant=variant, strategy=strategy, collective=prolong_coll)
            self.levels.append(_DistributedLevel(spmv=spmv, smoother=smoother,
                                                 restrict=restrict,
                                                 prolong=prolong))

    # -- the cycle ------------------------------------------------------------

    def _coarse_solve(self, b_local: np.ndarray) -> np.ndarray:
        """Gather the coarse RHS through the collective, solve, keep owned rows."""
        if self._coarse_solver is None:
            return b_local.copy()
        n_coarse = self._coarse_partition.n_rows
        full = np.empty(n_coarse, dtype=np.float64)
        if self._coarse_collective is not None:
            halo = self._coarse_collective.exchange(b_local)
            full[self._coarse_collective.recv_item_ids] = halo
        full[self._coarse_rows] = b_local
        if self._coarse_rows.size == 0:
            # Nothing owned here: participate in the gather, skip the solve.
            return b_local.copy()
        solution = np.asarray(self._coarse_solver(full), dtype=np.float64)
        return solution[self._coarse_rows]

    def _cycle(self, index: int, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        if index == self.hierarchy.n_levels - 1:
            if self.hierarchy.levels[index].matrix.n_rows == 0:
                return x
            return self._coarse_solve(b)
        level = self.levels[index]
        x = level.smoother.smooth(b, x, sweeps=self.pre_sweeps)
        residual = b - level.spmv.multiply(x)
        coarse_b = level.restrict.multiply(residual)
        coarse_x = np.zeros(level.restrict.n_local_rows, dtype=np.float64)
        coarse_x = self._cycle(index + 1, coarse_b, coarse_x)
        x = x + level.prolong.multiply(coarse_x)
        return level.smoother.smooth(b, x, sweeps=self.post_sweeps)

    def cycle(self, b_local: np.ndarray, x_local: np.ndarray) -> np.ndarray:
        """Apply one V-cycle to this rank's rows of ``A x = b`` (collective)."""
        b_local = np.asarray(b_local, dtype=np.float64)
        x_local = np.asarray(x_local, dtype=np.float64)
        first, last = self.hierarchy.levels[0].matrix.partition.row_range(self.rank)
        n = last - first
        if b_local.shape != (n,) or x_local.shape != (n,):
            raise ValidationError(f"b_local and x_local must have shape ({n},)")
        return self._cycle(0, b_local, x_local)


# -- world-stepped V-cycle through the exchange engine -------------------------------


@dataclass
class _WorldLevel:
    """All ranks' world collectives for one (non-coarsest) level."""

    spmv: WorldSpMV
    smoother: WorldJacobi
    restrict: WorldRectSpMV
    prolong: WorldRectSpMV


class WorldVCycle:
    """A whole V-cycle for all ranks, stepped through the exchange engine.

    Every level's halo exchanges (operator SpMV inside the smoother and the
    residual, restrict ``Pᵀ``, prolong ``P``) are compiled once and
    registered with a world :class:`~repro.simmpi.engine.ExchangeEngine`;
    ``cycle`` then advances the whole communicator through
    pre-smooth → residual → restrict → coarse-solve → prolong-correct →
    post-smooth with O(phases) numpy calls per level and no per-message
    envelopes anywhere on the data path.  Results are byte-identical to
    running :class:`DistributedVCycle` on every rank of the envelope-routed
    runtime, and numerically identical (to rounding) to the seed
    :meth:`~repro.amg.solver.BoomerAMGSolver.vcycle` on the assembled
    operators — the solve-phase equivalence suite pins both.

    Pass ``engine`` to register all levels with a shared engine (e.g. from
    :meth:`~repro.simmpi.world.SimWorld.exchange_engine`), ``profiler`` for a
    private engine around one profiler, or ``level_profilers`` (one per
    level) for per-level engines whose traffic totals mirror the per-level
    profilers of the envelope path.  ``runtime`` / ``n_workers`` select and
    size the backend of every engine the cycle creates itself (``"engine"``
    fused single-process, ``"procs"`` shared-memory worker pool); ``close``
    — or context-manager exit — releases those engines' workers and shared
    segments deterministically (a caller-supplied engine stays open).

    ``variant="auto"`` turns on online selection: every candidate variant's
    exchanges are registered up front (the plan cache keeps this cheap), an
    :class:`~repro.collectives.autotune.OnlineSelector` — seeded from
    ``model``'s modeled times when given — picks each level's variant per
    cycle, and the engines' per-round timing hook feeds it measured
    seconds.  Switching variants is a per-level table swap, results stay
    byte-identical to any fixed variant, and every decision lands on
    :attr:`decision_trace`.  ``selector`` supplies a configured (fresh)
    selector, ``clock`` a deterministic timer for the cycle's own engines.
    """

    def __init__(self, hierarchy: AMGHierarchy, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 pre_sweeps: int = 1, post_sweeps: int = 1,
                 omega: float = 2.0 / 3.0,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None,
                 level_profilers: Optional[Sequence[TrafficProfiler]] = None,
                 runtime: str | None = None,
                 n_workers: int | None = None,
                 on_failure: str | None = None,
                 selector: OnlineSelector | None = None,
                 model=None,
                 clock=None):
        _check_cycle_arguments(hierarchy, mapping, pre_sweeps, post_sweeps)
        _check_level_profilers(level_profilers, hierarchy.n_levels)
        if level_profilers is not None and engine is not None:
            raise ValidationError(
                "pass either a shared engine or per-level profilers, not both"
            )
        if profiler is not None and (engine is not None
                                     or level_profilers is not None):
            raise ValidationError(
                "pass either a profiler (for a private shared engine) or an "
                "engine / per-level profilers, not both"
            )
        if engine is not None and (runtime is not None or n_workers is not None
                                   or on_failure is not None
                                   or clock is not None):
            raise ValidationError(
                "a shared engine already fixed its runtime; pass runtime/"
                "n_workers/on_failure/clock only when the cycle creates its "
                "own engines"
            )
        auto = is_auto_variant(variant)
        if not auto and (selector is not None or model is not None):
            raise ValidationError(
                "selector= and model= configure online selection; pass "
                "variant='auto' to enable it"
            )
        if auto:
            selector = selector if selector is not None else OnlineSelector()
            if selector.seeded_levels():
                raise ValidationError(
                    "variant='auto' needs a fresh selector (levels are "
                    "seeded by the cycle itself)"
                )
        self.hierarchy = hierarchy
        self.mapping = mapping
        self.n_ranks = hierarchy.levels[0].matrix.n_ranks
        self.pre_sweeps = int(pre_sweeps)
        self.post_sweeps = int(post_sweeps)
        self.omega = float(omega)
        self._selector = selector if auto else None
        self._active: Dict[int, Variant] = {}
        n_levels = hierarchy.n_levels
        if level_profilers is not None:
            engines = [ExchangeEngine(self.n_ranks, profiler=level_profiler,
                                      runtime=runtime, n_workers=n_workers,
                                      on_failure=on_failure, clock=clock)
                       for level_profiler in level_profilers]
            self._owned_engines = list(engines)
        else:
            shared = engine if engine is not None else \
                ExchangeEngine(self.n_ranks, profiler=profiler,
                               runtime=runtime, n_workers=n_workers,
                               on_failure=on_failure, clock=clock)
            engines = [shared] * n_levels
            self._owned_engines = [] if engine is not None else [shared]
        self.engines = engines
        self._unique_engines = list({id(e): e for e in engines}.values())

        # In auto mode every candidate's exchanges register up front against
        # the same engines (the plan/exchange cache makes the extra variants
        # cheap); switching a level's variant is then a pure table swap.
        build_variants = self._selector.candidates if auto \
            else (Variant(variant),)
        self._variant_levels: Dict[Variant, List[_WorldLevel]] = {}
        for build_variant in build_variants:
            built: List[_WorldLevel] = []
            for index in range(n_levels - 1):
                spmv = WorldSpMV(hierarchy.levels[index].matrix, mapping,
                                 variant=build_variant, strategy=strategy,
                                 engine=engines[index])
                smoother = WorldJacobi(spmv, omega=self.omega)
                restrict = WorldRectSpMV(hierarchy.restriction_matrix(index),
                                         mapping, variant=build_variant,
                                         strategy=strategy,
                                         engine=engines[index])
                prolong = WorldRectSpMV(hierarchy.prolongation_matrix(index),
                                        mapping, variant=build_variant,
                                        strategy=strategy,
                                        engine=engines[index])
                built.append(_WorldLevel(spmv=spmv, smoother=smoother,
                                         restrict=restrict, prolong=prolong))
            self._variant_levels[build_variant] = built
        self.levels = self._variant_levels[build_variants[0]]

        coarsest = hierarchy.levels[-1]
        self._coarse_partition = coarsest.matrix.partition
        self._coarse_solver = _coarse_factorized(coarsest.matrix.matrix)
        self._coarse_collectives: Dict[Variant, WorldNeighborCollective] = {}
        self._coarse_collective: WorldNeighborCollective | None = None
        pattern = coarse_gather_pattern(self._coarse_partition)
        if pattern.n_messages:
            for build_variant in build_variants:
                self._coarse_collectives[build_variant] = \
                    neighbor_alltoallv_init_world(
                        pattern, mapping, variant=build_variant,
                        strategy=strategy, engine=engines[n_levels - 1])
            self._coarse_collective = self._coarse_collectives[
                build_variants[0]]

        # Residual norms of an iterative solve need the fine operator even on
        # a single-level hierarchy, where no smoothing level exists.
        self.fine_spmv = self.levels[0].spmv if self.levels else \
            WorldSpMV(hierarchy.levels[0].matrix, mapping,
                      variant=build_variants[0], strategy=strategy,
                      engine=engines[0])

        self._observed_engines: List[ExchangeEngine] = []
        if auto:
            self._seed_selector(model)
            self._attach_observers()

    # -- online selection -----------------------------------------------------

    @property
    def selector(self) -> OnlineSelector | None:
        """The online selector (``None`` unless ``variant="auto"``)."""
        return self._selector

    @property
    def decision_trace(self) -> DecisionTrace | None:
        """Every seed/probe/commit/switch decision (``None`` on fixed variants)."""
        return self._selector.trace if self._selector is not None else None

    def _seed_selector(self, model) -> None:
        """Seed every communicating level from the cost model's plan times.

        A level's cycle cost under one variant is the modeled time of its
        operator-SpMV exchange once per smoother sweep plus once for the
        residual, plus one restrict and one prolong exchange; the coarsest
        level contributes its gather.  Without a model every candidate
        seeds equal (zero), so the probe schedule alone decides.
        """
        weight = self.pre_sweeps + self.post_sweeps + 1
        for index in range(self.hierarchy.n_levels - 1):
            modeled = {}
            for build_variant, built in self._variant_levels.items():
                level = built[index]
                if model is None:
                    modeled[build_variant] = 0.0
                else:
                    modeled[build_variant] = (
                        weight * level.spmv.collective.plan.modeled_time(model)
                        + level.restrict.collective.plan.modeled_time(model)
                        + level.prolong.collective.plan.modeled_time(model))
            self._selector.seed(index, modeled)
        if self._coarse_collectives:
            modeled = {
                build_variant: (0.0 if model is None
                                else collective.plan.modeled_time(model))
                for build_variant, collective
                in self._coarse_collectives.items()
            }
            self._selector.seed(self.hierarchy.n_levels - 1, modeled)

    def _attach_observers(self) -> None:
        """Point every engine's timing hook at the selector, by handle."""
        tables: Dict[int, Dict[int, int]] = {}
        engines_by_id: Dict[int, ExchangeEngine] = {}

        def note(collective, level_index: int) -> None:
            tables.setdefault(id(collective.engine), {})[
                collective.handle] = level_index
            engines_by_id[id(collective.engine)] = collective.engine

        for built in self._variant_levels.values():
            for index, level in enumerate(built):
                note(level.spmv.collective, index)
                note(level.restrict.collective, index)
                note(level.prolong.collective, index)
        for collective in self._coarse_collectives.values():
            note(collective, self.hierarchy.n_levels - 1)
        for engine_id, table in tables.items():
            observed = engines_by_id[engine_id]
            observed.set_run_observer(self._make_observer(table))
            self._observed_engines.append(observed)

    def _make_observer(self, table: Dict[int, int]):
        selector = self._selector

        def observer(handle: int, seconds: float) -> None:
            level = table.get(handle)
            if level is not None:
                selector.record(level, seconds)

        return observer

    def _recovery_events(self) -> int:
        """Supervision events recorded so far across this cycle's engines."""
        return sum(len(used.events) for used in self._unique_engines)

    @property
    def n_rows(self) -> int:
        """Global rows of the fine-level operator."""
        return self.hierarchy.levels[0].matrix.n_rows

    def close(self) -> None:
        """Release every engine this cycle created (workers, shared segments)."""
        for observed in self._observed_engines:
            if not observed.closed:
                observed.set_run_observer(None)
        self._observed_engines = []
        for owned in self._owned_engines:
            owned.close()

    def __enter__(self) -> "WorldVCycle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def residual(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Fine-level residual ``b - A x`` through the world-stepped SpMV."""
        return b - self.fine_spmv.multiply(x)

    # -- the cycle ------------------------------------------------------------

    def _coarse_solve(self, b: np.ndarray) -> np.ndarray:
        """Direct solve of the coarsest system from engine-delivered values.

        The gather collective runs exactly as on the per-rank path (same
        plan, same wire traffic, accounted by the coarsest level's engine);
        the solve then consumes the delivered values: the full coarse RHS is
        reassembled from rank 0's received halo plus its owned slice, which
        is bitwise the global ``b`` — no assembled-vector shortcut.
        """
        if self._coarse_solver is None:
            return np.zeros(self._coarse_partition.n_rows, dtype=np.float64)
        full = np.empty(self._coarse_partition.n_rows, dtype=np.float64)
        collective = self._coarse_active()
        if collective is not None:
            # Owned item ids are global coarse rows, so every rank's input
            # slice is one gather from the concatenated world columns.
            world = collective.world
            values = np.split(b[world.owned_items_all],
                              world.owned_offsets[1:-1])
            halos = collective.exchange(values)
            full[collective.recv_item_ids(0)] = halos[0]
        full[self._coarse_partition.rows_of(0)] = b[self._coarse_partition.rows_of(0)]
        return np.asarray(self._coarse_solver(full), dtype=np.float64)

    def _coarse_active(self) -> WorldNeighborCollective | None:
        """The coarse gather of the cycle's active (or fixed) variant."""
        if self._selector is None or not self._coarse_collectives:
            return self._coarse_collective
        active = self._active.get(self.hierarchy.n_levels - 1)
        if active is None:
            return self._coarse_collective
        return self._coarse_collectives[active]

    def _level(self, index: int) -> _WorldLevel:
        """The level's collectives under the cycle's active (or fixed) variant."""
        if self._selector is None:
            return self.levels[index]
        active = self._active.get(index)
        built = self.levels if active is None else self._variant_levels[active]
        return built[index]

    def _cycle(self, index: int, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        if index == self.hierarchy.n_levels - 1:
            if self.hierarchy.levels[index].matrix.n_rows == 0:
                return x
            return self._coarse_solve(b)
        level = self._level(index)
        x = level.smoother.smooth(b, x, sweeps=self.pre_sweeps)
        residual = b - level.spmv.multiply(x)
        coarse_b = level.restrict.multiply(residual)
        coarse_x = np.zeros(level.restrict.n_rows, dtype=np.float64)
        coarse_x = self._cycle(index + 1, coarse_b, coarse_x)
        x = x + level.prolong.multiply(coarse_x)
        return level.smoother.smooth(b, x, sweeps=self.post_sweeps)

    def cycle(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Apply one V-cycle to ``A x = b`` for the whole communicator.

        Under ``variant="auto"`` the cycle is one measurement window: the
        selector fixes each level's variant up front (so a cycle never
        mixes variants within a level), the engines time every exchange
        round into it, and a cycle overlapped by engine fault recovery is
        discarded rather than scored — supervision stalls are not protocol
        cost.
        """
        b = np.asarray(b, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        n = self.n_rows
        if b.shape != (n,) or x.shape != (n,):
            raise ValidationError(f"b and x must have shape ({n},)")
        if self._selector is None:
            return self._cycle(0, b, x)
        self._selector.begin_cycle()
        self._active = {level: self._selector.variant_for(level)
                        for level in self._selector.seeded_levels()}
        events_before = self._recovery_events()
        try:
            result = self._cycle(0, b, x)
        except BaseException:
            self._selector.abort_cycle()
            raise
        self._selector.end_cycle(
            recovered=self._recovery_events() > events_before)
        return result


class WorldAMGSolver:
    """BoomerAMG-style V-cycle solver executed entirely world-stepped.

    The drop-in distributed equivalent of
    :class:`~repro.amg.solver.BoomerAMGSolver`: same setup knobs, same
    :class:`~repro.amg.solver.SolveResult`, but relaxation, grid transfers,
    the coarse gather, *and* the convergence-check residuals all run through
    the batched exchange engine — the hierarchy traffic the experiments
    analyse is executed, not modeled, on every iteration.
    """

    def __init__(self, matrix, mapping: RankMapping, *,
                 strength_theta: float = 0.25,
                 max_levels: int = 25,
                 max_coarse_size: int = 16,
                 pre_sweeps: int = 1,
                 post_sweeps: int = 1,
                 omega: float = 2.0 / 3.0,
                 truncation: float = 0.0,
                 seed: int = 42,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 hierarchy: Optional[AMGHierarchy] = None,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None,
                 level_profilers: Optional[Sequence[TrafficProfiler]] = None,
                 runtime: str | None = None,
                 n_workers: int | None = None,
                 on_failure: str | None = None,
                 selector: OnlineSelector | None = None,
                 model=None,
                 clock=None):
        self.matrix = matrix
        self.hierarchy = hierarchy or build_hierarchy(
            matrix, strength_theta=strength_theta, max_levels=max_levels,
            max_coarse_size=max_coarse_size, truncation=truncation, seed=seed)
        if self.hierarchy.n_levels == 0:
            raise SolverError("hierarchy construction produced no levels")
        self.vcycle_executor = WorldVCycle(
            self.hierarchy, mapping, variant=variant, strategy=strategy,
            pre_sweeps=pre_sweeps, post_sweeps=post_sweeps, omega=omega,
            engine=engine, profiler=profiler, level_profilers=level_profilers,
            runtime=runtime, n_workers=n_workers, on_failure=on_failure,
            selector=selector, model=model, clock=clock)

    @property
    def selector(self) -> OnlineSelector | None:
        """The online selector (``None`` unless ``variant="auto"``)."""
        return self.vcycle_executor.selector

    @property
    def decision_trace(self) -> DecisionTrace | None:
        """Every autotuning decision of the solve (``None`` on fixed variants)."""
        return self.vcycle_executor.decision_trace

    def close(self) -> None:
        """Release the underlying V-cycle's engines (workers, shared segments)."""
        self.vcycle_executor.close()

    def __enter__(self) -> "WorldAMGSolver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def vcycle(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Apply one world-stepped V-cycle to ``A x = b`` starting from ``x``."""
        return self.vcycle_executor.cycle(b, x)

    def solve(self, b: np.ndarray, *, x0: Optional[np.ndarray] = None,
              tol: float = 1e-8, max_iterations: int = 100) -> SolveResult:
        """Solve ``A x = b`` with stationary world-stepped V-cycle iterations.

        Mirrors :meth:`BoomerAMGSolver.solve` exactly — same convergence
        criterion, same :class:`SolveResult` — with every residual computed
        through the fine-level world SpMV instead of the assembled matrix.
        """
        b = np.asarray(b, dtype=np.float64)
        n = self.matrix.n_rows
        if b.shape != (n,):
            raise ValidationError(f"b must have shape ({n},)")
        x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ValidationError(f"x0 must have shape ({n},)")
        residual_norms = [float(np.linalg.norm(
            self.vcycle_executor.residual(b, x)))]
        if residual_norms[0] == 0.0:
            return SolveResult(solution=x, residual_norms=residual_norms,
                               iterations=0, converged=True,
                               decision_trace=self.decision_trace)
        target = tol * residual_norms[0]
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            x = self.vcycle_executor.cycle(b, x)
            residual_norms.append(float(np.linalg.norm(
                self.vcycle_executor.residual(b, x))))
            if residual_norms[-1] <= target:
                converged = True
                break
        return SolveResult(solution=x, residual_norms=residual_norms,
                           iterations=iterations, converged=converged,
                           decision_trace=self.decision_trace)
