"""A BoomerAMG-style algebraic multigrid solver.

The paper evaluates its collectives inside the solve phase of Hypre's
BoomerAMG; this package provides the equivalent substrate: classical strength
of connection, PMIS coarsening, direct interpolation, Galerkin coarse
operators, weighted-Jacobi / Gauss-Seidel relaxation, and a V-cycle solver.
Each level keeps a distributed view (partition inherited from the fine grid),
from which :mod:`repro.amg.comm_analysis` extracts the per-level SpMV
communication patterns that Figures 8-13 are built on.
"""

from repro.amg.strength import classical_strength
from repro.amg.coarsen import pmis_coarsening, SplittingResult, CPOINT, FPOINT
from repro.amg.interp import direct_interpolation
from repro.amg.galerkin import galerkin_product
from repro.amg.relax import (
    DistributedJacobi,
    WorldJacobi,
    jacobi,
    weighted_jacobi_iteration,
    gauss_seidel_iteration,
)
from repro.amg.hierarchy import (
    AMGLevel,
    AMGHierarchy,
    build_hierarchy,
    redistribute_hierarchy,
)
from repro.amg.solver import BoomerAMGSolver, SolveResult
from repro.amg.vcycle import (
    DistributedVCycle,
    WorldVCycle,
    WorldAMGSolver,
    coarse_gather_pattern,
)
from repro.amg.comm_analysis import (
    level_patterns,
    level_partitions,
    level_transfer_patterns,
    TransferPatterns,
    LevelCommProfile,
    hierarchy_comm_profiles,
)

__all__ = [
    "classical_strength",
    "pmis_coarsening",
    "SplittingResult",
    "CPOINT",
    "FPOINT",
    "direct_interpolation",
    "galerkin_product",
    "DistributedJacobi",
    "WorldJacobi",
    "jacobi",
    "weighted_jacobi_iteration",
    "gauss_seidel_iteration",
    "AMGLevel",
    "AMGHierarchy",
    "build_hierarchy",
    "redistribute_hierarchy",
    "BoomerAMGSolver",
    "SolveResult",
    "DistributedVCycle",
    "WorldVCycle",
    "WorldAMGSolver",
    "coarse_gather_pattern",
    "level_patterns",
    "level_partitions",
    "level_transfer_patterns",
    "TransferPatterns",
    "LevelCommProfile",
    "hierarchy_comm_profiles",
]
