"""Per-level communication analysis of an AMG hierarchy.

Everything the paper's Figures 8-13 plot starts here: for each level of the
hierarchy, extract the SpMV communication pattern of the level's distributed
operator and (optionally) build the plans of every collective variant, their
message-count/size statistics, and their modeled Start+Wait times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.amg.hierarchy import AMGHierarchy
from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.plan import CollectivePlan, Variant
from repro.collectives.planner import all_plans
from repro.pattern.comm_pattern import CommPattern
from repro.pattern.statistics import PatternStatistics
from repro.perfmodel.base import CostModel
from repro.sparse.comm_pkg import pattern_from_parcsr, transfer_pattern
from repro.sparse.partition import RowPartition
from repro.topology.mapping import RankMapping
from repro.utils.errors import ValidationError


def level_patterns(hierarchy: AMGHierarchy, *, item_bytes: int | None = None,
                   dtype=None, item_size: int = 1) -> List[CommPattern]:
    """The SpMV communication pattern of every level of the hierarchy."""
    dtype = np.float64 if dtype is None else dtype
    return [pattern_from_parcsr(level.matrix, item_bytes=item_bytes,
                                dtype=dtype, item_size=item_size)
            for level in hierarchy.levels]


def level_partitions(hierarchy: AMGHierarchy) -> List[RowPartition]:
    """The row partition of every level."""
    return [level.matrix.partition for level in hierarchy.levels]


@dataclass
class TransferPatterns:
    """Grid-transfer communication patterns between one level and the next.

    ``prolong`` is the halo pattern of ``P @ x_coarse`` (coarse vector
    entries moving to fine-side owners), ``restrict`` that of ``Pᵀ @ r_fine``
    (fine residual entries moving to coarse-side owners) — the per-level
    patterns the world-stepped V-cycle registers alongside the ``A``-level
    halo patterns.
    """

    level: int
    prolong: CommPattern
    restrict: CommPattern


def level_transfer_patterns(hierarchy: AMGHierarchy, *,
                            item_bytes: int | None = None,
                            dtype=None, item_size: int = 1
                            ) -> List[TransferPatterns]:
    """The grid-transfer patterns of every non-coarsest level."""
    dtype = np.float64 if dtype is None else dtype
    patterns: List[TransferPatterns] = []
    for index in range(hierarchy.n_levels - 1):
        prolong = transfer_pattern(hierarchy.prolongation_matrix(index),
                                   item_bytes=item_bytes, dtype=dtype,
                                   item_size=item_size)
        restrict = transfer_pattern(hierarchy.restriction_matrix(index),
                                    item_bytes=item_bytes, dtype=dtype,
                                    item_size=item_size)
        patterns.append(TransferPatterns(level=index, prolong=prolong,
                                         restrict=restrict))
    return patterns


@dataclass
class LevelCommProfile:
    """Plans, statistics, and modeled times of one AMG level."""

    level: int
    n_rows: int
    pattern: CommPattern
    plans: Dict[Variant, CollectivePlan]
    statistics: Dict[Variant, PatternStatistics] = field(default_factory=dict)
    times: Dict[Variant, float] = field(default_factory=dict)

    def best_variant(self, *, candidates: tuple[Variant, ...] = (
            Variant.STANDARD, Variant.PARTIAL, Variant.FULL)) -> Variant:
        """Cheapest variant for this level under the profile's cost model."""
        if not self.times:
            raise ValidationError("profile was built without a cost model")
        return min(candidates, key=lambda v: (self.times[v], v.value))

    def best_time(self, *, candidates: tuple[Variant, ...] = (
            Variant.STANDARD, Variant.PARTIAL, Variant.FULL)) -> float:
        """Modeled time of the cheapest variant (the per-level selection the
        paper applies in its scaling studies)."""
        return self.times[self.best_variant(candidates=candidates)]


def hierarchy_comm_profiles(hierarchy: AMGHierarchy, mapping: RankMapping, *,
                            model: Optional[CostModel] = None,
                            strategy: BalanceStrategy = BalanceStrategy.BYTES,
                            item_bytes: int | None = None,
                            dtype=None, item_size: int = 1,
                            validate: bool = False) -> List[LevelCommProfile]:
    """Build a :class:`LevelCommProfile` for every level of ``hierarchy``.

    Parameters
    ----------
    model:
        When given, modeled Start+Wait times per variant are attached.
    validate:
        When True every plan is checked against its pattern (slow for large
        hierarchies; the test-suite does this on smaller ones).
    """
    if mapping.n_ranks < hierarchy.levels[0].matrix.n_ranks:
        raise ValidationError("mapping has fewer ranks than the hierarchy's partition")
    patterns = level_patterns(hierarchy, item_bytes=item_bytes,
                              dtype=dtype, item_size=item_size)
    profiles: List[LevelCommProfile] = []
    for level, pattern in zip(hierarchy.levels, patterns):
        plans = all_plans(pattern, mapping, strategy=strategy)
        if validate:
            for plan in plans.values():
                plan.validate()
        statistics = {variant: plan.statistics() for variant, plan in plans.items()}
        times = {variant: plan.modeled_time(model) for variant, plan in plans.items()} \
            if model is not None else {}
        profiles.append(LevelCommProfile(level=level.index, n_rows=level.n_rows,
                                         pattern=pattern, plans=plans,
                                         statistics=statistics, times=times))
    return profiles
