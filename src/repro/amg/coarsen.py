"""PMIS coarsening.

PMIS (Parallel Modified Independent Set, De Sterck/Yang/Heys) is one of
BoomerAMG's default coarsening algorithms and the one whose hierarchies the
paper's evaluation exercises.  Each point gets a weight equal to the number of
points it strongly influences plus a random tie-breaker; points whose weight
exceeds that of every undecided strongly-coupled neighbour become C-points, and
their undecided neighbours become F-points, until every point is decided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.amg.strength import symmetrized_strength
from repro.utils.errors import SolverError

#: Marker values of the coarse/fine splitting array.
CPOINT = 1
FPOINT = 0
_UNDECIDED = -1


@dataclass(frozen=True)
class SplittingResult:
    """Outcome of a coarsening pass."""

    splitting: np.ndarray      # CPOINT / FPOINT per row
    coarse_index: np.ndarray   # for C-points, the coarse row index; -1 for F-points

    @property
    def n_coarse(self) -> int:
        """Number of coarse points."""
        return int(np.count_nonzero(self.splitting == CPOINT))

    @property
    def coarse_rows(self) -> np.ndarray:
        """Fine-grid indices of the coarse points, ascending."""
        return np.flatnonzero(self.splitting == CPOINT).astype(np.int64)


def _row_max(values: np.ndarray, graph: sp.csr_matrix) -> np.ndarray:
    """Per-row maximum of ``values`` over the columns of ``graph`` (0 for empty rows)."""
    n = graph.shape[0]
    result = np.zeros(n, dtype=np.float64)
    if graph.nnz == 0:
        return result
    entry_values = values[graph.indices]
    row_sizes = np.diff(graph.indptr)
    nonempty = np.flatnonzero(row_sizes > 0)
    maxima = np.maximum.reduceat(entry_values, graph.indptr[nonempty])
    result[nonempty] = maxima
    return result


def pmis_coarsening(strength: sp.spmatrix, *, seed: int = 42,
                    max_iterations: int = 1000) -> SplittingResult:
    """Compute a PMIS C/F splitting from a strength-of-connection matrix.

    Parameters
    ----------
    strength:
        Strength matrix: ``strength[i, j] != 0`` means ``i`` strongly depends
        on ``j``.
    seed:
        Seed of the random tie-breaking weights (deterministic hierarchies
        make the experiments reproducible).
    max_iterations:
        Safety bound; PMIS converges in a few iterations in practice.
    """
    S = sp.csr_matrix(strength)
    n = S.shape[0]
    if n == 0:
        return SplittingResult(splitting=np.empty(0, dtype=np.int64),
                               coarse_index=np.empty(0, dtype=np.int64))
    sym = symmetrized_strength(S)

    rng = np.random.default_rng(seed)
    # Weight: number of points this point strongly influences (column count of
    # S, i.e. row count of S^T) plus a random fraction for tie breaking.
    influences = np.asarray(S.sum(axis=0)).ravel()
    weights = influences + rng.random(n)

    splitting = np.full(n, _UNDECIDED, dtype=np.int64)
    # Points with no strong connections at all never need interpolation: they
    # become F-points immediately (relaxation handles them), matching hypre.
    isolated = (np.diff(sym.indptr) == 0)
    splitting[isolated] = FPOINT

    for _ in range(max_iterations):
        undecided = splitting == _UNDECIDED
        if not undecided.any():
            break
        active_weights = np.where(undecided, weights, -np.inf)
        neighbor_max = _row_max(np.where(np.isfinite(active_weights), active_weights, -np.inf), sym)
        # A point becomes coarse when it is undecided and beats every undecided
        # strongly-coupled neighbour.
        new_coarse = undecided & (weights > neighbor_max)
        if not new_coarse.any():
            # Numerical ties (probability ~0 with random weights): promote the
            # highest-weight undecided point to guarantee progress.
            new_coarse = np.zeros(n, dtype=bool)
            new_coarse[int(np.argmax(np.where(undecided, weights, -np.inf)))] = True
        splitting[new_coarse] = CPOINT
        # Undecided neighbours of the new C-points become F-points.
        coarse_indicator = np.zeros(n, dtype=np.float64)
        coarse_indicator[new_coarse] = 1.0
        touched = (sym @ coarse_indicator) > 0
        splitting[(splitting == _UNDECIDED) & touched] = FPOINT
    else:
        raise SolverError("PMIS coarsening did not converge")

    coarse_index = np.full(n, -1, dtype=np.int64)
    coarse_rows = np.flatnonzero(splitting == CPOINT)
    coarse_index[coarse_rows] = np.arange(coarse_rows.size)
    return SplittingResult(splitting=splitting, coarse_index=coarse_index)
