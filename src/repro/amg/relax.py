"""Relaxation (smoothing) methods for the V-cycle.

Weighted Jacobi and forward Gauss-Seidel; Hypre's default hybrid
Gauss-Seidel reduces to plain Gauss-Seidel in a sequential setting, so both of
the library's smoothers cover the behaviour that matters here (convergence of
the solve phase whose SpMVs carry the communication being studied).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ValidationError


def _check_system(A: sp.spmatrix, b: np.ndarray, x: np.ndarray) -> sp.csr_matrix:
    A = sp.csr_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("relaxation requires a square matrix")
    if b.shape != (A.shape[0],) or x.shape != (A.shape[0],):
        raise ValidationError("b and x must match the matrix dimension")
    return A


def weighted_jacobi_iteration(A: sp.spmatrix, b: np.ndarray, x: np.ndarray, *,
                              omega: float = 2.0 / 3.0) -> np.ndarray:
    """One weighted-Jacobi sweep; returns the updated iterate (out of place)."""
    A = _check_system(A, b, x)
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValidationError("Jacobi requires non-zero diagonal entries")
    residual = b - A @ x
    return x + omega * residual / diag


def gauss_seidel_iteration(A: sp.spmatrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One forward Gauss-Seidel sweep (out of place)."""
    A = _check_system(A, b, x)
    lower = sp.tril(A, k=0, format="csr")
    upper = A - lower
    rhs = b - upper @ x
    updated = sp.linalg.spsolve_triangular(lower.tocsr(), rhs, lower=True)
    return np.asarray(updated, dtype=np.float64)


def jacobi(A: sp.spmatrix, b: np.ndarray, x: np.ndarray, *, sweeps: int = 1,
           omega: float = 2.0 / 3.0) -> np.ndarray:
    """Run ``sweeps`` weighted-Jacobi iterations."""
    if sweeps < 0:
        raise ValidationError("sweeps must be >= 0")
    result = np.array(x, dtype=np.float64, copy=True)
    for _ in range(sweeps):
        result = weighted_jacobi_iteration(A, b, result, omega=omega)
    return result
