"""Relaxation (smoothing) methods for the V-cycle.

Weighted Jacobi and forward Gauss-Seidel; Hypre's default hybrid
Gauss-Seidel reduces to plain Gauss-Seidel in a sequential setting, so both of
the library's smoothers cover the behaviour that matters here (convergence of
the solve phase whose SpMVs carry the communication being studied).

:class:`DistributedJacobi` is the functional distributed form: one instance
per rank, with the residual's SpMV (and therefore the halo exchange) running
through the array-native persistent neighborhood collective — the same
communication the paper times inside BoomerAMG's solve phase.
:class:`WorldJacobi` is its world-stepped twin: all ranks sweep in lockstep
over one batched :class:`~repro.sparse.spmv.WorldSpMV`, so a sweep's halo
exchange is O(phases) numpy calls for the whole communicator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sparse.spmv import DistributedSpMV, WorldSpMV


def _check_system(A: sp.spmatrix, b: np.ndarray, x: np.ndarray) -> sp.csr_matrix:
    A = sp.csr_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("relaxation requires a square matrix")
    if b.shape != (A.shape[0],) or x.shape != (A.shape[0],):
        raise ValidationError("b and x must match the matrix dimension")
    return A


def weighted_jacobi_iteration(A: sp.spmatrix, b: np.ndarray, x: np.ndarray, *,
                              omega: float = 2.0 / 3.0) -> np.ndarray:
    """One weighted-Jacobi sweep; returns the updated iterate (out of place)."""
    A = _check_system(A, b, x)
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValidationError("Jacobi requires non-zero diagonal entries")
    residual = b - A @ x
    return x + omega * residual / diag


def gauss_seidel_iteration(A: sp.spmatrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One forward Gauss-Seidel sweep (out of place)."""
    A = _check_system(A, b, x)
    lower = sp.tril(A, k=0, format="csr")
    upper = A - lower
    rhs = b - upper @ x
    updated = sp.linalg.spsolve_triangular(lower.tocsr(), rhs, lower=True)
    return np.asarray(updated, dtype=np.float64)


def jacobi(A: sp.spmatrix, b: np.ndarray, x: np.ndarray, *, sweeps: int = 1,
           omega: float = 2.0 / 3.0) -> np.ndarray:
    """Run ``sweeps`` weighted-Jacobi iterations."""
    if sweeps < 0:
        raise ValidationError("sweeps must be >= 0")
    result = np.array(x, dtype=np.float64, copy=True)
    for _ in range(sweeps):
        result = weighted_jacobi_iteration(A, b, result, omega=omega)
    return result


class DistributedJacobi:
    """One rank's weighted-Jacobi smoother over a distributed operator.

    Wraps a :class:`~repro.sparse.spmv.DistributedSpMV`: every sweep performs
    the halo exchange through the array-native persistent collective and then
    the local residual update.  Construction is collective (one instance per
    rank, like the SpMV it wraps); a sweep is numerically identical to
    :func:`weighted_jacobi_iteration` on the assembled global system.
    """

    def __init__(self, spmv: "DistributedSpMV", *, omega: float = 2.0 / 3.0):
        self.spmv = spmv
        self.omega = float(omega)
        diagonal = np.asarray(spmv.blocks.diag.diagonal(), dtype=np.float64)
        if np.any(diagonal == 0.0):
            raise ValidationError("Jacobi requires non-zero diagonal entries")
        self._diagonal = diagonal

    def sweep(self, b_local: np.ndarray, x_local: np.ndarray) -> np.ndarray:
        """One weighted-Jacobi sweep on this rank's rows (out of place)."""
        b_local = np.asarray(b_local, dtype=np.float64)
        x_local = np.asarray(x_local, dtype=np.float64)
        n = self.spmv.n_local_rows
        if b_local.shape != (n,) or x_local.shape != (n,):
            raise ValidationError(f"b_local and x_local must have shape ({n},)")
        residual = b_local - self.spmv.multiply(x_local)
        return x_local + self.omega * residual / self._diagonal

    def smooth(self, b_local: np.ndarray, x_local: np.ndarray, *,
               sweeps: int = 1) -> np.ndarray:
        """Run ``sweeps`` distributed Jacobi sweeps."""
        if sweeps < 0:
            raise ValidationError("sweeps must be >= 0")
        result = np.array(x_local, dtype=np.float64, copy=True)
        for _ in range(sweeps):
            result = self.sweep(b_local, result)
        return result


class WorldJacobi:
    """World-stepped weighted-Jacobi smoother over a distributed operator.

    Wraps a :class:`~repro.sparse.spmv.WorldSpMV`: every sweep performs *all*
    ranks' halo exchanges through the batched exchange engine and then the
    local residual updates, on a single thread.  A sweep is numerically
    identical to :func:`weighted_jacobi_iteration` on the assembled global
    system and byte-identical to running :class:`DistributedJacobi` on every
    rank of the envelope-routed runtime.  The execution backend is whatever
    the wrapped SpMV was built with: construct the :class:`WorldSpMV` with
    ``runtime="procs"`` to smooth through the shared-memory worker pool.
    """

    def __init__(self, spmv: "WorldSpMV", *, omega: float = 2.0 / 3.0):
        self.spmv = spmv
        self.omega = float(omega)
        diagonal = np.concatenate([
            np.asarray(blocks.diag.diagonal(), dtype=np.float64)
            for blocks in spmv.blocks
        ])
        if np.any(diagonal == 0.0):
            raise ValidationError("Jacobi requires non-zero diagonal entries")
        self._diagonal = diagonal

    def sweep(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """One weighted-Jacobi sweep on the global vectors (out of place)."""
        b = np.asarray(b, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        n = self.spmv.n_rows
        if b.shape != (n,) or x.shape != (n,):
            raise ValidationError(f"b and x must have shape ({n},)")
        residual = b - self.spmv.multiply(x)
        return x + self.omega * residual / self._diagonal

    def smooth(self, b: np.ndarray, x: np.ndarray, *, sweeps: int = 1) -> np.ndarray:
        """Run ``sweeps`` world-stepped Jacobi sweeps."""
        if sweeps < 0:
            raise ValidationError("sweeps must be >= 0")
        result = np.array(x, dtype=np.float64, copy=True)
        for _ in range(sweeps):
            result = self.sweep(b, result)
        return result
