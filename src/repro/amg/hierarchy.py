"""AMG hierarchies: levels of coarse operators with distributed views.

``build_hierarchy`` runs the setup phase — strength, PMIS coarsening, direct
interpolation, Galerkin product — until the coarse grid is small enough, and
attaches to every level the row partition induced by the fine-grid ownership
(a coarse row is owned by the rank that owned the fine row it came from, the
same rule hypre uses).  The per-level distributed matrices are what the
communication analysis and the paper's per-level figures are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.amg.coarsen import CPOINT, SplittingResult, pmis_coarsening
from repro.amg.galerkin import galerkin_product
from repro.amg.interp import direct_interpolation
from repro.amg.strength import classical_strength
from repro.sparse.parcsr import ParCSRMatrix, ParCSRRectMatrix
from repro.sparse.partition import RowPartition
from repro.utils.errors import SolverError, ValidationError
from repro.utils.validation import check_positive_int


@dataclass
class AMGLevel:
    """One level of the hierarchy.

    ``matrix`` is the level's operator distributed over the (inherited)
    partition; ``prolongation`` maps this level's coarse grid (the next level)
    back to this level and is ``None`` on the coarsest level.
    """

    index: int
    matrix: ParCSRMatrix
    prolongation: Optional[sp.csr_matrix] = None
    splitting: Optional[SplittingResult] = None

    @property
    def n_rows(self) -> int:
        """Rows of this level's operator."""
        return self.matrix.n_rows

    @property
    def nnz(self) -> int:
        """Stored non-zeros of this level's operator."""
        return self.matrix.nnz


@dataclass
class AMGHierarchy:
    """The full multilevel hierarchy produced by the setup phase."""

    levels: List[AMGLevel] = field(default_factory=list)
    #: Memoized distributed transfer operators, keyed by (level, transposed).
    #: One rect matrix per level is shared by every V-cycle built over this
    #: hierarchy, so the per-rank block views (and the restriction's
    #: transpose) are computed once, like the square operators' block cache.
    _transfer_cache: dict = field(default_factory=dict, repr=False,
                                  compare=False)

    @property
    def n_levels(self) -> int:
        """Number of levels (fine grid included)."""
        return len(self.levels)

    def level(self, index: int) -> AMGLevel:
        """Return level ``index`` (0 = finest)."""
        return self.levels[index]

    def operator_complexity(self) -> float:
        """Sum of per-level non-zeros divided by fine-level non-zeros."""
        if not self.levels:
            return 0.0
        fine_nnz = self.levels[0].nnz
        if fine_nnz == 0:
            return 0.0
        return sum(level.nnz for level in self.levels) / fine_nnz

    def grid_complexity(self) -> float:
        """Sum of per-level rows divided by fine-level rows."""
        if not self.levels:
            return 0.0
        fine_rows = self.levels[0].n_rows
        if fine_rows == 0:
            return 0.0
        return sum(level.n_rows for level in self.levels) / fine_rows

    def prolongation_matrix(self, index: int) -> ParCSRRectMatrix:
        """Level ``index``'s prolongation as a distributed rectangular operator.

        Rows live on level ``index`` (fine side), columns on level
        ``index + 1`` (coarse side); the off-diagonal columns are exactly the
        coarse vector entries a rank must receive before the
        prolong-correct step of the V-cycle.
        """
        key = (index, False)
        if key not in self._transfer_cache:
            level = self.levels[index]
            if level.prolongation is None:
                raise ValidationError(
                    f"level {index} has no prolongation (coarsest level)"
                )
            self._transfer_cache[key] = ParCSRRectMatrix(
                level.prolongation, level.matrix.partition,
                self.levels[index + 1].matrix.partition)
        return self._transfer_cache[key]

    def restriction_matrix(self, index: int) -> ParCSRRectMatrix:
        """Level ``index``'s restriction (``Pᵀ``) as a distributed operator.

        The transpose of :meth:`prolongation_matrix`: rows on the coarse
        side, columns on the fine side, so the off-diagonal columns are the
        fine residual entries a rank needs for the restrict step.
        """
        key = (index, True)
        if key not in self._transfer_cache:
            self._transfer_cache[key] = self.prolongation_matrix(index).transpose()
        return self._transfer_cache[key]

    def describe(self) -> str:
        """Multi-line summary of the hierarchy (rows / nnz per level)."""
        lines = [f"AMG hierarchy: {self.n_levels} levels, "
                 f"operator complexity {self.operator_complexity():.2f}"]
        for level in self.levels:
            lines.append(
                f"  level {level.index:2d}: {level.n_rows:>10d} rows, "
                f"{level.nnz:>12d} nnz"
            )
        return "\n".join(lines)


def _coarse_partition(fine_partition: RowPartition,
                      splitting: SplittingResult) -> RowPartition:
    """Partition of the coarse grid induced by fine-grid ownership."""
    is_coarse = splitting.splitting == CPOINT
    # Coarse points per rank = difference of the C-point prefix sum at the
    # fine partition boundaries — one pass regardless of rank count.
    prefix = np.zeros(is_coarse.size + 1, dtype=np.int64)
    np.cumsum(is_coarse, out=prefix[1:])
    return RowPartition.from_sizes(np.diff(prefix[fine_partition.offsets]))


def redistribute_hierarchy(hierarchy: AMGHierarchy, n_ranks: int) -> AMGHierarchy:
    """Re-partition an existing hierarchy over a different number of ranks.

    The coarsening itself is independent of the distribution, so strong-scaling
    studies (same matrix, varying rank count) can reuse one setup: the fine
    level is split evenly over ``n_ranks`` and every coarse partition is
    re-derived from the stored splittings, exactly as the original build does.
    """
    check_positive_int("n_ranks", n_ranks)
    if not hierarchy.levels:
        raise ValidationError("cannot redistribute an empty hierarchy")
    new_hierarchy = AMGHierarchy()
    partition = RowPartition.even(hierarchy.levels[0].n_rows, n_ranks)
    for level in hierarchy.levels:
        new_matrix = ParCSRMatrix(level.matrix.matrix, partition)
        new_hierarchy.levels.append(AMGLevel(index=level.index, matrix=new_matrix,
                                             prolongation=level.prolongation,
                                             splitting=level.splitting))
        if level.splitting is not None:
            partition = _coarse_partition(partition, level.splitting)
    return new_hierarchy


def build_hierarchy(matrix: ParCSRMatrix, *,
                    strength_theta: float = 0.25,
                    max_levels: int = 25,
                    max_coarse_size: int = 16,
                    min_coarsening_ratio: float = 0.95,
                    truncation: float = 0.0,
                    seed: int = 42) -> AMGHierarchy:
    """Run the BoomerAMG-style setup phase.

    Coarsening stops when the coarse grid has at most ``max_coarse_size`` rows,
    when ``max_levels`` is reached, or when a level fails to shrink by at least
    ``1 - min_coarsening_ratio`` (stagnation guard).
    """
    check_positive_int("max_levels", max_levels)
    check_positive_int("max_coarse_size", max_coarse_size)
    if not 0.0 < min_coarsening_ratio <= 1.0:
        raise ValidationError("min_coarsening_ratio must lie in (0, 1]")

    hierarchy = AMGHierarchy()
    current = matrix
    for level_index in range(max_levels):
        level = AMGLevel(index=level_index, matrix=current)
        hierarchy.levels.append(level)
        if current.n_rows <= max_coarse_size or level_index == max_levels - 1:
            break

        A = current.matrix
        strength = classical_strength(A, theta=strength_theta)
        splitting = pmis_coarsening(strength, seed=seed + level_index)
        if splitting.n_coarse == 0 or splitting.n_coarse >= current.n_rows:
            break
        if splitting.n_coarse > min_coarsening_ratio * current.n_rows:
            # Coarsening stagnated; keep the hierarchy as built so far.
            break
        try:
            P = direct_interpolation(A, strength, splitting)
        except SolverError:
            break
        coarse_matrix = galerkin_product(A, P, truncation=truncation)
        coarse_partition = _coarse_partition(current.partition, splitting)
        level.prolongation = P
        level.splitting = splitting
        current = ParCSRMatrix(coarse_matrix, coarse_partition)
    return hierarchy
