"""The BoomerAMG-style V-cycle solver (sequential numerical reference).

The solver validates the substrate: the hierarchies whose communication the
experiments analyse really do solve the rotated anisotropic diffusion systems
they are built from.  Relaxation and grid transfers are computed on the global
operators; the *distributed* execution of the same V-cycle — every halo
exchange through the collectives, per-rank on the envelope-routed runtime or
world-stepped through the batched engine — lives in :mod:`repro.amg.vcycle`
(:class:`~repro.amg.vcycle.DistributedVCycle`,
:class:`~repro.amg.vcycle.WorldAMGSolver`), pinned equivalent to this solver
by the solve-phase test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.collectives.autotune import DecisionTrace

from repro.amg.hierarchy import AMGHierarchy, build_hierarchy
from repro.amg.relax import weighted_jacobi_iteration
from repro.sparse.parcsr import ParCSRMatrix
from repro.utils.errors import SolverError, ValidationError


@dataclass
class SolveResult:
    """Outcome of an AMG solve."""

    solution: np.ndarray
    residual_norms: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    #: Online-autotuning decision record (``variant="auto"`` solves through
    #: :class:`~repro.amg.vcycle.WorldAMGSolver` attach theirs; fixed-variant
    #: and sequential solves leave it ``None``).
    decision_trace: "Optional[DecisionTrace]" = None

    @property
    def final_residual(self) -> float:
        """Last recorded residual norm (inf when no iteration ran)."""
        return self.residual_norms[-1] if self.residual_norms else float("inf")

    def convergence_factor(self) -> float:
        """Geometric-mean residual reduction per iteration."""
        if len(self.residual_norms) < 2 or self.residual_norms[0] == 0.0:
            return 0.0
        ratio = self.residual_norms[-1] / self.residual_norms[0]
        return float(ratio ** (1.0 / max(self.iterations, 1)))


class BoomerAMGSolver:
    """Algebraic multigrid preconditioner/solver with V-cycles."""

    def __init__(self, matrix: ParCSRMatrix, *,
                 strength_theta: float = 0.25,
                 max_levels: int = 25,
                 max_coarse_size: int = 16,
                 pre_sweeps: int = 1,
                 post_sweeps: int = 1,
                 omega: float = 2.0 / 3.0,
                 truncation: float = 0.0,
                 seed: int = 42,
                 hierarchy: Optional[AMGHierarchy] = None):
        self.matrix = matrix
        self.pre_sweeps = int(pre_sweeps)
        self.post_sweeps = int(post_sweeps)
        self.omega = float(omega)
        if self.pre_sweeps < 0 or self.post_sweeps < 0:
            raise ValidationError("sweep counts must be non-negative")
        self.hierarchy = hierarchy or build_hierarchy(
            matrix, strength_theta=strength_theta, max_levels=max_levels,
            max_coarse_size=max_coarse_size, truncation=truncation, seed=seed)
        if self.hierarchy.n_levels == 0:
            raise SolverError("hierarchy construction produced no levels")
        coarsest = self.hierarchy.levels[-1].matrix.matrix
        self._coarse_solver = spla.factorized(sp.csc_matrix(coarsest)) \
            if coarsest.shape[0] > 0 else None

    # -- V-cycle -------------------------------------------------------------------

    def _cycle(self, level_index: int, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        level = self.hierarchy.levels[level_index]
        A = level.matrix.matrix
        if level_index == self.hierarchy.n_levels - 1:
            if self._coarse_solver is None or A.shape[0] == 0:
                return x
            return np.asarray(self._coarse_solver(b), dtype=np.float64)
        for _ in range(self.pre_sweeps):
            x = weighted_jacobi_iteration(A, b, x, omega=self.omega)
        P = level.prolongation
        if P is None:
            return x
        residual = b - A @ x
        coarse_b = P.T @ residual
        coarse_x = np.zeros(P.shape[1], dtype=np.float64)
        coarse_x = self._cycle(level_index + 1, coarse_b, coarse_x)
        x = x + P @ coarse_x
        for _ in range(self.post_sweeps):
            x = weighted_jacobi_iteration(A, b, x, omega=self.omega)
        return x

    def vcycle(self, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Apply one V-cycle to the system ``A x = b`` starting from ``x``."""
        b = np.asarray(b, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        n = self.matrix.n_rows
        if b.shape != (n,) or x.shape != (n,):
            raise ValidationError(f"b and x must have shape ({n},)")
        return self._cycle(0, b, x)

    # -- iterative solve ---------------------------------------------------------------

    def solve(self, b: np.ndarray, *, x0: Optional[np.ndarray] = None,
              tol: float = 1e-8, max_iterations: int = 100) -> SolveResult:
        """Solve ``A x = b`` with stationary V-cycle iterations.

        Convergence is declared when the 2-norm of the residual drops below
        ``tol`` times the initial residual norm.
        """
        b = np.asarray(b, dtype=np.float64)
        n = self.matrix.n_rows
        if b.shape != (n,):
            raise ValidationError(f"b must have shape ({n},)")
        x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
        A = self.matrix.matrix
        residual_norms = [float(np.linalg.norm(b - A @ x))]
        if residual_norms[0] == 0.0:
            return SolveResult(solution=x, residual_norms=residual_norms,
                               iterations=0, converged=True)
        target = tol * residual_norms[0]
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            x = self.vcycle(b, x)
            residual_norms.append(float(np.linalg.norm(b - A @ x)))
            if residual_norms[-1] <= target:
                converged = True
                break
        return SolveResult(solution=x, residual_norms=residual_norms,
                           iterations=iterations, converged=converged)
