"""Galerkin coarse-grid operators.

The coarse operator is the triple product ``A_c = R A P`` with ``R = P^T``;
small entries can optionally be truncated, which is what keeps coarse operators
from filling in completely (hypre's ``truncation factor``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ValidationError


def galerkin_product(A: sp.spmatrix, P: sp.spmatrix, *,
                     truncation: float = 0.0) -> sp.csr_matrix:
    """Compute ``P^T A P`` and optionally drop relatively small entries.

    Parameters
    ----------
    truncation:
        Entries smaller (in magnitude) than ``truncation`` times the largest
        off-diagonal magnitude of their row are dropped and lumped onto the
        diagonal, preserving row sums.  0 disables truncation.
    """
    A = sp.csr_matrix(A)
    P = sp.csr_matrix(P)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("A must be square")
    if P.shape[0] != A.shape[0]:
        raise ValidationError("P row count must match A")
    coarse = (P.T @ A @ P).tocsr()
    coarse.sum_duplicates()
    coarse.eliminate_zeros()
    if truncation <= 0.0:
        return coarse
    return _truncate(coarse, truncation)


def _truncate(matrix: sp.csr_matrix, truncation: float) -> sp.csr_matrix:
    n = matrix.shape[0]
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    keep = np.ones_like(data, dtype=bool)
    diag_addition = np.zeros(n, dtype=np.float64)
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        if start == end:
            continue
        row_cols = indices[start:end]
        row_vals = data[start:end]
        off = row_cols != i
        if not off.any():
            continue
        threshold = truncation * np.abs(row_vals[off]).max()
        drop = off & (np.abs(row_vals) < threshold)
        if not drop.any():
            continue
        keep[start:end][drop] = False
        diag_addition[i] = row_vals[drop].sum()
    rows = np.repeat(np.arange(n), np.diff(indptr))
    truncated = sp.csr_matrix((data[keep], (rows[keep], indices[keep])),
                              shape=matrix.shape)
    truncated = truncated + sp.diags(diag_addition)
    truncated = sp.csr_matrix(truncated)
    truncated.eliminate_zeros()
    return truncated
