"""Classical (Ruge-Stüben) strength of connection.

Connection ``i -> j`` is *strong* when ``-a_ij >= theta * max_k(-a_ik)``, i.e.
the coupling is within a factor ``theta`` of the row's strongest negative
coupling.  The strength graph drives both coarsening and interpolation; its
quality on the rotated anisotropic problem (strong couplings along the rotated
axis only) is what produces the semicoarsened hierarchies whose middle levels
dominate communication.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ValidationError


def classical_strength(matrix: sp.spmatrix, theta: float = 0.25) -> sp.csr_matrix:
    """Boolean strength-of-connection matrix (stored as float 0/1 CSR).

    Parameters
    ----------
    matrix:
        Square sparse matrix (typically an M-matrix-like discretisation).
    theta:
        Strength threshold in [0, 1]; Hypre's default for 2-D problems is 0.25.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValidationError(f"theta must lie in [0, 1], got {theta}")
    A = sp.csr_matrix(matrix)
    if A.shape[0] != A.shape[1]:
        raise ValidationError("strength of connection requires a square matrix")
    n = A.shape[0]
    A = A.copy()
    A.sort_indices()

    indptr = A.indptr
    indices = A.indices
    data = A.data

    # Off-diagonal negative magnitude per entry; diagonal entries excluded.
    off_diag_mask = indices != np.repeat(np.arange(n), np.diff(indptr))
    neg_magnitude = np.where(off_diag_mask, np.maximum(-data, 0.0), 0.0)

    # Row-wise maximum of the negative magnitudes.
    row_max = np.zeros(n, dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if nonempty.size:
        maxima = np.maximum.reduceat(neg_magnitude, indptr[nonempty])
        row_max[nonempty] = maxima

    threshold = theta * row_max
    strong = off_diag_mask & (neg_magnitude >= np.repeat(threshold, np.diff(indptr))) \
        & (neg_magnitude > 0.0)

    row_of_entry = np.repeat(np.arange(n), np.diff(indptr))
    strength = sp.csr_matrix(
        (np.ones(np.count_nonzero(strong)),
         (row_of_entry[strong], indices[strong])),
        shape=A.shape,
    )
    return strength


def symmetrized_strength(strength: sp.spmatrix) -> sp.csr_matrix:
    """Union of the strength graph and its transpose (used by PMIS)."""
    S = sp.csr_matrix(strength)
    sym = ((S + S.T) > 0).astype(np.float64)
    return sp.csr_matrix(sym)
