"""Direct interpolation.

Classical direct interpolation (Stüben): an F-point interpolates from its
strong C-neighbours with weights proportional to the matrix couplings, scaled
so that constants are (approximately) reproduced; C-points are injected.  This
is the simplest of BoomerAMG's interpolation operators and, combined with PMIS
coarsening, produces the growing-stencil coarse operators whose communication
behaviour the paper studies.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.amg.coarsen import CPOINT, SplittingResult
from repro.utils.errors import SolverError, ValidationError


def direct_interpolation(matrix: sp.spmatrix, strength: sp.spmatrix,
                         splitting: SplittingResult) -> sp.csr_matrix:
    """Build the prolongation matrix ``P`` (n_fine x n_coarse).

    For an F-point ``i`` with strong C-neighbours ``C_i`` the weights are

        ``w_ij = -(a_ij / a_ii) * (sum_k a_ik) / (sum_{j in C_i} a_ij)``

    computed separately over negative and positive off-diagonal couplings (the
    discretisations used here only have negative ones).  F-points with no
    strong C-neighbour get an empty row — their error is left to relaxation.
    """
    A = sp.csr_matrix(matrix)
    S = sp.csr_matrix(strength)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValidationError("interpolation requires a square matrix")
    if splitting.splitting.shape != (n,):
        raise ValidationError("splitting size does not match the matrix")
    n_coarse = splitting.n_coarse
    if n_coarse == 0:
        raise SolverError("cannot interpolate to an empty coarse grid")

    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise SolverError("direct interpolation requires non-zero diagonal entries")

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    is_coarse = splitting.splitting == CPOINT
    coarse_index = splitting.coarse_index

    for i in range(n):
        if is_coarse[i]:
            rows.append(i)
            cols.append(int(coarse_index[i]))
            vals.append(1.0)
            continue
        # Strong C-neighbours of i.
        strong_cols = S.indices[S.indptr[i]:S.indptr[i + 1]]
        strong_c = strong_cols[is_coarse[strong_cols]]
        if strong_c.size == 0:
            continue
        row_start, row_end = A.indptr[i], A.indptr[i + 1]
        row_cols = A.indices[row_start:row_end]
        row_vals = A.data[row_start:row_end]
        off_mask = row_cols != i
        neg_mask = off_mask & (row_vals < 0)
        pos_mask = off_mask & (row_vals > 0)

        # Couplings to the strong C-neighbours.
        in_strong_c = np.isin(row_cols, strong_c)
        neg_c = neg_mask & in_strong_c
        pos_c = pos_mask & in_strong_c

        neg_total = row_vals[neg_mask].sum()
        pos_total = row_vals[pos_mask].sum()
        neg_c_total = row_vals[neg_c].sum()
        pos_c_total = row_vals[pos_c].sum()

        alpha = neg_total / neg_c_total if neg_c_total != 0 else 0.0
        beta = pos_total / pos_c_total if pos_c_total != 0 else 0.0

        scale = diag[i]
        if pos_c_total == 0 and pos_total != 0:
            # Positive couplings with no positive C-neighbour are lumped into
            # the diagonal, the standard BoomerAMG treatment.
            scale += pos_total

        for mask, factor in ((neg_c, alpha), (pos_c, beta)):
            selected = np.flatnonzero(mask)
            for entry in selected:
                j = row_cols[entry]
                weight = -factor * row_vals[entry] / scale
                rows.append(i)
                cols.append(int(coarse_index[j]))
                vals.append(float(weight))

    P = sp.csr_matrix((vals, (rows, cols)), shape=(n, n_coarse))
    P.sum_duplicates()
    return P
