"""Distributed sparse matrices, stencil problem generators, and SpMV.

This package is the stand-in for Hypre's ParCSR layer: matrices are stored
globally (scipy CSR) together with a row partition over simulated ranks, and
every rank-local view that a real distributed code would hold — the diagonal
block, the off-diagonal block with its ``col_map_offd``, and the communication
package describing which off-process vector entries the rank needs — is derived
from that pair.  The communication package *is* the communication pattern the
neighborhood collectives optimize.
"""

from repro.sparse.partition import RowPartition
from repro.sparse.stencils import (
    rotated_anisotropic_stencil,
    stencil_grid,
    rotated_anisotropic_diffusion,
    poisson_2d,
    poisson_3d,
)
from repro.sparse.parcsr import (
    ParCSRMatrix,
    ParCSRRectMatrix,
    LocalBlocks,
    RectLocalBlocks,
)
from repro.sparse.comm_pkg import (
    CommPkg,
    build_comm_pkg,
    build_transfer_comm_pkg,
    pattern_from_parcsr,
    transfer_pattern,
)
from repro.sparse.spmv import (
    sequential_spmv,
    distributed_spmv_results,
    distributed_transfer_results,
    DistributedSpMV,
    DistributedRectSpMV,
    WorldSpMV,
    WorldRectSpMV,
)
from repro.sparse.generators import (
    ScalingProblem,
    strong_scaling_problem,
    weak_scaling_problem,
    grid_shape_for_rows,
)

__all__ = [
    "RowPartition",
    "rotated_anisotropic_stencil",
    "stencil_grid",
    "rotated_anisotropic_diffusion",
    "poisson_2d",
    "poisson_3d",
    "ParCSRMatrix",
    "ParCSRRectMatrix",
    "LocalBlocks",
    "RectLocalBlocks",
    "CommPkg",
    "build_comm_pkg",
    "build_transfer_comm_pkg",
    "pattern_from_parcsr",
    "transfer_pattern",
    "sequential_spmv",
    "distributed_spmv_results",
    "distributed_transfer_results",
    "DistributedSpMV",
    "DistributedRectSpMV",
    "WorldSpMV",
    "WorldRectSpMV",
    "ScalingProblem",
    "strong_scaling_problem",
    "weak_scaling_problem",
    "grid_shape_for_rows",
]
