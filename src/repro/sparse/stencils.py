"""Stencil problem generators.

The paper's evaluation problem is a 7-point rotated anisotropic diffusion
system (rotation 45 degrees, anisotropy 0.001).  The operator is
``-div(Q diag(1, eps) Q^T grad u)`` with ``Q`` a rotation by ``theta``;
a standard second-order finite-difference discretisation that keeps only the
two diagonal neighbours aligned with the rotation produces exactly seven
non-zeros per interior row.  Poisson stencils in 2-D and 3-D are provided as
additional workloads for examples and tests.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


def rotated_anisotropic_stencil(epsilon: float = 0.001,
                                theta: float = math.pi / 4.0) -> np.ndarray:
    """3x3 stencil of the rotated anisotropic diffusion operator.

    Parameters
    ----------
    epsilon:
        Anisotropy ratio (1.0 gives the isotropic Laplacian).
    theta:
        Rotation angle in radians (the paper uses 45 degrees).

    Returns
    -------
    A 3x3 array ``S`` where ``S[1 + dy, 1 + dx]`` is the coefficient of the
    neighbour at offset ``(dx, dy)``; for the default parameters only seven
    entries are non-zero.
    """
    if epsilon <= 0:
        raise ValidationError("epsilon must be > 0")
    c, s = math.cos(theta), math.sin(theta)
    # Diffusion tensor D = Q diag(1, eps) Q^T.
    cxx = c * c + epsilon * s * s
    cyy = s * s + epsilon * c * c
    cxy = (1.0 - epsilon) * c * s

    # -cxx u_xx - cyy u_yy - 2 cxy u_xy, discretised with a 7-point formula
    # whose cross term uses the NE/SW diagonal pair (for positive cxy).
    stencil = np.zeros((3, 3), dtype=np.float64)
    # u_xx part
    stencil[1, 0] += -cxx
    stencil[1, 2] += -cxx
    stencil[1, 1] += 2.0 * cxx
    # u_yy part
    stencil[0, 1] += -cyy
    stencil[2, 1] += -cyy
    stencil[1, 1] += 2.0 * cyy
    # cross term: 2 cxy u_xy ~ cxy * (u_NE + u_SW - u_N - u_S - u_E - u_W + 2 u_C)
    # (signs flip when cxy is negative, using the NW/SE pair instead so the
    #  resulting matrix keeps non-positive off-diagonals).
    if cxy >= 0:
        stencil[2, 2] += -cxy   # NE (dx=+1, dy=+1)
        stencil[0, 0] += -cxy   # SW
        sign = 1.0
    else:
        stencil[2, 0] += cxy    # NW
        stencil[0, 2] += cxy    # SE
        sign = -1.0
        cxy = -cxy
    stencil[0, 1] += cxy
    stencil[2, 1] += cxy
    stencil[1, 0] += cxy
    stencil[1, 2] += cxy
    stencil[1, 1] += -2.0 * cxy
    del sign
    return stencil


def stencil_grid(stencil: np.ndarray, grid_shape: Tuple[int, int]) -> sp.csr_matrix:
    """Assemble a sparse matrix applying ``stencil`` on a 2-D grid (Dirichlet).

    Rows are numbered row-major (``index = iy * nx + ix``); connections leaving
    the grid are dropped, which corresponds to homogeneous Dirichlet boundary
    conditions.
    """
    ny, nx = int(grid_shape[0]), int(grid_shape[1])
    check_positive_int("ny", ny)
    check_positive_int("nx", nx)
    if stencil.shape != (3, 3):
        raise ValidationError("stencil must be a 3x3 array")
    n = nx * ny
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    ix = np.arange(nx)
    iy = np.arange(ny)
    gx, gy = np.meshgrid(ix, iy)            # gx, gy shape (ny, nx)
    index = (gy * nx + gx).ravel()
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            coeff = stencil[1 + dy, 1 + dx]
            if coeff == 0.0:
                continue
            nx_ok = (gx + dx >= 0) & (gx + dx < nx)
            ny_ok = (gy + dy >= 0) & (gy + dy < ny)
            keep = (nx_ok & ny_ok).ravel()
            neighbor = ((gy + dy) * nx + (gx + dx)).ravel()
            rows.append(index[keep])
            cols.append(neighbor[keep])
            vals.append(np.full(keep.sum(), coeff, dtype=np.float64))
    matrix = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    return matrix.tocsr()


def rotated_anisotropic_diffusion(grid_shape: Tuple[int, int], *,
                                  epsilon: float = 0.001,
                                  theta: float = math.pi / 4.0) -> sp.csr_matrix:
    """The paper's evaluation matrix on a ``grid_shape`` grid (row-major ordering)."""
    return stencil_grid(rotated_anisotropic_stencil(epsilon, theta), grid_shape)


def poisson_2d(grid_shape: Tuple[int, int]) -> sp.csr_matrix:
    """Standard 5-point Laplacian on a 2-D grid."""
    stencil = np.array([[0.0, -1.0, 0.0],
                        [-1.0, 4.0, -1.0],
                        [0.0, -1.0, 0.0]])
    return stencil_grid(stencil, grid_shape)


def poisson_3d(grid_shape: Tuple[int, int, int]) -> sp.csr_matrix:
    """Standard 7-point Laplacian on a 3-D grid (row-major ordering)."""
    nz, ny, nx = (int(s) for s in grid_shape)
    for name, value in (("nz", nz), ("ny", ny), ("nx", nx)):
        check_positive_int(name, value)
    n = nx * ny * nz
    diagonals = [6.0 * np.ones(n)]
    offsets = [0]
    ix = np.arange(n) % nx
    iy = (np.arange(n) // nx) % ny
    iz = np.arange(n) // (nx * ny)
    # x neighbours
    off = np.where(ix[:-1] + 1 < nx, -1.0, 0.0)
    diagonals.extend([off, off])
    offsets.extend([1, -1])
    # y neighbours
    offy = np.where(iy[:-nx] + 1 < ny, -1.0, 0.0) if n > nx else np.zeros(0)
    diagonals.extend([offy, offy])
    offsets.extend([nx, -nx])
    # z neighbours
    offz = np.where(iz[:-nx * ny] + 1 < nz, -1.0, 0.0) if n > nx * ny else np.zeros(0)
    diagonals.extend([offz, offz])
    offsets.extend([nx * ny, -nx * ny])
    matrix = sp.diags(diagonals, offsets, shape=(n, n), format="csr")
    return matrix.tocsr()
