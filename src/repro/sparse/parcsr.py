"""ParCSR-style distributed matrices.

Hypre stores a distributed matrix as, per rank, a *diag* block (columns owned
by the rank) and an *offd* block (columns owned by other ranks) together with
``col_map_offd``, the sorted global indices of the off-diagonal columns.  The
off-diagonal columns are exactly the vector entries the rank must receive
before a SpMV — they define the communication pattern.

Here the matrix is kept globally (scipy CSR) next to its
:class:`~repro.sparse.partition.RowPartition`; :meth:`ParCSRMatrix.local_blocks`
materialises any rank's diag/offd view on demand.  This "globally stored,
locally viewed" representation is what lets one Python process reason about
patterns of thousands of simulated ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np
import scipy.sparse as sp

from repro.sparse.partition import RowPartition
from repro.utils.errors import ValidationError


@dataclass
class LocalBlocks:
    """One rank's view of a ParCSR matrix."""

    rank: int
    row_range: tuple[int, int]
    diag: sp.csr_matrix
    offd: sp.csr_matrix
    col_map_offd: np.ndarray

    @property
    def n_local_rows(self) -> int:
        """Rows owned by the rank."""
        return self.diag.shape[0]

    @property
    def n_offd_cols(self) -> int:
        """Number of distinct off-process columns referenced by the rank."""
        return int(self.col_map_offd.size)


def _split_rank_blocks(matrix: sp.csr_matrix, row_partition: RowPartition,
                       col_partition: RowPartition):
    """Every rank's ``(diag, offd, col_map_offd)`` split in one global pass.

    The per-rank ``local_blocks`` path costs O(nnz) scipy slicing *per rank*;
    this computes the same splits for all ranks at once: classify every stored
    entry against its owning rank's column range, derive the per-rank offd
    column maps from one sort over ``(rank, column)`` keys, and assemble each
    rank's CSR blocks from slices of the classified arrays.  Entry order is
    preserved row-by-row, so sorted global indices stay sorted in both blocks.
    """
    csr = matrix
    if not csr.has_canonical_format:
        csr = csr.copy()
        csr.sum_duplicates()
    elif not csr.has_sorted_indices:
        csr = csr.copy()
        csr.sort_indices()
    n_ranks = row_partition.n_ranks
    n_rows, n_cols = csr.shape
    row_offsets = row_partition.offsets
    col_offsets = col_partition.offsets
    entry_row = np.repeat(np.arange(n_rows, dtype=np.int64),
                          np.diff(csr.indptr))
    row_rank = np.repeat(np.arange(n_ranks, dtype=np.int64),
                         np.diff(row_offsets))
    entry_rank = row_rank[entry_row] if n_rows else entry_row
    cols = csr.indices.astype(np.int64, copy=False)
    diag_lo = col_offsets[entry_rank]
    in_diag = (cols >= diag_lo) & (cols < col_offsets[entry_rank + 1])

    diag_cols = (cols - diag_lo)[in_diag]
    diag_data = csr.data[in_diag]
    diag_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(entry_row[in_diag], minlength=n_rows),
              out=diag_indptr[1:])

    offd_mask = ~in_diag
    offd_rank = entry_rank[offd_mask]
    offd_col_global = cols[offd_mask]
    offd_data = csr.data[offd_mask]
    # One sort over (rank, global column) yields every rank's sorted unique
    # column map and, via the inverse, each entry's local offd column.
    keys = offd_rank * np.int64(n_cols) + offd_col_global
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    unique_ranks = unique_keys // np.int64(max(n_cols, 1))
    unique_cols = unique_keys % np.int64(max(n_cols, 1))
    map_bounds = np.searchsorted(unique_ranks,
                                 np.arange(n_ranks + 1, dtype=np.int64))
    offd_cols = inverse - map_bounds[offd_rank]
    offd_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(entry_row[offd_mask], minlength=n_rows),
              out=offd_indptr[1:])

    splits = []
    for rank in range(n_ranks):
        first, last = int(row_offsets[rank]), int(row_offsets[rank + 1])
        d0, d1 = diag_indptr[first], diag_indptr[last]
        diag = sp.csr_matrix(
            (diag_data[d0:d1], diag_cols[d0:d1],
             diag_indptr[first:last + 1] - diag_indptr[first]),
            shape=(last - first,
                   int(col_offsets[rank + 1] - col_offsets[rank])))
        o0, o1 = offd_indptr[first], offd_indptr[last]
        g0, g1 = int(map_bounds[rank]), int(map_bounds[rank + 1])
        offd = sp.csr_matrix(
            (offd_data[o0:o1], offd_cols[o0:o1],
             offd_indptr[first:last + 1] - offd_indptr[first]),
            shape=(last - first, g1 - g0))
        splits.append((diag, offd, unique_cols[g0:g1]))
    return splits


class ParCSRMatrix:
    """A globally stored sparse matrix with a row partition over simulated ranks."""

    def __init__(self, matrix: sp.spmatrix, partition: RowPartition):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("ParCSRMatrix requires a square matrix")
        if matrix.shape[0] != partition.n_rows:
            raise ValidationError(
                f"matrix has {matrix.shape[0]} rows but partition covers "
                f"{partition.n_rows}"
            )
        self.matrix = matrix
        self.partition = partition
        self._block_cache: Dict[int, LocalBlocks] = {}

    # -- global properties ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Global number of rows."""
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        """Global number of stored non-zeros."""
        return int(self.matrix.nnz)

    @property
    def n_ranks(self) -> int:
        """Number of ranks in the partition."""
        return self.partition.n_ranks

    def with_partition(self, partition: RowPartition) -> "ParCSRMatrix":
        """Same matrix, different distribution."""
        return ParCSRMatrix(self.matrix, partition)

    # -- per-rank views ---------------------------------------------------------------

    def local_blocks(self, rank: int) -> LocalBlocks:
        """Diag/offd split of ``rank``'s rows (cached)."""
        if rank in self._block_cache:
            return self._block_cache[rank]
        first, last = self.partition.row_range(rank)
        local = self.matrix[first:last, :].tocsc()
        diag = local[:, first:last].tocsr()
        if first > 0 or last < self.n_rows:
            left = local[:, :first]
            right = local[:, last:]
            offd_global = sp.hstack([left, right], format="csc")
            # Global column ids of the off-diagonal part, in the hstack order.
            col_ids = np.concatenate([np.arange(0, first), np.arange(last, self.n_rows)])
        else:
            offd_global = sp.csc_matrix((last - first, 0))
            col_ids = np.empty(0, dtype=np.int64)
        # Keep only columns that actually carry non-zeros; their sorted global
        # indices form col_map_offd, as in hypre.
        nnz_per_col = np.diff(offd_global.indptr)
        used = np.flatnonzero(nnz_per_col > 0)
        col_map_offd = col_ids[used].astype(np.int64)
        order = np.argsort(col_map_offd)
        col_map_offd = col_map_offd[order]
        offd = offd_global[:, used[order]].tocsr()
        blocks = LocalBlocks(rank=rank, row_range=(first, last), diag=diag,
                             offd=offd, col_map_offd=col_map_offd)
        self._block_cache[rank] = blocks
        return blocks

    def all_local_blocks(self) -> List[LocalBlocks]:
        """Every rank's diag/offd split, built in one pass over the matrix.

        Equivalent to ``[local_blocks(r) for r in range(n_ranks)]`` but
        O(nnz log nnz) total instead of O(ranks × nnz) — the world-stepped
        executors build all ranks' blocks up front, which dominated their
        setup time at paper-scale rank counts.  Already-cached ranks keep
        their existing block objects.
        """
        if len(self._block_cache) < self.n_ranks:
            splits = _split_rank_blocks(self.matrix, self.partition,
                                        self.partition)
            for rank, (diag, offd, col_map) in enumerate(splits):
                if rank not in self._block_cache:
                    self._block_cache[rank] = LocalBlocks(
                        rank=rank, row_range=self.partition.row_range(rank),
                        diag=diag, offd=offd, col_map_offd=col_map)
        return [self._block_cache[rank] for rank in range(self.n_ranks)]

    def offd_columns(self, rank: int) -> np.ndarray:
        """Global indices of off-process vector entries ``rank`` needs for a SpMV.

        Computed directly from the CSR structure (without materialising the
        rank's diag/offd blocks) because the experiment harness calls this for
        every rank of every AMG level at up to thousands of simulated ranks.
        """
        if rank in self._block_cache:
            return self._block_cache[rank].col_map_offd.copy()
        first, last = self.partition.row_range(rank)
        start, stop = self.matrix.indptr[first], self.matrix.indptr[last]
        cols = self.matrix.indices[start:stop]
        outside = cols[(cols < first) | (cols >= last)]
        return np.unique(outside).astype(np.int64)

    def iter_local_blocks(self) -> Iterator[LocalBlocks]:
        """Iterate over every rank's local view (ranks with no rows included)."""
        for rank in self.partition.iter_ranks():
            yield self.local_blocks(rank)

    # -- convenience -------------------------------------------------------------------

    def row_owner(self, row: int) -> int:
        """Rank owning a global row."""
        return self.partition.owner_of(row)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Sequential reference product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_rows,):
            raise ValidationError(f"x must have shape ({self.n_rows},), got {x.shape}")
        return self.matrix @ x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParCSRMatrix(n={self.n_rows}, nnz={self.nnz}, "
                f"ranks={self.n_ranks})")


@dataclass
class RectLocalBlocks:
    """One rank's view of a rectangular ParCSR matrix.

    ``diag`` holds the columns the rank owns under the *column* partition
    (the input-vector entries it already has locally); ``offd`` holds every
    other referenced column, with ``col_map_offd`` giving their sorted global
    column indices — exactly the entries the rank must receive before a
    product.
    """

    rank: int
    row_range: tuple[int, int]
    col_range: tuple[int, int]
    diag: sp.csr_matrix
    offd: sp.csr_matrix
    col_map_offd: np.ndarray

    @property
    def n_local_rows(self) -> int:
        """Rows owned by the rank (output-vector entries)."""
        return self.diag.shape[0]

    @property
    def n_local_cols(self) -> int:
        """Columns owned by the rank (input-vector entries held locally)."""
        return self.diag.shape[1]

    @property
    def n_offd_cols(self) -> int:
        """Number of distinct off-process columns referenced by the rank."""
        return int(self.col_map_offd.size)


class ParCSRRectMatrix:
    """A rectangular distributed matrix: rows and columns partitioned separately.

    AMG grid-transfer operators are the motivating case: a prolongation ``P``
    maps the coarse grid (column space, owned by the coarse partition) to the
    fine grid (row space, owned by the fine partition), and its transpose maps
    the other way.  The diag/offd split is taken against the *column*
    partition — the off-diagonal columns are the input-vector entries a rank
    must receive before a product, which is what defines the grid-transfer
    communication pattern.
    """

    def __init__(self, matrix: sp.spmatrix, row_partition: RowPartition,
                 col_partition: RowPartition):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != row_partition.n_rows:
            raise ValidationError(
                f"matrix has {matrix.shape[0]} rows but the row partition covers "
                f"{row_partition.n_rows}"
            )
        if matrix.shape[1] != col_partition.n_rows:
            raise ValidationError(
                f"matrix has {matrix.shape[1]} columns but the column partition "
                f"covers {col_partition.n_rows}"
            )
        if row_partition.n_ranks != col_partition.n_ranks:
            raise ValidationError(
                "row and column partitions must span the same communicator "
                f"({row_partition.n_ranks} vs {col_partition.n_ranks} ranks)"
            )
        self.matrix = matrix
        self.row_partition = row_partition
        self.col_partition = col_partition
        self._block_cache: Dict[int, RectLocalBlocks] = {}

    # -- global properties ---------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Global number of rows (output-vector length)."""
        return self.matrix.shape[0]

    @property
    def n_cols(self) -> int:
        """Global number of columns (input-vector length)."""
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Global number of stored non-zeros."""
        return int(self.matrix.nnz)

    @property
    def n_ranks(self) -> int:
        """Number of ranks in the (shared) partitions."""
        return self.row_partition.n_ranks

    def transpose(self) -> "ParCSRRectMatrix":
        """The transposed operator with the partitions swapped."""
        return ParCSRRectMatrix(self.matrix.T.tocsr(), self.col_partition,
                                self.row_partition)

    # -- per-rank views ---------------------------------------------------------------

    def local_blocks(self, rank: int) -> RectLocalBlocks:
        """Diag/offd split of ``rank``'s rows against the column partition (cached)."""
        if rank in self._block_cache:
            return self._block_cache[rank]
        first, last = self.row_partition.row_range(rank)
        col_first, col_last = self.col_partition.row_range(rank)
        local = self.matrix[first:last, :].tocsc()
        diag = local[:, col_first:col_last].tocsr()
        if col_first > 0 or col_last < self.n_cols:
            left = local[:, :col_first]
            right = local[:, col_last:]
            offd_global = sp.hstack([left, right], format="csc")
            col_ids = np.concatenate([np.arange(0, col_first),
                                      np.arange(col_last, self.n_cols)])
        else:
            offd_global = sp.csc_matrix((last - first, 0))
            col_ids = np.empty(0, dtype=np.int64)
        nnz_per_col = np.diff(offd_global.indptr)
        used = np.flatnonzero(nnz_per_col > 0)
        col_map_offd = col_ids[used].astype(np.int64)
        order = np.argsort(col_map_offd)
        col_map_offd = col_map_offd[order]
        offd = offd_global[:, used[order]].tocsr()
        blocks = RectLocalBlocks(rank=rank, row_range=(first, last),
                                 col_range=(col_first, col_last), diag=diag,
                                 offd=offd, col_map_offd=col_map_offd)
        self._block_cache[rank] = blocks
        return blocks

    def all_local_blocks(self) -> List[RectLocalBlocks]:
        """Every rank's diag/offd split in one pass (see
        :meth:`ParCSRMatrix.all_local_blocks`)."""
        if len(self._block_cache) < self.n_ranks:
            splits = _split_rank_blocks(self.matrix, self.row_partition,
                                        self.col_partition)
            for rank, (diag, offd, col_map) in enumerate(splits):
                if rank not in self._block_cache:
                    self._block_cache[rank] = RectLocalBlocks(
                        rank=rank,
                        row_range=self.row_partition.row_range(rank),
                        col_range=self.col_partition.row_range(rank),
                        diag=diag, offd=offd, col_map_offd=col_map)
        return [self._block_cache[rank] for rank in range(self.n_ranks)]

    def offd_columns(self, rank: int) -> np.ndarray:
        """Global input-vector entries ``rank`` needs but does not own.

        Computed straight from the CSR structure, like
        :meth:`ParCSRMatrix.offd_columns`, because the hierarchy analysis
        calls this for every rank of every AMG level.
        """
        if rank in self._block_cache:
            return self._block_cache[rank].col_map_offd.copy()
        first, last = self.row_partition.row_range(rank)
        col_first, col_last = self.col_partition.row_range(rank)
        start, stop = self.matrix.indptr[first], self.matrix.indptr[last]
        cols = self.matrix.indices[start:stop]
        outside = cols[(cols < col_first) | (cols >= col_last)]
        return np.unique(outside).astype(np.int64)

    # -- convenience -------------------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Sequential reference product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValidationError(f"x must have shape ({self.n_cols},), got {x.shape}")
        return self.matrix @ x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParCSRRectMatrix(shape={self.matrix.shape}, nnz={self.nnz}, "
                f"ranks={self.n_ranks})")
