"""Row partitions: which rank owns which (contiguous block of) global rows.

Hypre's IJ interface assigns every rank a contiguous range of global rows; the
same convention is used here because it keeps ownership queries O(log P) and
matches how the paper's problems are distributed.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.utils.arrays import partition_evenly
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


class RowPartition:
    """Contiguous 1-D partition of ``n_rows`` global rows over ``n_ranks`` ranks."""

    def __init__(self, offsets: Sequence[int]):
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 2:
            raise ValidationError("offsets must be a 1-D array with at least 2 entries")
        if offsets[0] != 0:
            raise ValidationError("offsets must start at 0")
        if np.any(np.diff(offsets) < 0):
            raise ValidationError("offsets must be non-decreasing")
        self.offsets = offsets
        self.n_ranks = int(offsets.size - 1)
        self.n_rows = int(offsets[-1])

    # -- constructors -------------------------------------------------------------

    @classmethod
    def even(cls, n_rows: int, n_ranks: int) -> "RowPartition":
        """Split rows as evenly as possible (first ranks get the remainder)."""
        check_positive_int("n_ranks", n_ranks)
        if n_rows < 0:
            raise ValidationError("n_rows must be >= 0")
        return cls(partition_evenly(n_rows, n_ranks))

    @classmethod
    def from_sizes(cls, sizes: Sequence[int]) -> "RowPartition":
        """Build a partition from per-rank row counts."""
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            raise ValidationError("sizes must not be empty")
        if np.any(sizes < 0):
            raise ValidationError("sizes must be non-negative")
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(offsets)

    # -- queries --------------------------------------------------------------------

    def owner_of(self, row: int) -> int:
        """Rank owning global row ``row``."""
        if row < 0 or row >= self.n_rows:
            raise ValidationError(f"row {row} out of range [0, {self.n_rows})")
        return int(np.searchsorted(self.offsets, row, side="right") - 1)

    def owners_of(self, rows: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`owner_of`."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise ValidationError("row index out of range")
        return (np.searchsorted(self.offsets, rows, side="right") - 1).astype(np.int64)

    def row_range(self, rank: int) -> tuple[int, int]:
        """Half-open global row range ``[first, last)`` owned by ``rank``."""
        self._check_rank(rank)
        return int(self.offsets[rank]), int(self.offsets[rank + 1])

    def local_size(self, rank: int) -> int:
        """Number of rows owned by ``rank``."""
        first, last = self.row_range(rank)
        return last - first

    def rows_of(self, rank: int) -> np.ndarray:
        """Global row indices owned by ``rank``."""
        first, last = self.row_range(rank)
        return np.arange(first, last, dtype=np.int64)

    def to_local(self, rank: int, rows: Sequence[int]) -> np.ndarray:
        """Convert global row indices owned by ``rank`` to local indices."""
        rows = np.asarray(rows, dtype=np.int64)
        first, last = self.row_range(rank)
        if rows.size and (rows.min() < first or rows.max() >= last):
            raise ValidationError(f"rows not owned by rank {rank}")
        return rows - first

    def iter_ranks(self) -> Iterator[int]:
        """Iterate over rank ids."""
        return iter(range(self.n_ranks))

    def active_ranks(self) -> np.ndarray:
        """Ranks owning at least one row (coarse AMG levels leave ranks empty)."""
        sizes = np.diff(self.offsets)
        return np.flatnonzero(sizes > 0).astype(np.int64)

    def _check_rank(self, rank: int) -> None:
        if rank < 0 or rank >= self.n_ranks:
            raise ValidationError(f"rank {rank} out of range [0, {self.n_ranks})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RowPartition):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowPartition(n_rows={self.n_rows}, n_ranks={self.n_ranks})"
