"""Communication packages: from a distributed matrix to its halo-exchange pattern.

Hypre builds a ``hypre_ParCSRCommPkg`` per matrix describing which vector
entries each rank sends to / receives from which neighbours before a SpMV.
:func:`build_comm_pkg` derives the same information from a
:class:`~repro.sparse.parcsr.ParCSRMatrix`, and
:func:`pattern_from_parcsr` exposes it as the :class:`CommPattern` the
neighborhood-collective planners consume — item ids are global row indices, so
the deduplicating collective can recognise when one vector entry is needed by
several ranks on the same node.

Both are columnar end to end: the off-process column maps of all ranks are
concatenated once, their owners resolved with one vectorized partition lookup,
and a single stable lexsort per side yields the packed CSR columns
``(offsets, peers, item_offsets, items)`` for the receive and send views.  The
send-side columns feed :meth:`CommPattern.from_csr` directly — no dict-of-dict
intermediate is ever materialised on the construction path; the mapping
accessors of :class:`CommPkg` survive as views built on demand.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.sparse.parcsr import ParCSRMatrix, ParCSRRectMatrix
from repro.utils.arrays import INDEX_DTYPE, freeze_columns, group_rows_to_csr
from repro.utils.errors import ValidationError

#: One side of a comm package in packed CSR form: ``peers`` of rank ``r`` are
#: ``peers[offsets[r]:offsets[r + 1]]`` and edge ``e`` carries
#: ``items[item_offsets[e]:item_offsets[e + 1]]``.
CsrSide = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _group_to_csr(n_ranks: int, primary: np.ndarray, secondary: np.ndarray,
                  items: np.ndarray) -> CsrSide:
    """Pack rows into per-primary-rank CSR columns, frozen for zero-copy reuse.

    The grouping is the shared stable lexsort pass
    (:func:`repro.utils.arrays.group_rows_to_csr`); freezing the columns here
    lets :meth:`CommPattern.from_csr` store them without a defensive copy.
    """
    side = group_rows_to_csr(n_ranks, primary, secondary, items)
    freeze_columns(*side)
    return side


def _csr_slice_map(side: CsrSide, rank: int, *, copy: bool) -> Dict[int, np.ndarray]:
    """``{peer: items}`` view (or copies) of one rank's slice of a CSR side."""
    offsets, peers, item_offsets, items = side
    result: Dict[int, np.ndarray] = {}
    for edge in range(int(offsets[rank]), int(offsets[rank + 1])):
        chunk = items[item_offsets[edge]:item_offsets[edge + 1]]
        result[int(peers[edge])] = chunk.copy() if copy else chunk
    return result


def _csr_dict_views(side: CsrSide) -> Dict[int, Dict[int, np.ndarray]]:
    """All ranks' ``{peer: items}`` views of one CSR side in a single pass.

    One ``np.split`` materialises every edge's item view at once and ranks
    without edges are skipped entirely — the dict-of-dict view of a
    16k-rank package no longer walks rank × edge index pairs.
    """
    offsets, peers, item_offsets, items = side
    chunks = np.split(items, item_offsets[1:-1])
    peer_ids = peers.tolist()
    edge_bounds = offsets.tolist()
    result: Dict[int, Dict[int, np.ndarray]] = {}
    for rank in range(len(edge_bounds) - 1):
        start, stop = edge_bounds[rank], edge_bounds[rank + 1]
        if start != stop:
            result[rank] = dict(zip(peer_ids[start:stop], chunks[start:stop]))
    return result


class CommPkg:
    """Halo-exchange description of one distributed matrix, stored columnar.

    The canonical storage is two packed CSR sides: ``recv_csr`` groups the
    needed off-process entries by ``(receiving rank, owning rank)``, and
    ``send_csr`` is its transpose grouped by ``(owning rank, receiving rank)``.
    ``recv_items``/``send_items`` reproduce the historical dict-of-dict views
    on demand.
    """

    def __init__(self, n_ranks: int, recv_csr: CsrSide, send_csr: CsrSide):
        self.n_ranks = int(n_ranks)
        self.recv_csr = recv_csr
        self.send_csr = send_csr
        self._recv_dicts: Dict[int, Dict[int, np.ndarray]] | None = None
        self._send_dicts: Dict[int, Dict[int, np.ndarray]] | None = None

    # -- dict-of-dict compatibility views ---------------------------------------

    @property
    def recv_items(self) -> Dict[int, Dict[int, np.ndarray]]:
        """``recv_items[rank][src]``: indices ``rank`` receives from ``src`` (views)."""
        if self._recv_dicts is None:
            self._recv_dicts = _csr_dict_views(self.recv_csr)
        return self._recv_dicts

    @property
    def send_items(self) -> Dict[int, Dict[int, np.ndarray]]:
        """``send_items[rank][dest]``: indices ``rank`` sends to ``dest`` (views)."""
        if self._send_dicts is None:
            self._send_dicts = _csr_dict_views(self.send_csr)
        return self._send_dicts

    def recv_map(self, rank: int) -> Dict[int, np.ndarray]:
        """``{source: indices}`` for ``rank`` (copies)."""
        return _csr_slice_map(self.recv_csr, rank, copy=True)

    def send_map(self, rank: int) -> Dict[int, np.ndarray]:
        """``{destination: indices}`` for ``rank`` (copies)."""
        return _csr_slice_map(self.send_csr, rank, copy=True)

    def neighbors(self, rank: int) -> tuple[List[int], List[int]]:
        """``(sources, destinations)`` of ``rank`` in ascending order."""
        recv_offsets, recv_peers = self.recv_csr[0], self.recv_csr[1]
        send_offsets, send_peers = self.send_csr[0], self.send_csr[1]
        sources = recv_peers[recv_offsets[rank]:recv_offsets[rank + 1]].tolist()
        destinations = send_peers[send_offsets[rank]:send_offsets[rank + 1]].tolist()
        return sources, destinations

    def total_recv_items(self, rank: int) -> int:
        """Number of off-process entries ``rank`` receives per SpMV."""
        offsets, _, item_offsets, _ = self.recv_csr
        lo, hi = int(offsets[rank]), int(offsets[rank + 1])
        return int(item_offsets[hi] - item_offsets[lo])


def _pkg_from_needs(owner_partition, n_ranks: int,
                    needed_per_rank) -> CommPkg:
    """Core comm-package build shared by the square and rectangular paths.

    ``needed_per_rank`` yields ``(rank, needed global indices)``; owners are
    resolved against ``owner_partition`` (the row partition for a square SpMV,
    the column partition for a grid-transfer operator) with one concatenated
    vectorized lookup, then one lexsort per side packs the CSR columns.
    """
    needed_chunks: List[np.ndarray] = []
    rank_ids: List[int] = []
    counts: List[int] = []
    for rank, needed in needed_per_rank:
        if needed.size == 0:
            continue
        needed_chunks.append(needed)
        rank_ids.append(rank)
        counts.append(needed.size)
    if not needed_chunks:
        empty = _group_to_csr(n_ranks, np.empty(0, dtype=INDEX_DTYPE),
                              np.empty(0, dtype=INDEX_DTYPE),
                              np.empty(0, dtype=INDEX_DTYPE))
        return CommPkg(n_ranks, empty, empty)
    needed_all = np.concatenate(needed_chunks).astype(INDEX_DTYPE, copy=False)
    recv_ranks = np.repeat(np.asarray(rank_ids, dtype=INDEX_DTYPE),
                           np.asarray(counts, dtype=INDEX_DTYPE))
    owners = owner_partition.owners_of(needed_all)
    if np.any(owners == recv_ranks):
        raise ValidationError("off-diagonal columns must be owned by other ranks")
    recv_csr = _group_to_csr(n_ranks, recv_ranks, owners, needed_all)
    send_csr = _group_to_csr(n_ranks, owners, recv_ranks, needed_all)
    return CommPkg(n_ranks, recv_csr, send_csr)


def build_comm_pkg(matrix: ParCSRMatrix) -> CommPkg:
    """Construct the halo-exchange package of ``matrix``.

    For every rank the off-diagonal column map gives the global vector entries
    it needs; one concatenated owner lookup plus one lexsort per side yields
    the packed receive and send columns.
    """
    partition = matrix.partition
    return _pkg_from_needs(partition, partition.n_ranks,
                           ((rank, matrix.offd_columns(rank))
                            for rank in partition.iter_ranks()))


def build_transfer_comm_pkg(matrix: ParCSRRectMatrix) -> CommPkg:
    """Construct the grid-transfer exchange package of a rectangular matrix.

    Identical structure to :func:`build_comm_pkg`, but the needed entries are
    *input-vector* (column-space) indices and their owners come from the
    column partition — for a prolongation that is the coarse grid, for a
    restriction the fine grid.
    """
    return _pkg_from_needs(matrix.col_partition, matrix.n_ranks,
                           ((rank, matrix.offd_columns(rank))
                            for rank in range(matrix.n_ranks)))


def pattern_from_parcsr(matrix: ParCSRMatrix, *, item_bytes: int | None = None,
                        dtype=np.float64, item_size: int = 1) -> CommPattern:
    """The SpMV communication pattern of ``matrix`` as a :class:`CommPattern`.

    ``dtype``/``item_size`` describe the exchanged vector entries (float64
    scalars for a plain SpMV; wider items for multi-component unknowns) and
    determine the modeled wire size unless ``item_bytes`` overrides it.  The
    send-side CSR columns of the comm package are handed to the pattern as-is.
    """
    pkg = build_comm_pkg(matrix)
    src_offsets, dests, item_offsets, items = pkg.send_csr
    return CommPattern.from_csr(matrix.n_ranks, src_offsets, dests,
                                item_offsets, items, item_bytes=item_bytes,
                                dtype=dtype, item_size=item_size)


def transfer_pattern(matrix: ParCSRRectMatrix, *, item_bytes: int | None = None,
                     dtype=np.float64, item_size: int = 1) -> CommPattern:
    """The communication pattern of a grid-transfer product as a :class:`CommPattern`.

    Item ids are global *input-vector* indices (coarse rows for a
    prolongation's ``P @ x_coarse``, fine rows for a restriction's
    ``Pᵀ @ r_fine``), so the deduplicating collectives treat grid-transfer
    halos exactly like SpMV halos one level up or down.
    """
    pkg = build_transfer_comm_pkg(matrix)
    src_offsets, dests, item_offsets, items = pkg.send_csr
    return CommPattern.from_csr(matrix.n_ranks, src_offsets, dests,
                                item_offsets, items, item_bytes=item_bytes,
                                dtype=dtype, item_size=item_size)
