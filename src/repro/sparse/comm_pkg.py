"""Communication packages: from a distributed matrix to its halo-exchange pattern.

Hypre builds a ``hypre_ParCSRCommPkg`` per matrix describing which vector
entries each rank sends to / receives from which neighbours before a SpMV.
:func:`build_comm_pkg` derives the same information from a
:class:`~repro.sparse.parcsr.ParCSRMatrix`, and
:func:`pattern_from_parcsr` exposes it as the :class:`CommPattern` the
neighborhood-collective planners consume — item ids are global row indices, so
the deduplicating collective can recognise when one vector entry is needed by
several ranks on the same node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.sparse.parcsr import ParCSRMatrix
from repro.utils.errors import ValidationError


@dataclass
class CommPkg:
    """Halo-exchange description of one distributed matrix.

    ``recv_items[rank][src]`` lists the global vector indices ``rank`` must
    receive from ``src``; ``send_items[rank][dest]`` the indices it must send.
    The two views are transposes of each other.
    """

    n_ranks: int
    recv_items: Dict[int, Dict[int, np.ndarray]] = field(default_factory=dict)
    send_items: Dict[int, Dict[int, np.ndarray]] = field(default_factory=dict)

    def recv_map(self, rank: int) -> Dict[int, np.ndarray]:
        """``{source: indices}`` for ``rank`` (copies)."""
        return {src: items.copy() for src, items in self.recv_items.get(rank, {}).items()}

    def send_map(self, rank: int) -> Dict[int, np.ndarray]:
        """``{destination: indices}`` for ``rank`` (copies)."""
        return {dest: items.copy() for dest, items in self.send_items.get(rank, {}).items()}

    def neighbors(self, rank: int) -> tuple[List[int], List[int]]:
        """``(sources, destinations)`` of ``rank`` in ascending order."""
        sources = sorted(self.recv_items.get(rank, {}).keys())
        destinations = sorted(self.send_items.get(rank, {}).keys())
        return sources, destinations

    def total_recv_items(self, rank: int) -> int:
        """Number of off-process entries ``rank`` receives per SpMV."""
        return sum(int(items.size) for items in self.recv_items.get(rank, {}).values())


def build_comm_pkg(matrix: ParCSRMatrix) -> CommPkg:
    """Construct the halo-exchange package of ``matrix``.

    For every rank the off-diagonal column map gives the global vector entries
    it needs; grouping those entries by owning rank yields the receive side,
    and transposing yields the send side.
    """
    partition = matrix.partition
    pkg = CommPkg(n_ranks=partition.n_ranks)
    for rank in partition.iter_ranks():
        needed = matrix.offd_columns(rank)
        if needed.size == 0:
            continue
        owners = partition.owners_of(needed)
        if np.any(owners == rank):
            raise ValidationError("off-diagonal columns must be owned by other ranks")
        recv: Dict[int, np.ndarray] = {}
        for owner in np.unique(owners):
            items = needed[owners == owner]
            recv[int(owner)] = items.astype(np.int64)
            pkg.send_items.setdefault(int(owner), {})[rank] = items.astype(np.int64)
        pkg.recv_items[rank] = recv
    return pkg


def pattern_from_parcsr(matrix: ParCSRMatrix, *, item_bytes: int | None = None,
                        dtype=np.float64, item_size: int = 1) -> CommPattern:
    """The SpMV communication pattern of ``matrix`` as a :class:`CommPattern`.

    ``dtype``/``item_size`` describe the exchanged vector entries (float64
    scalars for a plain SpMV; wider items for multi-component unknowns) and
    determine the modeled wire size unless ``item_bytes`` overrides it.
    """
    pkg = build_comm_pkg(matrix)
    sends = {rank: {dest: items for dest, items in dests.items()}
             for rank, dests in pkg.send_items.items()}
    return CommPattern(matrix.n_ranks, sends, item_bytes=item_bytes,
                       dtype=dtype, item_size=item_size)
