"""Problem generators for the scaling studies.

The paper strong-scales a 524 288-row rotated anisotropic diffusion system over
32-2048 processes (Figure 12) and weak-scales the same family at a fixed number
of rows per process (Figure 13).  These helpers pick grid shapes whose product
matches the requested row counts and build the corresponding matrices and
partitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.sparse.parcsr import ParCSRMatrix
from repro.sparse.partition import RowPartition
from repro.sparse.stencils import rotated_anisotropic_diffusion
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


def grid_shape_for_rows(n_rows: int) -> Tuple[int, int]:
    """A near-square 2-D grid shape with exactly ``n_rows`` points.

    Prefers the factorisation closest to square (the paper's 524 288 rows is a
    1024 x 512 grid); raises if ``n_rows`` has no factorisation with aspect
    ratio at most 8 (arbitrarily long thin grids would distort communication).
    """
    check_positive_int("n_rows", n_rows)
    best: Tuple[int, int] | None = None
    for rows in range(int(math.isqrt(n_rows)), 0, -1):
        if n_rows % rows == 0:
            best = (n_rows // rows, rows)
            break
    if best is None or best[0] / best[1] > 8:
        raise ValidationError(
            f"cannot find a reasonable 2-D grid with {n_rows} points; "
            "use a power-of-two row count"
        )
    return best


@dataclass(frozen=True)
class ScalingProblem:
    """A generated problem: matrix, partition, and descriptive metadata."""

    matrix: ParCSRMatrix
    grid_shape: Tuple[int, int]
    n_ranks: int
    rows_per_rank: float

    @property
    def n_rows(self) -> int:
        """Global rows of the problem."""
        return self.matrix.n_rows


def strong_scaling_problem(n_rows: int, n_ranks: int, *,
                           epsilon: float = 0.001,
                           theta: float = math.pi / 4.0) -> ScalingProblem:
    """Fixed global size, varying rank count (Figure 12's setting)."""
    check_positive_int("n_ranks", n_ranks)
    grid_shape = grid_shape_for_rows(n_rows)
    matrix = rotated_anisotropic_diffusion(grid_shape, epsilon=epsilon, theta=theta)
    partition = RowPartition.even(n_rows, n_ranks)
    return ScalingProblem(matrix=ParCSRMatrix(matrix, partition),
                          grid_shape=grid_shape, n_ranks=n_ranks,
                          rows_per_rank=n_rows / n_ranks)


def weak_scaling_problem(rows_per_rank: int, n_ranks: int, *,
                         epsilon: float = 0.001,
                         theta: float = math.pi / 4.0) -> ScalingProblem:
    """Fixed rows per rank, growing global size (Figure 13's setting)."""
    check_positive_int("rows_per_rank", rows_per_rank)
    check_positive_int("n_ranks", n_ranks)
    return strong_scaling_problem(rows_per_rank * n_ranks, n_ranks,
                                  epsilon=epsilon, theta=theta)
