"""Sparse matrix-vector multiplication, sequential and distributed.

``sequential_spmv`` is the reference answer.  :class:`DistributedSpMV` is the
functional distributed version: one instance per rank, exchanging halo entries
through a persistent neighborhood collective (any variant) on the simulated MPI
runtime, exactly the structure of ``hypre_ParCSRMatrixMatvec``.  The
integration tests run it at small rank counts and check the result against the
sequential product to machine precision; that is the correctness argument for
replacing Hypre's point-to-point communication with the optimized collectives.

:class:`WorldSpMV` is the world-stepped form of the same computation: every
rank's halo exchange runs through the batched
:class:`~repro.simmpi.engine.ExchangeEngine` (one engine, no threads, no
per-message envelopes), which is what makes paper-scale rank counts tractable
in pure Python.  ``distributed_spmv_results`` executes through it by default
and keeps the envelope-routed thread-per-rank path as the pinned reference
(``runtime="threads"``); the two are byte-identical.

Example (doctest): distribute a tiny matrix over 4 simulated ranks and check
the world-stepped product against the sequential reference.

>>> import numpy as np
>>> from repro.sparse import ParCSRMatrix, RowPartition, poisson_2d
>>> from repro.sparse.spmv import WorldSpMV, distributed_spmv_results, sequential_spmv
>>> from repro.topology import paper_mapping
>>> matrix = ParCSRMatrix(poisson_2d((6, 6)), RowPartition.even(36, 4))
>>> mapping = paper_mapping(4, ranks_per_node=2)
>>> x = np.arange(36, dtype=np.float64)
>>> spmv = WorldSpMV(matrix, mapping, variant="full")
>>> np.allclose(spmv.multiply(x), sequential_spmv(matrix, x))
True
>>> np.array_equal(distributed_spmv_results(matrix, mapping, x),
...                spmv.multiply(x))
True
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.api import neighbor_alltoallv_init, neighbor_alltoallv_init_world
from repro.collectives.plan import Variant
from repro.pattern.builders import neighbor_lists
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import ExchangeEngine
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.sparse.comm_pkg import build_comm_pkg, pattern_from_parcsr
from repro.sparse.parcsr import ParCSRMatrix
from repro.topology.mapping import RankMapping
from repro.utils.errors import ValidationError


def sequential_spmv(matrix: ParCSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference product ``A @ x`` computed on the global matrix."""
    return matrix.spmv(x)


class DistributedSpMV:
    """One rank's persistent distributed SpMV.

    Construction is collective: every rank of the communicator builds its own
    instance with the same matrix and mapping.  ``multiply`` performs the halo
    exchange through the configured neighborhood-collective variant and then
    the local ``diag``/``offd`` products.
    """

    def __init__(self, comm: SimComm, matrix: ParCSRMatrix, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES):
        if comm.size < matrix.n_ranks:
            raise ValidationError(
                f"communicator has {comm.size} ranks but the matrix is partitioned "
                f"over {matrix.n_ranks}"
            )
        self.comm = comm
        self.matrix = matrix
        self.mapping = mapping
        self.rank = comm.rank
        self.blocks = matrix.local_blocks(self.rank)
        self.row_range = self.blocks.row_range

        pkg = build_comm_pkg(matrix)
        # The collective is built from the comm-pkg index arrays directly —
        # no per-item list conversion at the boundary.
        send_items = pkg.send_map(self.rank)
        recv_items = pkg.recv_map(self.rank)
        sources = np.array(sorted(recv_items), dtype=np.int64)
        destinations = np.array(sorted(send_items), dtype=np.int64)
        graph_comm = dist_graph_create_adjacent(comm, sources, destinations,
                                                validate=False)
        self.collective = neighbor_alltoallv_init(
            graph_comm, send_items, recv_items, mapping,
            variant=variant, strategy=strategy, dtype=np.float64)
        # The halo exchange is array-native: precompute the index arrays that
        # connect the local vector to the dense exchange input and the dense
        # halo output to the offd product input — the per-iteration path is
        # then three fancy indexes and no per-item Python work.
        first, _ = self.row_range
        self._owned_positions = self.collective.owned_item_ids - first
        col_map = self.blocks.col_map_offd
        recv_ids = self.collective.recv_item_ids
        sorter = np.argsort(col_map)
        self._halo_positions = sorter[np.searchsorted(col_map, recv_ids,
                                                      sorter=sorter)]

    @property
    def n_local_rows(self) -> int:
        """Rows owned by this rank."""
        return self.blocks.n_local_rows

    def multiply(self, x_local: np.ndarray) -> np.ndarray:
        """Compute the local rows of ``A @ x``.

        ``x_local`` holds this rank's owned entries of the global vector; the
        returned array holds the owned entries of the product.
        """
        x_local = np.asarray(x_local, dtype=np.float64)
        if x_local.shape != (self.n_local_rows,):
            raise ValidationError(
                f"x_local must have shape ({self.n_local_rows},), got {x_local.shape}"
            )
        halo = self.collective.exchange(x_local[self._owned_positions])

        result = self.blocks.diag @ x_local
        if self.blocks.n_offd_cols:
            x_offd = np.zeros(self.blocks.n_offd_cols, dtype=np.float64)
            x_offd[self._halo_positions] = halo
            result = result + self.blocks.offd @ x_offd
        return result


class WorldSpMV:
    """World-stepped distributed SpMV: all ranks advance in lockstep.

    Holds every rank's local blocks plus one world-stepped collective for the
    halo exchange, so ``multiply`` runs a full distributed product on a single
    thread: one batched exchange round (O(phases) numpy calls across *all*
    ranks) followed by the per-rank ``diag``/``offd`` products.  Numerically
    this is byte-identical to running :class:`DistributedSpMV` on every rank
    of the envelope-routed runtime — the equivalence tests pin it — but the
    data path never creates a per-message Python object, which is what lets
    the experiment drivers execute paper-scale rank counts.
    """

    def __init__(self, matrix: ParCSRMatrix, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None):
        self.matrix = matrix
        self.mapping = mapping
        self.n_ranks = matrix.n_ranks
        pattern = pattern_from_parcsr(matrix)
        self.collective = neighbor_alltoallv_init_world(
            pattern, mapping, variant=variant, strategy=strategy,
            engine=engine, profiler=profiler)
        self.blocks = [matrix.local_blocks(rank) for rank in range(self.n_ranks)]
        # Per-rank index arrays, exactly as in DistributedSpMV: local-vector
        # positions of the owned exchange input, and offd-column positions of
        # the dense halo output.
        self._owned_positions: List[np.ndarray] = []
        self._halo_positions: List[np.ndarray] = []
        for rank, blocks in enumerate(self.blocks):
            first, _ = blocks.row_range
            self._owned_positions.append(
                self.collective.owned_item_ids(rank) - first)
            col_map = blocks.col_map_offd
            recv_ids = self.collective.recv_item_ids(rank)
            sorter = np.argsort(col_map)
            self._halo_positions.append(
                sorter[np.searchsorted(col_map, recv_ids, sorter=sorter)])

    @property
    def n_rows(self) -> int:
        """Global rows of the distributed operator."""
        return self.matrix.n_rows

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for the *global* vector ``x`` (one call, all ranks)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.matrix.n_rows,):
            raise ValidationError(
                f"x must have shape ({self.matrix.n_rows},), got {x.shape}"
            )
        values = [x[blocks.row_range[0]:blocks.row_range[1]][positions]
                  for blocks, positions in zip(self.blocks, self._owned_positions)]
        halos = self.collective.exchange(values)
        result = np.empty(self.matrix.n_rows, dtype=np.float64)
        for rank, blocks in enumerate(self.blocks):
            first, last = blocks.row_range
            local = blocks.diag @ x[first:last]
            if blocks.n_offd_cols:
                x_offd = np.zeros(blocks.n_offd_cols, dtype=np.float64)
                x_offd[self._halo_positions[rank]] = halos[rank]
                local = local + blocks.offd @ x_offd
            result[first:last] = local
        return result


def distributed_spmv_results(matrix: ParCSRMatrix, mapping: RankMapping,
                             x: np.ndarray, *,
                             variant: Variant | str = Variant.PARTIAL,
                             strategy: BalanceStrategy = BalanceStrategy.BYTES,
                             timeout: float = 120.0,
                             runtime: str = "engine") -> np.ndarray:
    """Run a full distributed SpMV and assemble ``A @ x``.

    This is the one-call form used by tests and examples.  With the default
    ``runtime="engine"`` the product runs world-stepped through
    :class:`WorldSpMV` (single thread, batched exchange).
    ``runtime="threads"`` launches one simulated-rank thread per partition
    entry on the envelope-routed runtime — the pinned reference path, byte-
    identical to the engine.  ``timeout`` bounds only the threaded run (the
    engine path never blocks, so it has no deadline to enforce).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_rows,):
        raise ValidationError(f"x must have shape ({matrix.n_rows},), got {x.shape}")
    if runtime == "engine":
        return WorldSpMV(matrix, mapping, variant=variant,
                         strategy=strategy).multiply(x)
    if runtime != "threads":
        raise ValidationError(
            f"runtime must be 'engine' or 'threads', got {runtime!r}"
        )

    from repro.simmpi.world import run_spmd  # local import to avoid cycles at import time

    def program(comm: SimComm) -> List[float]:
        spmv = DistributedSpMV(comm, matrix, mapping, variant=variant, strategy=strategy)
        first, last = spmv.row_range
        return spmv.multiply(x[first:last]).tolist()

    per_rank = run_spmd(matrix.n_ranks, program, timeout=timeout)
    result = np.empty(matrix.n_rows, dtype=np.float64)
    for rank, values in enumerate(per_rank):
        first, last = matrix.partition.row_range(rank)
        result[first:last] = values
    return result
