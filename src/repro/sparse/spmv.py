"""Sparse matrix-vector multiplication, sequential and distributed.

``sequential_spmv`` is the reference answer.  :class:`DistributedSpMV` is the
functional distributed version: one instance per rank, exchanging halo entries
through a persistent neighborhood collective (any variant) on the simulated MPI
runtime, exactly the structure of ``hypre_ParCSRMatrixMatvec``.  The
integration tests run it at small rank counts and check the result against the
sequential product to machine precision; that is the correctness argument for
replacing Hypre's point-to-point communication with the optimized collectives.

:class:`WorldSpMV` is the world-stepped form of the same computation: every
rank's halo exchange runs through the batched
:class:`~repro.simmpi.engine.ExchangeEngine` (one engine, no threads, no
per-message envelopes), which is what makes paper-scale rank counts tractable
in pure Python.  ``distributed_spmv_results`` executes through it by default
and keeps the envelope-routed thread-per-rank path as the pinned reference
(``runtime="threads"``); the two are byte-identical.

Example (doctest): distribute a tiny matrix over 4 simulated ranks and check
the world-stepped product against the sequential reference.

>>> import numpy as np
>>> from repro.sparse import ParCSRMatrix, RowPartition, poisson_2d
>>> from repro.sparse.spmv import WorldSpMV, distributed_spmv_results, sequential_spmv
>>> from repro.topology import paper_mapping
>>> matrix = ParCSRMatrix(poisson_2d((6, 6)), RowPartition.even(36, 4))
>>> mapping = paper_mapping(4, ranks_per_node=2)
>>> x = np.arange(36, dtype=np.float64)
>>> spmv = WorldSpMV(matrix, mapping, variant="full")
>>> np.allclose(spmv.multiply(x), sequential_spmv(matrix, x))
True
>>> np.array_equal(distributed_spmv_results(matrix, mapping, x),
...                spmv.multiply(x))
True
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.api import neighbor_alltoallv_init, neighbor_alltoallv_init_world
from repro.collectives.plan import Variant
from repro.pattern.builders import neighbor_lists
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import ENGINE_RUNTIMES, ExchangeEngine, default_runtime
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import dist_graph_create_adjacent
from repro.sparse.comm_pkg import (
    build_comm_pkg,
    build_transfer_comm_pkg,
    pattern_from_parcsr,
    transfer_pattern,
)
from repro.sparse.parcsr import ParCSRMatrix, ParCSRRectMatrix
from repro.topology.mapping import RankMapping
from repro.utils.errors import ValidationError


def sequential_spmv(matrix: ParCSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference product ``A @ x`` computed on the global matrix."""
    return matrix.spmv(x)


def check_mapping_covers(mapping: RankMapping, n_ranks: int) -> None:
    """Reject a rank mapping smaller than the matrix partition up front.

    Without this guard the mismatch surfaces only deep inside the planner
    (an out-of-range region lookup) once an aggregated variant is selected.
    """
    if mapping.n_ranks < n_ranks:
        raise ValidationError(
            f"mapping covers {mapping.n_ranks} ranks but the matrix is "
            f"partitioned over {n_ranks}"
        )


def _halo_positions(col_map_offd: np.ndarray, recv_ids: np.ndarray) -> np.ndarray:
    """Positions of the received halo ids inside a rank's ``col_map_offd``."""
    sorter = np.argsort(col_map_offd)
    return sorter[np.searchsorted(col_map_offd, recv_ids, sorter=sorter)]


def _init_rank_collective(comm: SimComm, pkg, mapping: RankMapping,
                          variant: Variant | str, strategy: BalanceStrategy):
    """One rank's persistent collective from a comm package (collective call).

    The shared setup of the square and rectangular per-rank SpMVs: derive
    this rank's send/recv maps and neighbor lists from the package, create
    the graph communicator, and initialise the persistent collective.
    """
    send_items = pkg.send_map(comm.rank)
    recv_items = pkg.recv_map(comm.rank)
    sources = np.array(sorted(recv_items), dtype=np.int64)
    destinations = np.array(sorted(send_items), dtype=np.int64)
    graph_comm = dist_graph_create_adjacent(comm, sources, destinations,
                                            validate=False)
    return neighbor_alltoallv_init(graph_comm, send_items, recv_items, mapping,
                                   variant=variant, strategy=strategy,
                                   dtype=np.float64)


def _world_positions(collective, blocks_list, input_base):
    """Per-rank (owned, halo) index arrays of a world-stepped SpMV.

    ``input_base(blocks)`` gives the first global index of the rank's slice
    of the *input* vector (row range for a square SpMV, column range for a
    grid transfer).  Both sides come straight from the world exchange's
    concatenated columns: one broadcast subtraction plus one split for the
    owned positions, one searchsorted per rank for the halo side.
    """
    world = collective.world
    bases = np.fromiter((int(input_base(blocks)) for blocks in blocks_list),
                        dtype=np.int64, count=len(blocks_list))
    owned_counts = np.diff(world.owned_offsets)
    owned_positions = np.split(
        world.owned_items_all - np.repeat(bases, owned_counts),
        world.owned_offsets[1:-1])
    halo_positions = [
        _halo_positions(blocks.col_map_offd, recv_ids)
        for blocks, recv_ids in zip(
            blocks_list,
            np.split(world.result_items_all, world.result_offsets[1:-1]))]
    return owned_positions, halo_positions


class DistributedSpMV:
    """One rank's persistent distributed SpMV.

    Construction is collective: every rank of the communicator builds its own
    instance with the same matrix and mapping.  ``multiply`` performs the halo
    exchange through the configured neighborhood-collective variant and then
    the local ``diag``/``offd`` products.
    """

    def __init__(self, comm: SimComm, matrix: ParCSRMatrix, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 collective=None):
        if comm.size < matrix.n_ranks:
            raise ValidationError(
                f"communicator has {comm.size} ranks but the matrix is partitioned "
                f"over {matrix.n_ranks}"
            )
        check_mapping_covers(mapping, matrix.n_ranks)
        self.comm = comm
        self.matrix = matrix
        self.mapping = mapping
        self.rank = comm.rank
        self.blocks = matrix.local_blocks(self.rank)
        self.row_range = self.blocks.row_range

        # The collective is built from the comm-pkg index arrays directly —
        # no per-item list conversion at the boundary.  An injected
        # ``collective`` (e.g. from a batched ``neighbor_alltoallv_init_many``
        # covering a whole hierarchy's setup) skips the per-instance gather.
        if collective is None:
            collective = _init_rank_collective(comm, build_comm_pkg(matrix),
                                               mapping, variant, strategy)
        self.collective = collective
        # The halo exchange is array-native: precompute the index arrays that
        # connect the local vector to the dense exchange input and the dense
        # halo output to the offd product input — the per-iteration path is
        # then three fancy indexes and no per-item Python work.
        first, _ = self.row_range
        self._owned_positions = self.collective.owned_item_ids - first
        self._halo_positions = _halo_positions(self.blocks.col_map_offd,
                                               self.collective.recv_item_ids)

    @property
    def n_local_rows(self) -> int:
        """Rows owned by this rank."""
        return self.blocks.n_local_rows

    def multiply(self, x_local: np.ndarray) -> np.ndarray:
        """Compute the local rows of ``A @ x``.

        ``x_local`` holds this rank's owned entries of the global vector; the
        returned array holds the owned entries of the product.
        """
        x_local = np.asarray(x_local, dtype=np.float64)
        if x_local.shape != (self.n_local_rows,):
            raise ValidationError(
                f"x_local must have shape ({self.n_local_rows},), got {x_local.shape}"
            )
        halo = self.collective.exchange(x_local[self._owned_positions])

        result = self.blocks.diag @ x_local
        if self.blocks.n_offd_cols:
            x_offd = np.zeros(self.blocks.n_offd_cols, dtype=np.float64)
            x_offd[self._halo_positions] = halo
            result = result + self.blocks.offd @ x_offd
        return result


class WorldSpMV:
    """World-stepped distributed SpMV: all ranks advance in lockstep.

    Holds every rank's local blocks plus one world-stepped collective for the
    halo exchange, so ``multiply`` runs a full distributed product on a single
    thread: one batched exchange round (O(phases) numpy calls across *all*
    ranks) followed by the per-rank ``diag``/``offd`` products.  Numerically
    this is byte-identical to running :class:`DistributedSpMV` on every rank
    of the envelope-routed runtime — the equivalence tests pin it — but the
    data path never creates a per-message Python object, which is what lets
    the experiment drivers execute paper-scale rank counts.
    """

    def __init__(self, matrix: ParCSRMatrix, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None,
                 runtime: str | None = None,
                 n_workers: int | None = None,
                 on_failure: str | None = None):
        check_mapping_covers(mapping, matrix.n_ranks)
        self.matrix = matrix
        self.mapping = mapping
        self.n_ranks = matrix.n_ranks
        pattern = pattern_from_parcsr(matrix)
        self.collective = neighbor_alltoallv_init_world(
            pattern, mapping, variant=variant, strategy=strategy,
            engine=engine, profiler=profiler, runtime=runtime,
            n_workers=n_workers, on_failure=on_failure)
        self.blocks = matrix.all_local_blocks()
        # Per-rank index arrays, exactly as in DistributedSpMV: local-vector
        # positions of the owned exchange input, and offd-column positions of
        # the dense halo output.
        self._owned_positions, self._halo_positions = _world_positions(
            self.collective, self.blocks, lambda blocks: blocks.row_range[0])

    @property
    def n_rows(self) -> int:
        """Global rows of the distributed operator."""
        return self.matrix.n_rows

    def close(self) -> None:
        """Release the halo collective's private engine (workers, segments)."""
        self.collective.close()

    def __enter__(self) -> "WorldSpMV":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for the *global* vector ``x`` (one call, all ranks)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.matrix.n_rows,):
            raise ValidationError(
                f"x must have shape ({self.matrix.n_rows},), got {x.shape}"
            )
        values = [x[blocks.row_range[0]:blocks.row_range[1]][positions]
                  for blocks, positions in zip(self.blocks, self._owned_positions)]
        halos = self.collective.exchange(values)
        result = np.empty(self.matrix.n_rows, dtype=np.float64)
        for rank, blocks in enumerate(self.blocks):
            first, last = blocks.row_range
            local = blocks.diag @ x[first:last]
            if blocks.n_offd_cols:
                x_offd = np.zeros(blocks.n_offd_cols, dtype=np.float64)
                x_offd[self._halo_positions[rank]] = halos[rank]
                local = local + blocks.offd @ x_offd
            result[first:last] = local
        return result


class DistributedRectSpMV:
    """One rank's persistent distributed grid-transfer product.

    The rectangular counterpart of :class:`DistributedSpMV`: the input vector
    is distributed over the *column* partition, the output over the *row*
    partition, and the halo exchange moves the off-process input entries
    (coarse values for a prolongation, fine residual values for a
    restriction) through the configured neighborhood-collective variant.
    Construction is collective, one instance per rank.
    """

    def __init__(self, comm: SimComm, matrix: ParCSRRectMatrix,
                 mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 collective=None):
        if comm.size < matrix.n_ranks:
            raise ValidationError(
                f"communicator has {comm.size} ranks but the matrix is partitioned "
                f"over {matrix.n_ranks}"
            )
        check_mapping_covers(mapping, matrix.n_ranks)
        self.comm = comm
        self.matrix = matrix
        self.mapping = mapping
        self.rank = comm.rank
        self.blocks = matrix.local_blocks(self.rank)
        self.row_range = self.blocks.row_range
        self.col_range = self.blocks.col_range

        if collective is None:
            collective = _init_rank_collective(
                comm, build_transfer_comm_pkg(matrix), mapping, variant, strategy)
        self.collective = collective
        col_first, _ = self.col_range
        self._owned_positions = self.collective.owned_item_ids - col_first
        self._halo_positions = _halo_positions(self.blocks.col_map_offd,
                                               self.collective.recv_item_ids)

    @property
    def n_local_rows(self) -> int:
        """Output-vector entries owned by this rank."""
        return self.blocks.n_local_rows

    @property
    def n_local_cols(self) -> int:
        """Input-vector entries owned by this rank."""
        return self.blocks.n_local_cols

    def multiply(self, x_local: np.ndarray) -> np.ndarray:
        """Compute the local rows of ``A @ x`` from the owned input entries."""
        x_local = np.asarray(x_local, dtype=np.float64)
        if x_local.shape != (self.n_local_cols,):
            raise ValidationError(
                f"x_local must have shape ({self.n_local_cols},), got {x_local.shape}"
            )
        halo = self.collective.exchange(x_local[self._owned_positions])

        result = self.blocks.diag @ x_local
        if self.blocks.n_offd_cols:
            x_offd = np.zeros(self.blocks.n_offd_cols, dtype=np.float64)
            x_offd[self._halo_positions] = halo
            result = result + self.blocks.offd @ x_offd
        return result


class WorldRectSpMV:
    """World-stepped distributed grid-transfer product (all ranks in lockstep).

    The rectangular counterpart of :class:`WorldSpMV`: ``multiply`` takes the
    *global* input vector (column space) and returns the *global* output
    vector (row space), running every rank's halo exchange through one
    batched :class:`~repro.simmpi.engine.ExchangeEngine` round and then the
    per-rank ``diag``/``offd`` products.  Byte-identical to running
    :class:`DistributedRectSpMV` on every rank of the envelope-routed
    runtime — the solve-phase equivalence tests pin it.
    """

    def __init__(self, matrix: ParCSRRectMatrix, mapping: RankMapping, *,
                 variant: Variant | str = Variant.PARTIAL,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None,
                 runtime: str | None = None,
                 n_workers: int | None = None,
                 on_failure: str | None = None):
        check_mapping_covers(mapping, matrix.n_ranks)
        self.matrix = matrix
        self.mapping = mapping
        self.n_ranks = matrix.n_ranks
        pattern = transfer_pattern(matrix)
        self.collective = neighbor_alltoallv_init_world(
            pattern, mapping, variant=variant, strategy=strategy,
            engine=engine, profiler=profiler, runtime=runtime,
            n_workers=n_workers, on_failure=on_failure)
        self.blocks = matrix.all_local_blocks()
        self._owned_positions, self._halo_positions = _world_positions(
            self.collective, self.blocks, lambda blocks: blocks.col_range[0])

    @property
    def n_rows(self) -> int:
        """Global output-vector length."""
        return self.matrix.n_rows

    def close(self) -> None:
        """Release the halo collective's private engine (workers, segments)."""
        self.collective.close()

    def __enter__(self) -> "WorldRectSpMV":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def n_cols(self) -> int:
        """Global input-vector length."""
        return self.matrix.n_cols

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for the global input vector (one call, all ranks)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValidationError(
                f"x must have shape ({self.n_cols},), got {x.shape}"
            )
        values = [x[blocks.col_range[0]:blocks.col_range[1]][positions]
                  for blocks, positions in zip(self.blocks, self._owned_positions)]
        halos = self.collective.exchange(values)
        result = np.empty(self.n_rows, dtype=np.float64)
        for rank, blocks in enumerate(self.blocks):
            first, last = blocks.row_range
            col_first, col_last = blocks.col_range
            local = blocks.diag @ x[col_first:col_last]
            if blocks.n_offd_cols:
                x_offd = np.zeros(blocks.n_offd_cols, dtype=np.float64)
                x_offd[self._halo_positions[rank]] = halos[rank]
                local = local + blocks.offd @ x_offd
            result[first:last] = local
        return result


def distributed_transfer_results(matrix: ParCSRRectMatrix, mapping: RankMapping,
                                 x: np.ndarray, *,
                                 variant: Variant | str = Variant.PARTIAL,
                                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                                 timeout: float = 120.0,
                                 runtime: str | None = None) -> np.ndarray:
    """Run a full distributed grid-transfer product and assemble ``A @ x``.

    The rectangular sibling of :func:`distributed_spmv_results`, with the same
    ``runtime`` switch: ``"engine"`` executes world-stepped through
    :class:`WorldRectSpMV`, ``"procs"`` does the same through the
    shared-memory worker pool, ``"threads"`` runs one
    :class:`DistributedRectSpMV` per simulated-rank thread (the pinned
    envelope-routed reference, byte-identical to both engine runtimes).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ValidationError(f"x must have shape ({matrix.n_cols},), got {x.shape}")
    check_mapping_covers(mapping, matrix.n_ranks)
    if runtime is None:
        runtime = default_runtime()
    if runtime in ENGINE_RUNTIMES:
        with WorldRectSpMV(matrix, mapping, variant=variant,
                           strategy=strategy, runtime=runtime) as spmv:
            return spmv.multiply(x)
    if runtime != "threads":
        raise ValidationError(
            f"runtime must be 'engine', 'threads' or 'procs', got {runtime!r}"
        )

    from repro.simmpi.world import run_spmd  # local import to avoid cycles at import time

    def program(comm: SimComm) -> List[float]:
        spmv = DistributedRectSpMV(comm, matrix, mapping, variant=variant,
                                   strategy=strategy)
        col_first, col_last = spmv.col_range
        return spmv.multiply(x[col_first:col_last]).tolist()

    per_rank = run_spmd(matrix.n_ranks, program, timeout=timeout)
    result = np.empty(matrix.n_rows, dtype=np.float64)
    for rank, values in enumerate(per_rank):
        first, last = matrix.row_partition.row_range(rank)
        result[first:last] = values
    return result


def distributed_spmv_results(matrix: ParCSRMatrix, mapping: RankMapping,
                             x: np.ndarray, *,
                             variant: Variant | str = Variant.PARTIAL,
                             strategy: BalanceStrategy = BalanceStrategy.BYTES,
                             timeout: float = 120.0,
                             runtime: str | None = None) -> np.ndarray:
    """Run a full distributed SpMV and assemble ``A @ x``.

    This is the one-call form used by tests and examples.  With the default
    ``runtime="engine"`` the product runs world-stepped through
    :class:`WorldSpMV` (single process, fused batched exchange);
    ``runtime="procs"`` executes the same world program on the shared-memory
    worker pool.  ``runtime="threads"`` launches one simulated-rank thread
    per partition entry on the envelope-routed runtime — the pinned
    reference path, byte-identical to both engine runtimes.  ``runtime=None``
    resolves through the ``REPRO_RUNTIME`` environment variable (falling
    back to ``"engine"``).  ``timeout`` bounds only the threaded run (the
    engine paths never block, so they have no deadline to enforce).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_rows,):
        raise ValidationError(f"x must have shape ({matrix.n_rows},), got {x.shape}")
    check_mapping_covers(mapping, matrix.n_ranks)
    if runtime is None:
        runtime = default_runtime()
    if runtime in ENGINE_RUNTIMES:
        with WorldSpMV(matrix, mapping, variant=variant,
                       strategy=strategy, runtime=runtime) as spmv:
            return spmv.multiply(x)
    if runtime != "threads":
        raise ValidationError(
            f"runtime must be 'engine', 'threads' or 'procs', got {runtime!r}"
        )

    from repro.simmpi.world import run_spmd  # local import to avoid cycles at import time

    def program(comm: SimComm) -> List[float]:
        spmv = DistributedSpMV(comm, matrix, mapping, variant=variant, strategy=strategy)
        first, last = spmv.row_range
        return spmv.multiply(x[first:last]).tolist()

    per_rank = run_spmd(matrix.n_ranks, program, timeout=timeout)
    result = np.empty(matrix.n_rows, dtype=np.float64)
    for rank, values in enumerate(per_rank):
        first, last = matrix.partition.row_range(rank)
        result[first:last] = values
    return result
