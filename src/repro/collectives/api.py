"""MPI-Advance-style user API for persistent neighborhood collectives.

The entry point mirrors how an application uses MPI Advance:

1. build a distributed-graph communicator from its neighbor lists
   (:func:`repro.simmpi.dist_graph_create_adjacent`),
2. call :func:`neighbor_alltoallv_init` with its send/receive maps (and, for
   the fully optimized variant, the item indices — the paper's proposed API
   extension), obtaining a persistent collective,
3. call ``start``/``wait`` every iteration.

``neighbor_alltoallv_init`` is a *collective* call: every rank of the
communicator must call it with its own local arguments.  The implementation
gathers the per-rank maps (the information a real library already holds inside
the topology communicator), builds the global pattern, runs the planner, and
returns a per-rank :class:`PersistentNeighborCollective` executing the plan.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.persistent import PersistentNeighborCollective
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.comm_pattern import CommPattern
from repro.simmpi.topo_comm import DistGraphComm
from repro.topology.mapping import RankMapping
from repro.utils.errors import CommunicationError, ValidationError


def _gather_pattern(graph_comm: DistGraphComm,
                    send_items: Mapping[int, Sequence[int]],
                    item_bytes: int) -> CommPattern:
    """Collectively assemble the global pattern from per-rank send maps."""
    local = {int(dest): [int(i) for i in items] for dest, items in send_items.items()}
    gathered = graph_comm.comm.allgather_obj(local)
    sends = {rank: entry for rank, entry in enumerate(gathered) if entry}
    return CommPattern(graph_comm.size, sends, item_bytes=item_bytes)


def neighbor_alltoallv_init(graph_comm: DistGraphComm,
                            send_items: Mapping[int, Sequence[int]],
                            recv_items: Mapping[int, Sequence[int]],
                            mapping: RankMapping,
                            *,
                            variant: Variant | str = Variant.PARTIAL,
                            strategy: BalanceStrategy = BalanceStrategy.BYTES,
                            item_bytes: int = 8) -> PersistentNeighborCollective:
    """Initialise a persistent neighborhood all-to-all-v (collective call).

    Parameters
    ----------
    graph_comm:
        Topology communicator created with ``dist_graph_create_adjacent``.
    send_items:
        ``{destination rank: item ids}`` this rank sends.  For the standard and
        partially optimized variants only the *lengths* of the item lists are
        semantically required (as in the MPI-4 API); the fully optimized
        variant uses the ids themselves — this is the paper's API extension.
    recv_items:
        ``{source rank: item ids}`` this rank expects.  Must be consistent
        with the neighbor lists of ``graph_comm``.
    mapping:
        Rank placement defining locality regions.
    variant:
        Which implementation to build (standard / partial / full or
        point_to_point for the Hypre-style reference).
    strategy:
        Load-balancing strategy for the aggregated variants.
    item_bytes:
        Size of one data item in bytes.
    """
    variant = Variant(variant)
    for dest in send_items:
        if int(dest) not in set(int(d) for d in graph_comm.destinations):
            raise ValidationError(
                f"rank {graph_comm.rank} sends to rank {dest} which is not among its "
                "graph destinations"
            )
    for src in recv_items:
        if int(src) not in set(int(s) for s in graph_comm.sources):
            raise ValidationError(
                f"rank {graph_comm.rank} receives from rank {src} which is not among "
                "its graph sources"
            )
    pattern = _gather_pattern(graph_comm, send_items, item_bytes)
    # Cross-check the receive side against the globally assembled pattern: the
    # items a rank expects must be exactly the items its sources declared.
    for src, items in recv_items.items():
        declared = set(pattern.send_items(int(src), graph_comm.rank).tolist())
        wanted = set(int(i) for i in items)
        if wanted != declared:
            raise CommunicationError(
                f"rank {graph_comm.rank} expects items {sorted(wanted)[:5]}... from rank "
                f"{src} but that rank declared {sorted(declared)[:5]}..."
            )
    plan = make_plan(pattern, mapping, variant, strategy=strategy)
    return PersistentNeighborCollective(graph_comm.comm, plan)


def neighbor_alltoallv(graph_comm: DistGraphComm,
                       send_items: Mapping[int, Sequence[int]],
                       recv_items: Mapping[int, Sequence[int]],
                       values: Mapping[int, float],
                       mapping: RankMapping,
                       *,
                       variant: Variant | str = Variant.PARTIAL,
                       strategy: BalanceStrategy = BalanceStrategy.BYTES,
                       item_bytes: int = 8) -> Dict[int, float]:
    """Non-persistent convenience wrapper: init, one exchange, done."""
    collective = neighbor_alltoallv_init(graph_comm, send_items, recv_items, mapping,
                                         variant=variant, strategy=strategy,
                                         item_bytes=item_bytes)
    return collective.exchange(values)


def pack_alltoallv_buffers(send_items: Mapping[int, Sequence[int]],
                           values: Mapping[int, float]
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Build classic MPI-style ``(sendbuf, counts, displs, neighbor order)`` buffers.

    Utility for applications that keep their data in alltoallv-style packed
    buffers; the neighborhood collective itself works with item-keyed values.
    """
    destinations = sorted(int(d) for d in send_items)
    counts = np.array([len(send_items[d]) for d in destinations], dtype=np.int64)
    displs = np.zeros(len(destinations) + 1, dtype=np.int64)
    np.cumsum(counts, out=displs[1:])
    buffer = np.empty(int(displs[-1]), dtype=np.float64)
    for d_index, dest in enumerate(destinations):
        for offset, item in enumerate(send_items[dest]):
            buffer[displs[d_index] + offset] = values[int(item)]
    return buffer, counts, displs[:-1], destinations


def unpack_alltoallv_buffers(recv_items: Mapping[int, Sequence[int]],
                             received: Mapping[int, float]
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Arrange received item values into MPI-style packed receive buffers."""
    sources = sorted(int(s) for s in recv_items)
    counts = np.array([len(recv_items[s]) for s in sources], dtype=np.int64)
    displs = np.zeros(len(sources) + 1, dtype=np.int64)
    np.cumsum(counts, out=displs[1:])
    buffer = np.empty(int(displs[-1]), dtype=np.float64)
    for s_index, src in enumerate(sources):
        for offset, item in enumerate(recv_items[src]):
            buffer[displs[s_index] + offset] = received[int(item)]
    return buffer, counts, displs[:-1], sources
