"""MPI-Advance-style user API for persistent neighborhood collectives.

The entry point mirrors how an application uses MPI Advance:

1. build a distributed-graph communicator from its neighbor lists
   (:func:`repro.simmpi.dist_graph_create_adjacent`),
2. call :func:`neighbor_alltoallv_init` with its send/receive maps (and, for
   the fully optimized variant, the item indices — the paper's proposed API
   extension), obtaining a persistent collective,
3. call ``start``/``wait`` every iteration with a dense value array.

``neighbor_alltoallv_init`` is a *collective* call: every rank of the
communicator must call it with its own local arguments.  The implementation
gathers the per-rank maps (the information a real library already holds inside
the topology communicator), builds the global pattern, runs the planner, and
returns a per-rank :class:`PersistentNeighborCollective` executing the plan.

The exchange is dtype-generic: ``dtype`` and ``item_size`` describe the
element type (e.g. ``dtype=np.float32, item_size=9`` for a D2Q9 lattice
Boltzmann distribution halo) and determine the wire size of every message;
the legacy ``item_bytes`` argument is only needed to model hypothetical sizes.

For analysis and large-scale simulation there is also the *world-stepped*
entry point :func:`neighbor_alltoallv_init_world`: it takes the global
pattern directly and executes whole iterations for all ranks through the
batched :class:`~repro.simmpi.engine.ExchangeEngine` — same results, same
profiler totals, no threads.

Example (doctest): rank 0 sends items 0 and 1 to rank 1, rank 1 sends item 5
back, world-stepped.

>>> import numpy as np
>>> from repro.collectives import neighbor_alltoallv_init_world
>>> from repro.pattern import CommPattern
>>> from repro.topology import paper_mapping
>>> pattern = CommPattern(2, {0: {1: [0, 1]}, 1: {0: [5]}})
>>> mapping = paper_mapping(2, ranks_per_node=2)
>>> collective = neighbor_alltoallv_init_world(pattern, mapping,
...                                            variant="standard")
>>> collective.owned_item_ids(0)
array([0, 1])
>>> halos = collective.exchange([np.array([10.0, 11.0]), np.array([50.0])])
>>> halos[1]
array([10., 11.])
>>> halos[0]
array([50.])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.persistent import (
    PersistentNeighborCollective,
    WorldNeighborCollective,
)
from repro.collectives.plan import Variant
from repro.collectives.planner import make_plan
from repro.pattern.comm_pattern import CommPattern
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import ExchangeEngine
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.topo_comm import DistGraphComm
from repro.topology.mapping import RankMapping
from repro.utils.arrays import (
    INDEX_DTYPE,
    as_index_array,
    counts_to_displs,
    freeze_columns,
    gather_ranges,
)
from repro.utils.errors import CommunicationError, ValidationError


def _pack_send_map(send_items: Mapping[int, Sequence[int]]) -> np.ndarray:
    """Flatten one rank's ``{dest: items}`` map into an int64 wire packet.

    Layout: ``[n_edges, dests..., counts..., items...]`` with destinations in
    ascending order and empty item lists dropped — the per-rank slice of the
    global CSR build.
    """
    edges = sorted((int(dest), as_index_array(items))
                   for dest, items in send_items.items())
    edges = [(dest, items) for dest, items in edges if items.size]
    n_edges = len(edges)
    header = np.empty(1 + 2 * n_edges, dtype=INDEX_DTYPE)
    header[0] = n_edges
    header[1:1 + n_edges] = [dest for dest, _ in edges]
    header[1 + n_edges:] = [items.size for _, items in edges]
    return np.concatenate([header] + [items for _, items in edges]) \
        if n_edges else header


def _pattern_from_packets(n_ranks: int, flat: np.ndarray, sizes: np.ndarray,
                          *, dtype: np.dtype, item_size: int,
                          item_bytes: int | None) -> CommPattern:
    """Assemble the global pattern from gathered per-rank wire packets.

    ``flat`` concatenates one :func:`_pack_send_map` packet per rank
    (``sizes[r]`` long).  The parse is fully vectorized: edge counts are one
    fancy index of the packet heads, and the destination/count/item sections
    are three :func:`gather_ranges` passes — O(total) numpy work with no
    O(ranks) Python loop.
    """
    packet_starts = counts_to_displs(sizes)[:-1]
    edges_per_src = np.ascontiguousarray(flat[packet_starts])
    columns = (counts_to_displs(edges_per_src),
               gather_ranges(flat, packet_starts + 1, edges_per_src),
               counts_to_displs(gather_ranges(flat, packet_starts + 1 + edges_per_src,
                                              edges_per_src)),
               gather_ranges(flat, packet_starts + 1 + 2 * edges_per_src,
                             sizes - 1 - 2 * edges_per_src))
    freeze_columns(*columns)
    return CommPattern.from_csr(n_ranks, *columns, item_bytes=item_bytes,
                                dtype=dtype, item_size=item_size)


def _gather_pattern(graph_comm: DistGraphComm,
                    send_items: Mapping[int, Sequence[int]],
                    *, dtype: np.dtype, item_size: int,
                    item_bytes: int | None) -> CommPattern:
    """Collectively assemble the global pattern from per-rank send maps.

    Every rank contributes one packed int64 array (edge count, destinations,
    item counts, item ids); a single count/displacement array allgather
    replaces the object allgather of per-rank dicts, and the received packets
    are spliced straight into the pattern's CSR columns.
    """
    flat, sizes = graph_comm.comm.allgatherv_array(_pack_send_map(send_items))
    return _pattern_from_packets(graph_comm.size, flat, sizes, dtype=dtype,
                                 item_size=item_size, item_bytes=item_bytes)


def _check_recv_side(rank: int, recv_items: Mapping[int, Sequence[int]],
                     pattern: CommPattern) -> None:
    """Cross-check a rank's receive side against the globally assembled pattern.

    The items a rank expects must be exactly the items its sources declared
    (duplicate-insensitive set comparison, vectorized per source).
    """
    for src, items in recv_items.items():
        declared = np.unique(pattern.send_items(int(src), rank))
        wanted = np.unique(as_index_array(items))
        if not np.array_equal(wanted, declared):
            raise CommunicationError(
                f"rank {rank} expects items {wanted[:5].tolist()}... from rank "
                f"{src} but that rank declared {declared[:5].tolist()}..."
            )


def neighbor_alltoallv_init(graph_comm: DistGraphComm,
                            send_items: Mapping[int, Sequence[int]],
                            recv_items: Mapping[int, Sequence[int]],
                            mapping: RankMapping,
                            *,
                            variant: Variant | str = Variant.PARTIAL,
                            strategy: BalanceStrategy = BalanceStrategy.BYTES,
                            dtype: np.dtype | type | str = np.float64,
                            item_size: int = 1,
                            item_bytes: int | None = None
                            ) -> PersistentNeighborCollective:
    """Initialise a persistent neighborhood all-to-all-v (collective call).

    Parameters
    ----------
    graph_comm:
        Topology communicator created with ``dist_graph_create_adjacent``.
    send_items:
        ``{destination rank: item ids}`` this rank sends.  For the standard and
        partially optimized variants only the *lengths* of the item lists are
        semantically required (as in the MPI-4 API); the fully optimized
        variant uses the ids themselves — this is the paper's API extension.
    recv_items:
        ``{source rank: item ids}`` this rank expects.  Must be consistent
        with the neighbor lists of ``graph_comm``.
    mapping:
        Rank placement defining locality regions.
    variant:
        Which implementation to build (standard / partial / full or
        point_to_point for the Hypre-style reference).
    strategy:
        Load-balancing strategy for the aggregated variants.
    dtype, item_size:
        Element dtype and components per item of the exchanged values; the
        wire size of every message is ``count * item_size * dtype.itemsize``.
    item_bytes:
        Override of the modeled per-item wire size (defaults to the real one).
    """
    variant = Variant(variant)
    dtype = np.dtype(dtype)
    destination_set = {int(d) for d in graph_comm.destinations}
    for dest in send_items:
        if int(dest) not in destination_set:
            raise ValidationError(
                f"rank {graph_comm.rank} sends to rank {dest} which is not among its "
                "graph destinations"
            )
    source_set = {int(s) for s in graph_comm.sources}
    for src in recv_items:
        if int(src) not in source_set:
            raise ValidationError(
                f"rank {graph_comm.rank} receives from rank {src} which is not among "
                "its graph sources"
            )
    pattern = _gather_pattern(graph_comm, send_items, dtype=dtype,
                              item_size=item_size, item_bytes=item_bytes)
    _check_recv_side(graph_comm.rank, recv_items, pattern)
    plan = make_plan(pattern, mapping, variant, strategy=strategy)
    return PersistentNeighborCollective(graph_comm.comm, plan,
                                        dtype=dtype, item_size=item_size)


@dataclass(frozen=True)
class CollectiveRequest:
    """One collective's arguments inside a batched :func:`neighbor_alltoallv_init_many`.

    ``send_items`` / ``recv_items`` are this rank's maps, exactly as passed to
    :func:`neighbor_alltoallv_init`.  ``comm`` optionally names the
    communicator the returned collective executes on (e.g. a per-level
    duplicate carrying its own traffic callback); when ``None`` the batched
    init duplicates the gather communicator.
    """

    send_items: Mapping[int, Sequence[int]]
    recv_items: Mapping[int, Sequence[int]]
    dtype: np.dtype | type | str = np.float64
    item_size: int = 1
    item_bytes: int | None = None
    comm: SimComm | None = None


def neighbor_alltoallv_init_many(comm: SimComm,
                                 requests: Sequence[CollectiveRequest],
                                 mapping: RankMapping,
                                 *,
                                 variant: Variant | str = Variant.PARTIAL,
                                 strategy: BalanceStrategy = BalanceStrategy.BYTES
                                 ) -> list[PersistentNeighborCollective]:
    """Initialise many persistent collectives with ONE setup gather (collective call).

    Every rank calls this with the same number of requests in the same order
    (like any collective).  Instead of one ``allgatherv_array`` round per
    collective — the O(collectives) synchronisation a distributed V-cycle
    setup pays when each level's SpMV and grid transfers initialise
    separately — all requests' packed send maps travel in a single gather:
    per rank the wire packet is ``[len_0 .. len_{N-1}, packet_0 ..
    packet_{N-1}]``, and the decode back into per-request per-rank packets is
    two vectorized :func:`gather_ranges` passes.  Each request then builds
    its pattern, plan, and :class:`PersistentNeighborCollective` exactly as
    the one-at-a-time init does — the resulting collectives are
    byte-identical to individually initialised ones.
    """
    requests = list(requests)
    if not requests:
        return []
    n_requests = len(requests)
    packets = [_pack_send_map(request.send_items) for request in requests]
    lengths = np.array([packet.size for packet in packets], dtype=INDEX_DTYPE)
    flat, sizes = comm.allgatherv_array(np.concatenate([lengths] + packets))
    n_ranks = comm.size
    rank_starts = counts_to_displs(sizes)[:-1]
    if np.any(sizes < n_requests):
        raise CommunicationError(
            f"batched init expected {n_requests} packed requests from every rank"
        )
    # Per-(rank, request) packet lengths, then start offsets inside ``flat``:
    # each rank's slice leads with its N packet lengths, packets follow.
    length_table = gather_ranges(
        flat, rank_starts,
        np.full(n_ranks, n_requests, dtype=INDEX_DTYPE)).reshape(n_ranks,
                                                                 n_requests)
    packet_ends = np.cumsum(length_table, axis=1)
    packet_starts = (rank_starts[:, None] + n_requests
                     + packet_ends - length_table)
    collectives: list[PersistentNeighborCollective] = []
    for index, request in enumerate(requests):
        dtype = np.dtype(request.dtype)
        pattern = _pattern_from_packets(
            n_ranks,
            gather_ranges(flat, packet_starts[:, index], length_table[:, index]),
            np.ascontiguousarray(length_table[:, index]),
            dtype=dtype, item_size=request.item_size,
            item_bytes=request.item_bytes)
        _check_recv_side(comm.rank, request.recv_items, pattern)
        plan = make_plan(pattern, mapping, Variant(variant), strategy=strategy)
        run_comm = request.comm if request.comm is not None else comm.dup()
        collectives.append(PersistentNeighborCollective(
            run_comm, plan, dtype=dtype, item_size=request.item_size))
    return collectives


def neighbor_alltoallv_init_world(pattern: CommPattern,
                                  mapping: RankMapping,
                                  *,
                                  variant: Variant | str = Variant.PARTIAL,
                                  strategy: BalanceStrategy = BalanceStrategy.BYTES,
                                  dtype: np.dtype | type | str | None = None,
                                  item_size: int | None = None,
                                  engine: ExchangeEngine | None = None,
                                  profiler: TrafficProfiler | None = None,
                                  runtime: str | None = None,
                                  n_workers: int | None = None,
                                  on_failure: str | None = None
                                  ) -> WorldNeighborCollective:
    """Initialise a world-stepped persistent neighborhood all-to-all-v.

    The batched counterpart of :func:`neighbor_alltoallv_init`: instead of one
    per-rank handle built collectively over the simulated runtime, this takes
    the already-global ``pattern`` (what the per-rank path assembles with its
    setup gather), plans it once, compiles *every* rank's gather/scatter index
    arrays, and registers them with a world
    :class:`~repro.simmpi.engine.ExchangeEngine` — so one ``exchange`` call
    moves a whole iteration for all ranks with O(phases) numpy calls.

    ``dtype`` / ``item_size`` default to the pattern's element type.  Pass an
    ``engine`` to share one engine (and its profiler) across collectives, or a
    ``profiler`` to let the collective create a private engine around it;
    ``runtime`` / ``n_workers`` select the private engine's backend
    (``"engine"`` fused single-process, ``"procs"`` shared-memory worker
    pool) and ``on_failure`` its worker-failure policy.
    """
    plan = make_plan(pattern, mapping, Variant(variant), strategy=strategy)
    return WorldNeighborCollective(plan, dtype=dtype, item_size=item_size,
                                   engine=engine, profiler=profiler,
                                   runtime=runtime, n_workers=n_workers,
                                   on_failure=on_failure)


def neighbor_alltoallv(graph_comm: DistGraphComm,
                       send_items: Mapping[int, Sequence[int]],
                       recv_items: Mapping[int, Sequence[int]],
                       values: Union[np.ndarray, Mapping[int, float]],
                       mapping: RankMapping,
                       *,
                       variant: Variant | str = Variant.PARTIAL,
                       strategy: BalanceStrategy = BalanceStrategy.BYTES,
                       dtype: np.dtype | type | str = np.float64,
                       item_size: int = 1,
                       item_bytes: int | None = None
                       ) -> Union[np.ndarray, Dict[int, float]]:
    """Non-persistent convenience wrapper: init, one exchange, done.

    ``values`` is a dense array over this rank's owned items in ascending item
    id order (or, deprecated, an item-keyed mapping — the result mirrors the
    input style).
    """
    collective = neighbor_alltoallv_init(graph_comm, send_items, recv_items, mapping,
                                         variant=variant, strategy=strategy,
                                         dtype=dtype, item_size=item_size,
                                         item_bytes=item_bytes)
    return collective.exchange(values)


def _lookup_dense(item_lists: Mapping[int, Sequence[int]],
                  values: Mapping[int, float],
                  ranks: list[int], dtype: np.dtype | None, item_size: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared core of the alltoallv buffer helpers.

    Returns ``(buffer, counts, displs)`` where ``buffer`` concatenates the
    values of every rank's item list in rank order.  The value lookup is a
    single vectorized ``searchsorted`` — no per-item Python loop.
    """
    counts = np.array([len(item_lists[r]) for r in ranks], dtype=INDEX_DTYPE)
    displs = counts_to_displs(counts)
    wanted = np.array([int(i) for r in ranks for i in item_lists[r]],
                      dtype=INDEX_DTYPE)
    ids = np.fromiter(values.keys(), dtype=INDEX_DTYPE, count=len(values))
    table = np.asarray(list(values.values()))
    if item_size > 1:
        table = table.reshape(ids.size, item_size)
    if dtype is not None:
        table = table.astype(dtype, copy=False)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    positions = np.searchsorted(sorted_ids, wanted)
    found = positions < sorted_ids.size
    found[found] = sorted_ids[positions[found]] == wanted[found]
    if not found.all():
        raise ValidationError(f"no value for item(s) {wanted[~found][:5].tolist()}")
    buffer = table[order[positions]]
    return np.ascontiguousarray(buffer), counts, displs


def pack_alltoallv_buffers(send_items: Mapping[int, Sequence[int]],
                           values: Mapping[int, float],
                           *, dtype: np.dtype | type | str | None = None,
                           item_size: int = 1
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Build classic MPI-style ``(sendbuf, counts, displs, neighbor order)`` buffers.

    Utility for applications that keep their data in alltoallv-style packed
    buffers.  The packing is fully vectorized (one ``searchsorted`` + one
    fancy index) and dtype-aware: ``dtype`` defaults to the dtype of the
    values, and ``item_size > 1`` packs vector-valued items contiguously.
    """
    destinations = sorted(int(d) for d in send_items)
    buffer, counts, displs = _lookup_dense(send_items, values, destinations,
                                           np.dtype(dtype) if dtype else None,
                                           item_size)
    return buffer, counts, displs[:-1], destinations


def unpack_alltoallv_buffers(recv_items: Mapping[int, Sequence[int]],
                             received: Mapping[int, float],
                             *, dtype: np.dtype | type | str | None = None,
                             item_size: int = 1
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Arrange received item values into MPI-style packed receive buffers.

    Vectorized and dtype-aware, mirroring :func:`pack_alltoallv_buffers`.
    """
    sources = sorted(int(s) for s in recv_items)
    buffer, counts, displs = _lookup_dense(recv_items, received, sources,
                                           np.dtype(dtype) if dtype else None,
                                           item_size)
    return buffer, counts, displs[:-1], sources
