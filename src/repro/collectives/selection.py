"""Dynamic variant selection (the paper's future-work extension).

The paper observes that locality-aware collectives can *lose* on patterns with
little communication (the fine AMG levels) and win on dense ones (the middle
levels), and that a "simple performance measure is needed within the
neighborhood collective to dynamically select the optimal communication
strategy".  :func:`select_variant` implements exactly that: build every
variant's plan, time it with a cost model, optionally amortise the setup cost
over an expected iteration count, and pick the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.collectives.aggregation import BalanceStrategy
from repro.collectives.plan import CollectivePlan, Variant
from repro.collectives.planner import all_plans
from repro.pattern.comm_pattern import CommPattern
from repro.perfmodel.base import CostModel
from repro.perfmodel.params import SetupCostModel
from repro.topology.mapping import RankMapping
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a dynamic selection."""

    variant: Variant
    plan: CollectivePlan
    per_iteration: Mapping[Variant, float]
    setup: Mapping[Variant, float]
    expected_iterations: int

    def total_cost(self, variant: Variant) -> float:
        """Setup plus iteration cost over the expected horizon."""
        return self.setup[variant] + self.expected_iterations * self.per_iteration[variant]


def select_variant(pattern: CommPattern, mapping: RankMapping, model: CostModel, *,
                   expected_iterations: int = 1000,
                   include_setup: bool = True,
                   setup_model: SetupCostModel | None = None,
                   strategy: BalanceStrategy = BalanceStrategy.BYTES,
                   candidates: tuple[Variant, ...] = (
                       Variant.STANDARD, Variant.PARTIAL, Variant.FULL),
                   ) -> SelectionResult:
    """Pick the cheapest collective variant for a pattern under a cost model.

    Parameters
    ----------
    expected_iterations:
        How many Start/Wait iterations the setup cost will be amortised over
        (the solve phase of AMG typically runs hundreds to thousands).
    include_setup:
        When False only the per-iteration cost matters (the asymptotic
        choice); when True short-lived patterns fall back to cheaper setups.
    """
    if expected_iterations < 1:
        raise ValidationError("expected_iterations must be >= 1")
    setup_model = setup_model or SetupCostModel()
    plans = all_plans(pattern, mapping, strategy=strategy)

    per_iteration: Dict[Variant, float] = {}
    setup: Dict[Variant, float] = {}
    for variant in candidates:
        plan = plans[variant]
        per_iteration[variant] = plan.modeled_time(model)
        if include_setup and variant in (Variant.PARTIAL, Variant.FULL):
            n_messages, slot_bytes = plan.setup_costs()
            setup[variant] = setup_model.cost(n_messages, slot_bytes)
        else:
            setup[variant] = 0.0

    def total(variant: Variant) -> float:
        return setup[variant] + expected_iterations * per_iteration[variant]

    best = min(candidates, key=lambda v: (total(v), v.value))
    return SelectionResult(variant=best, plan=plans[best],
                           per_iteration=per_iteration, setup=setup,
                           expected_iterations=expected_iterations)


def best_per_pattern(patterns: Mapping[object, CommPattern], mapping: RankMapping,
                     model: CostModel, **kwargs) -> Dict[object, SelectionResult]:
    """Run :func:`select_variant` over a family of patterns (e.g. AMG levels)."""
    return {key: select_variant(pattern, mapping, model, **kwargs)
            for key, pattern in patterns.items()}
