"""The seed's Slot-list planner, kept verbatim as a golden baseline.

The production planner (:mod:`repro.collectives.planner`) compiles patterns
into columnar :class:`~repro.collectives.plan.SlotTable` plans.  This module
preserves the original per-slot implementation — one Python ``Slot`` NamedTuple
per routed item, dict-of-list grouping, per-slot statistics and validation —
for two purposes:

* the golden-equivalence tests assert that the columnar planner produces
  byte-identical phases, payload keys, and statistics for every variant, and
* the planner microbenchmark gates the columnar path at >= 5x the speed of
  this baseline.

Nothing in the library imports this module on a hot path.  Do not "optimise"
it: its value is being a faithful copy of the seed semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.collectives.aggregation import (
    AggregationAssignment,
    BalanceStrategy,
    collect_region_traffic,
    setup_aggregation,
)
from repro.collectives.plan import Phase, Slot, Variant
from repro.pattern.comm_pattern import CommPattern
from repro.pattern.statistics import PatternStatistics
from repro.topology.mapping import RankMapping
from repro.utils.errors import PlanError


def reference_unique_payload_keys(slots: Sequence[Slot]) -> List[Tuple[int, int]]:
    """Seed deduplication: first-appearance dict loop over slot objects."""
    seen: Dict[Tuple[int, int], None] = {}
    for slot in slots:
        seen.setdefault((slot.origin, slot.item), None)
    return list(seen.keys())


@dataclass
class ReferenceMessage:
    """Seed ``PlannedMessage``: slot list plus explicit payload-key list."""

    phase: Phase
    src: int
    dest: int
    slots: List[Slot]
    payload_keys: List[Tuple[int, int]] = field(default=None)

    def __post_init__(self):
        if self.src == self.dest:
            raise PlanError(f"message with identical endpoints (rank {self.src})")
        if not self.slots:
            raise PlanError(f"empty message {self.src}->{self.dest} in phase {self.phase}")
        if self.payload_keys is None:
            self.payload_keys = [(slot.origin, slot.item) for slot in self.slots]
        if not self.payload_keys:
            raise PlanError("message carries no payload")

    def payload_count(self) -> int:
        return len(self.payload_keys)

    def nbytes(self, item_bytes: int) -> int:
        return self.payload_count() * item_bytes


@dataclass
class ReferencePlan:
    """Seed ``CollectivePlan``: dict-loop statistics and per-slot validation."""

    variant: Variant
    pattern: CommPattern
    mapping: RankMapping
    phases: Dict[Phase, List[ReferenceMessage]]
    self_deliveries: List[Slot] = field(default_factory=list)

    def messages(self, phase: Phase | None = None):
        if phase is not None:
            yield from self.phases.get(phase, [])
            return
        for messages in self.phases.values():
            yield from messages

    @property
    def item_bytes(self) -> int:
        return self.pattern.item_bytes

    @property
    def n_messages(self) -> int:
        return sum(len(msgs) for msgs in self.phases.values())

    def statistics(self) -> PatternStatistics:
        stats = PatternStatistics(n_ranks=self.pattern.n_ranks)
        for message in self.messages():
            is_local = self.mapping.same_region(message.src, message.dest)
            stats.add_message(message.src, is_local, message.nbytes(self.item_bytes))
        return stats

    def required_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        required: Dict[Tuple[int, int, int], int] = {}
        for src, dest, items in self.pattern.edges():
            for item in items.tolist():
                key = (src, int(item), dest)
                required[key] = required.get(key, 0) + 1
        return required

    def planned_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        terminal = {
            Variant.POINT_TO_POINT: (Phase.DIRECT,),
            Variant.STANDARD: (Phase.DIRECT,),
            Variant.PARTIAL: (Phase.LOCAL, Phase.FINAL_REDIST),
            Variant.FULL: (Phase.LOCAL, Phase.FINAL_REDIST),
        }[self.variant]
        delivered: Dict[Tuple[int, int, int], int] = {}
        for phase in terminal:
            for message in self.phases.get(phase, []):
                for slot in message.slots:
                    if slot.final_dest != message.dest:
                        raise PlanError(
                            f"terminal message {message.src}->{message.dest} carries a slot "
                            f"bound for rank {slot.final_dest}"
                        )
                    key = (slot.origin, slot.item, slot.final_dest)
                    delivered[key] = delivered.get(key, 0) + 1
        for slot in self.self_deliveries:
            key = (slot.origin, slot.item, slot.final_dest)
            delivered[key] = delivered.get(key, 0) + 1
        return delivered

    def validate(self) -> None:
        n = self.pattern.n_ranks
        for message in self.messages():
            if not (0 <= message.src < n and 0 <= message.dest < n):
                raise PlanError(
                    f"message endpoints ({message.src}, {message.dest}) out of range"
                )
            same_region = self.mapping.same_region(message.src, message.dest)
            if message.phase is Phase.GLOBAL and same_region:
                raise PlanError(
                    f"inter-region phase message {message.src}->{message.dest} stays "
                    "inside a region"
                )
            if message.phase in (Phase.LOCAL, Phase.SETUP_REDIST, Phase.FINAL_REDIST) \
                    and not same_region:
                raise PlanError(
                    f"intra-region phase {message.phase.value} message "
                    f"{message.src}->{message.dest} crosses regions"
                )
        required = self.required_deliveries()
        required_set = set(required)
        delivered = self.planned_deliveries()
        delivered_set = set(delivered)
        missing = required_set - delivered_set
        if missing:
            example = sorted(missing)[:3]
            raise PlanError(f"plan misses {len(missing)} deliveries, e.g. {example}")
        spurious = delivered_set - required_set
        if spurious:
            example = sorted(spurious)[:3]
            raise PlanError(f"plan performs {len(spurious)} spurious deliveries, e.g. {example}")
        duplicated = [key for key, count in delivered.items() if count > 1]
        if duplicated:
            raise PlanError(
                f"plan delivers {len(duplicated)} items more than once, "
                f"e.g. {sorted(duplicated)[:3]}"
            )


def _edge_slots(src: int, dest: int, items: np.ndarray) -> List[Slot]:
    """Slots of one pattern edge, with within-edge duplicates removed."""
    unique_items = np.unique(items)
    return [Slot(origin=src, item=int(item), final_dest=dest) for item in unique_items]


def reference_plan_standard(pattern: CommPattern, mapping: RankMapping, *,
                            variant: Variant = Variant.STANDARD) -> ReferencePlan:
    """Seed ``plan_standard``: one message per edge, per-slot accumulation."""
    if variant not in (Variant.STANDARD, Variant.POINT_TO_POINT):
        raise PlanError(f"plan_standard cannot build variant {variant}")
    direct: List[ReferenceMessage] = []
    self_deliveries: List[Slot] = []
    for src, dest, items in pattern.edges():
        slots = _edge_slots(src, dest, items)
        if src == dest:
            self_deliveries.extend(slots)
            continue
        direct.append(ReferenceMessage(phase=Phase.DIRECT, src=src, dest=dest,
                                       slots=slots))
    return ReferencePlan(variant=variant, pattern=pattern, mapping=mapping,
                         phases={Phase.DIRECT: direct},
                         self_deliveries=self_deliveries)


def reference_aggregated_plan(pattern: CommPattern, mapping: RankMapping, *,
                              deduplicate: bool,
                              strategy: BalanceStrategy,
                              assignment: AggregationAssignment | None = None
                              ) -> ReferencePlan:
    """Seed ``_aggregated_plan``: dict-of-list accumulation per phase."""
    variant = Variant.FULL if deduplicate else Variant.PARTIAL
    if assignment is None:
        assignment = setup_aggregation(pattern, mapping, strategy=strategy)
    traffic = collect_region_traffic(pattern, mapping)

    local: List[ReferenceMessage] = []
    self_deliveries: List[Slot] = []

    for src, dest, items in pattern.edges():
        if src != dest and not mapping.same_region(src, dest):
            continue
        slots = _edge_slots(src, dest, items)
        if src == dest:
            self_deliveries.extend(slots)
        else:
            local.append(ReferenceMessage(phase=Phase.LOCAL, src=src, dest=dest,
                                          slots=slots))

    setup_slots: Dict[Tuple[int, int], List[Slot]] = {}
    global_slots: Dict[Tuple[int, int], List[Slot]] = {}
    final_slots: Dict[Tuple[int, int], List[Slot]] = {}

    for src_region, region_traffic in sorted(traffic.items()):
        for dest_region in region_traffic.dest_regions():
            send_leader, recv_leader = assignment.leaders_for(src_region, dest_region)
            pair_slots: List[Slot] = []
            for src, dest, items in region_traffic.per_pair[dest_region]:
                pair_slots.extend(_edge_slots(src, dest, items))
            if not pair_slots:
                continue

            by_origin: Dict[int, List[Slot]] = {}
            for slot in pair_slots:
                by_origin.setdefault(slot.origin, []).append(slot)
            for origin in sorted(by_origin):
                if origin == send_leader:
                    continue
                setup_slots.setdefault((origin, send_leader), []).extend(by_origin[origin])

            if mapping.same_region(send_leader, recv_leader):
                raise PlanError(
                    f"leaders for region pair ({src_region}, {dest_region}) share a region"
                )
            global_slots.setdefault((send_leader, recv_leader), []).extend(pair_slots)

            by_dest: Dict[int, List[Slot]] = {}
            for slot in pair_slots:
                by_dest.setdefault(slot.final_dest, []).append(slot)
            for dest in sorted(by_dest):
                if dest == recv_leader:
                    self_deliveries.extend(by_dest[dest])
                    continue
                final_slots.setdefault((recv_leader, dest), []).extend(by_dest[dest])

    def build(phase: Phase, grouped: Dict[Tuple[int, int], List[Slot]]
              ) -> List[ReferenceMessage]:
        messages = []
        for (src, dest), slots in sorted(grouped.items()):
            payload = reference_unique_payload_keys(slots) if deduplicate else \
                [(slot.origin, slot.item) for slot in slots]
            messages.append(ReferenceMessage(phase=phase, src=src, dest=dest,
                                             slots=slots, payload_keys=payload))
        return messages

    phases = {
        Phase.LOCAL: local,
        Phase.SETUP_REDIST: build(Phase.SETUP_REDIST, setup_slots),
        Phase.GLOBAL: build(Phase.GLOBAL, global_slots),
        Phase.FINAL_REDIST: build(Phase.FINAL_REDIST, final_slots),
    }
    return ReferencePlan(variant=variant, pattern=pattern, mapping=mapping,
                         phases=phases, self_deliveries=self_deliveries)


def reference_make_plan(pattern: CommPattern, mapping: RankMapping,
                        variant: Variant | str, *,
                        strategy: BalanceStrategy = BalanceStrategy.BYTES,
                        assignment: AggregationAssignment | None = None
                        ) -> ReferencePlan:
    """Seed ``make_plan`` over the reference builders."""
    variant = Variant(variant)
    if variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        return reference_plan_standard(pattern, mapping, variant=variant)
    if variant is Variant.PARTIAL:
        return reference_aggregated_plan(pattern, mapping, deduplicate=False,
                                         strategy=strategy, assignment=assignment)
    if variant is Variant.FULL:
        return reference_aggregated_plan(pattern, mapping, deduplicate=True,
                                         strategy=strategy, assignment=assignment)
    raise PlanError(f"unknown variant {variant!r}")


def reference_all_plans(pattern: CommPattern, mapping: RankMapping, *,
                        strategy: BalanceStrategy = BalanceStrategy.BYTES
                        ) -> Dict[Variant, ReferencePlan]:
    """Seed ``all_plans``: every variant over one shared leader assignment."""
    assignment = setup_aggregation(pattern, mapping, strategy=strategy)
    return {
        variant: reference_make_plan(pattern, mapping, variant,
                                     strategy=strategy, assignment=assignment)
        for variant in (Variant.POINT_TO_POINT, Variant.STANDARD,
                        Variant.PARTIAL, Variant.FULL)
    }
