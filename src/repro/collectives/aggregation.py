"""Aggregation setup: assigning inter-region traffic to processes.

This module implements the ``setup_aggregation`` step of Algorithm 4: for each
(source region, destination region) pair with traffic, pick the process inside
the source region that will send the single aggregated inter-region message,
and the process inside the destination region that will receive it.  The
assignment is the load-balancing knob the paper mentions ("load balancing while
determining which intra-region process communicates with each region"); two
strategies are provided and compared in the ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.topology.mapping import RankMapping
from repro.utils.errors import PlanError


class BalanceStrategy(str, enum.Enum):
    """How destination regions are distributed over a region's processes."""

    #: Destination region ``i`` (in sorted order) goes to local process ``i % size``.
    ROUND_ROBIN = "round_robin"
    #: Greedy longest-processing-time assignment by byte volume.
    BYTES = "bytes"


@dataclass
class RegionTraffic:
    """All inter-region traffic originating in one region, grouped by destination region.

    ``per_pair[dest_region]`` lists ``(src_rank, dest_rank, items)`` triples.
    """

    region: int
    per_pair: Dict[int, List[Tuple[int, int, np.ndarray]]] = field(default_factory=dict)

    def dest_regions(self) -> List[int]:
        """Destination regions with any traffic, sorted."""
        return sorted(self.per_pair.keys())

    def pair_items(self, dest_region: int) -> int:
        """Total item count (duplicates included) bound for ``dest_region``."""
        return sum(int(items.size) for _, _, items in self.per_pair.get(dest_region, []))


@dataclass(frozen=True)
class AggregationAssignment:
    """The outcome of ``setup_aggregation``.

    ``send_leader[(src_region, dest_region)]`` is the rank inside ``src_region``
    that sends the aggregated message to ``dest_region``;
    ``recv_leader[(src_region, dest_region)]`` is the rank inside ``dest_region``
    that receives it.
    """

    send_leader: Dict[Tuple[int, int], int]
    recv_leader: Dict[Tuple[int, int], int]

    def leaders_for(self, src_region: int, dest_region: int) -> Tuple[int, int]:
        """Return ``(sending rank, receiving rank)`` for a region pair."""
        key = (src_region, dest_region)
        if key not in self.send_leader or key not in self.recv_leader:
            raise PlanError(f"no aggregation leaders assigned for region pair {key}")
        return self.send_leader[key], self.recv_leader[key]

    def sender_load(self) -> Dict[int, int]:
        """Number of region pairs each rank sends for (load-balance diagnostics)."""
        load: Dict[int, int] = {}
        for rank in self.send_leader.values():
            load[rank] = load.get(rank, 0) + 1
        return load


def collect_region_traffic(pattern: CommPattern, mapping: RankMapping
                           ) -> Dict[int, RegionTraffic]:
    """Group the inter-region edges of ``pattern`` by (source region, dest region).

    Region membership is resolved with one vectorized lookup over the per-edge
    endpoint arrays instead of two mapping queries per edge.
    """
    srcs, dests, item_arrays = pattern.edge_lists()
    traffic: Dict[int, RegionTraffic] = {}
    if srcs.size == 0:
        return traffic
    src_regions = mapping.region_of_many(srcs)
    dest_regions = mapping.region_of_many(dests)
    inter = (srcs != dests) & (src_regions != dest_regions)
    for index in np.flatnonzero(inter):
        src_region = int(src_regions[index])
        bucket = traffic.setdefault(src_region, RegionTraffic(region=src_region))
        bucket.per_pair.setdefault(int(dest_regions[index]), []).append(
            (int(srcs[index]), int(dests[index]), item_arrays[index]))
    return traffic


def _assign(members: np.ndarray, targets: Sequence[int], loads: Dict[int, float],
            strategy: BalanceStrategy) -> Dict[int, int]:
    """Assign each target id to one member rank according to ``strategy``."""
    members = list(int(m) for m in members)
    if not members:
        raise PlanError("cannot assign aggregation leaders in an empty region")
    assignment: Dict[int, int] = {}
    if strategy is BalanceStrategy.ROUND_ROBIN:
        for index, target in enumerate(sorted(targets)):
            assignment[int(target)] = members[index % len(members)]
        return assignment
    if strategy is BalanceStrategy.BYTES:
        # Longest-processing-time greedy: heaviest target first onto the member
        # with the smallest accumulated load (ties broken by rank for determinism).
        member_load = {m: 0.0 for m in members}
        ordered = sorted(targets, key=lambda t: (-loads.get(int(t), 0.0), int(t)))
        for target in ordered:
            chosen = min(members, key=lambda m: (member_load[m], m))
            assignment[int(target)] = chosen
            member_load[chosen] += loads.get(int(target), 0.0)
        return assignment
    raise PlanError(f"unknown balance strategy {strategy!r}")


def setup_aggregation(pattern: CommPattern, mapping: RankMapping, *,
                      strategy: BalanceStrategy = BalanceStrategy.BYTES
                      ) -> AggregationAssignment:
    """Compute send- and receive-side leader assignments for three-step aggregation.

    On the send side, each region distributes its destination regions over its
    processes; on the receive side, each region distributes its *source*
    regions over its processes.  Both sides are computed from the same global
    pattern, so they are mutually consistent by construction — exactly what a
    real implementation achieves with an intra-region exchange during
    ``MPI_Neighbor_alltoallv_init``.
    """
    strategy = BalanceStrategy(strategy)
    traffic = collect_region_traffic(pattern, mapping)

    send_leader: Dict[Tuple[int, int], int] = {}
    recv_pairs: Dict[int, Dict[int, float]] = {}
    for src_region, region_traffic in traffic.items():
        members = mapping.ranks_in_region(src_region)
        loads = {dest_region: float(region_traffic.pair_items(dest_region))
                 for dest_region in region_traffic.dest_regions()}
        assignment = _assign(members, region_traffic.dest_regions(), loads, strategy)
        for dest_region, rank in assignment.items():
            send_leader[(src_region, dest_region)] = rank
            recv_pairs.setdefault(dest_region, {})[src_region] = loads[dest_region]

    recv_leader: Dict[Tuple[int, int], int] = {}
    for dest_region, sources in recv_pairs.items():
        members = mapping.ranks_in_region(dest_region)
        assignment = _assign(members, sorted(sources.keys()), sources, strategy)
        for src_region, rank in assignment.items():
            recv_leader[(src_region, dest_region)] = rank
    return AggregationAssignment(send_leader=send_leader, recv_leader=recv_leader)
