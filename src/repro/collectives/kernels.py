"""Fused gather–permute–scatter kernels for the exchange data path.

One phase of a compiled world exchange moves values in three fancy-index
passes: a *gather* packs the wire (``wire = work[gather]``), a *permutation*
reorders the wire from send order into receive order (``wire[perm]``), and a
*scatter* delivers it (``work[scatter] = wire[perm]``).  Because every work
row holds the value of exactly one ``(origin, item)`` key for the whole
iteration — sends read keys that earlier steps already delivered, and every
delivery of a key writes the same value into the same row — the three passes
compose into a single indexed copy::

    work[scatter] = work[gather[perm]]

which this module provides as the *fused* kernel: one fancy read and one
fancy write per phase, no wire arena, no intermediate permutation pass.  The
unfused ``gather``/``scatter`` kernels remain for the paths that genuinely
need the wire as a buffer (the shared-memory procs runtime, whose wire arena
is the cross-process traffic itself, and the per-rank envelope executor).

Two backends implement the kernels:

* ``numpy`` — always available; the fused kernel is the one-statement
  composition above (one temporary, two passes instead of three).
* ``numba`` — ``@njit(parallel=True)`` loops over the index arrays, used
  automatically when numba is importable.  Duplicate scatter targets are
  benign under ``prange`` because every duplicate writes the key's one value
  (identical bytes), so the parallel loop is race-free by value.

The active backend is selected once at import time — numba when importable,
numpy otherwise — and can be forced with ``REPRO_KERNELS=numba|numpy`` in the
environment (``numba`` without an importable numba is a hard error, not a
silent fallback).  :func:`select_backend` resolves a name to a
:class:`KernelBackend` for callers that want an explicit choice per engine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.utils.errors import ValidationError

#: Environment variable that forces the kernel backend at import time.
KERNELS_ENV = "REPRO_KERNELS"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the numpy-only environment
    HAVE_NUMBA = False


@dataclass(frozen=True)
class KernelBackend:
    """One backend's implementations of the three exchange kernels.

    ``gather(work, indices, out)`` packs ``out[i] = work[indices[i]]``;
    ``scatter(work, indices, values)`` delivers ``work[indices[i]] =
    values[i]``; ``fused(work, scatter_indices, source_rows)`` performs the
    whole phase in one pass: ``work[scatter_indices[i]] =
    work[source_rows[i]]``.  All arrays are 2-D ``(rows, item_size)``; index
    arrays are int64.
    """

    name: str
    gather: Callable[[np.ndarray, np.ndarray, np.ndarray], None]
    scatter: Callable[[np.ndarray, np.ndarray, np.ndarray], None]
    fused: Callable[[np.ndarray, np.ndarray, np.ndarray], None]


# -- numpy backend (always available) -----------------------------------------------


def _numpy_gather(work: np.ndarray, indices: np.ndarray, out: np.ndarray) -> None:
    np.take(work, indices, axis=0, out=out)


def _numpy_scatter(work: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    work[indices] = values


def _numpy_fused(work: np.ndarray, scatter_indices: np.ndarray,
                 source_rows: np.ndarray) -> None:
    work[scatter_indices] = work[source_rows]


NUMPY_BACKEND = KernelBackend(name="numpy", gather=_numpy_gather,
                              scatter=_numpy_scatter, fused=_numpy_fused)


# -- numba backend (built only when numba imports) ----------------------------------


def _build_numba_backend() -> KernelBackend:  # pragma: no cover - needs numba
    from numba import njit, prange

    @njit(parallel=True, cache=True)
    def nb_gather(work, indices, out):
        n_components = work.shape[1]
        for i in prange(indices.size):
            row = indices[i]
            for c in range(n_components):
                out[i, c] = work[row, c]

    @njit(parallel=True, cache=True)
    def nb_scatter(work, indices, values):
        # Duplicate targets all carry the same key value, so concurrent
        # writes are idempotent (identical bytes) and prange is safe.
        n_components = work.shape[1]
        for i in prange(indices.size):
            row = indices[i]
            for c in range(n_components):
                work[row, c] = values[i, c]

    @njit(parallel=True, cache=True)
    def nb_fused(work, scatter_indices, source_rows):
        n_components = work.shape[1]
        for i in prange(scatter_indices.size):
            dest = scatter_indices[i]
            src = source_rows[i]
            for c in range(n_components):
                work[dest, c] = work[src, c]

    return KernelBackend(name="numba", gather=nb_gather, scatter=nb_scatter,
                         fused=nb_fused)


_NUMBA_BACKEND: Optional[KernelBackend] = None


def _numba_backend() -> KernelBackend:
    """Build (once) and return the numba backend; error without numba."""
    global _NUMBA_BACKEND
    if not HAVE_NUMBA:
        raise ValidationError(
            f"{KERNELS_ENV}=numba requested but numba is not importable; "
            "install numba or select the numpy backend"
        )
    if _NUMBA_BACKEND is None:  # pragma: no cover - needs numba
        _NUMBA_BACKEND = _build_numba_backend()
    return _NUMBA_BACKEND  # pragma: no cover - needs numba


# -- selection ----------------------------------------------------------------------


def available_backends() -> Tuple[str, ...]:
    """Names of the backends importable in this environment."""
    return ("numpy", "numba") if HAVE_NUMBA else ("numpy",)


def select_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend name (or None for the import-time default).

    ``None`` consults ``REPRO_KERNELS`` and falls back to numba-if-importable,
    numpy otherwise — the same rule the import-time default uses, re-evaluated
    so tests can steer the choice per call.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(KERNELS_ENV) or ("numba" if HAVE_NUMBA else "numpy")
    name = str(name).strip().lower()
    if name == "numpy":
        return NUMPY_BACKEND
    if name == "numba":
        return _numba_backend()
    raise ValidationError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{KERNELS_ENV}=numba|numpy"
    )


#: The backend every engine uses unless told otherwise, fixed at import time.
ACTIVE_BACKEND: KernelBackend = select_backend()


def active_backend() -> KernelBackend:
    """The import-time default backend (numba when importable, else numpy)."""
    return ACTIVE_BACKEND
