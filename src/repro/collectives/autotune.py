"""Online per-level variant selection with an auditable decision trace.

The paper's stated future work is a "simple performance measure within the
neighborhood collective to dynamically select the optimal communication
strategy": its crossover figures show the winning variant flips with level
size and density, so one protocol per hierarchy leaves time on the table.
:mod:`repro.collectives.selection` already performs the *static* half —
pick the modeled-cheapest variant before the solve starts.  This module is
the *online* half:

* :class:`OnlineSelector` seeds each level's variant from the cost model,
  then — during real cycles — walks every candidate through a short timed
  *probe window*, keeps a median-of-window running estimate per
  ``(level, variant)``, commits the empirically cheapest candidate, and
  keeps monitoring the committed choice so sustained drift (the estimate
  going stale by more than ``drift_factor``) triggers a clean re-probe.
* Every seed / probe / commit / switch / drift / recovery lands as a
  structured :class:`DecisionEvent` on a queryable :class:`DecisionTrace`
  with a stable, versioned dict/JSON schema — figures can annotate *why*
  each level chose its variant, and tests can replay the decisions.
* :func:`simulate_modeled_auto` drives a selector with modeled per-level
  times as a deterministic clock — the "auto" series of the experiment
  drivers, with zero wall-clock dependence.

The selector is deliberately clock-agnostic: it consumes whatever seconds
the caller records.  The solve path feeds it engine-measured wall time
(:meth:`~repro.simmpi.engine.ExchangeEngine.set_run_observer`); tests and
drivers feed it modeled times or a :class:`FixedStepClock`, so selection is
bit-reproducible whenever its inputs are.

Probe scheduling is deliberately lock-stepped: every level walks the
candidate tuple in the same order with the same window length, so during
the initial probe phase each cycle runs ONE variant hierarchy-wide and its
cost is exactly that fixed variant's cycle cost — the auto series can
never exceed the worst fixed variant, which the property suite pins.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.collectives.plan import Variant
from repro.utils.errors import ValidationError

#: Candidate protocols the online selector arbitrates between — the paper's
#: three persistent neighborhood variants.  Point-to-point is the baseline
#: the crossover figures compare *against*, not an autotuning candidate.
DEFAULT_CANDIDATES: Tuple[Variant, ...] = (
    Variant.STANDARD, Variant.PARTIAL, Variant.FULL)

#: Sentinel accepted by the ``variant=`` keywords of the solve path
#: (:class:`~repro.amg.vcycle.WorldVCycle` and friends).
AUTO_VARIANT = "auto"

#: Version stamp of :meth:`DecisionTrace.to_dict`; bump on any schema change.
TRACE_SCHEMA_VERSION = 1

#: Every event kind a trace may contain, in lifecycle order.
EVENT_KINDS = ("seed", "probe", "commit", "switch", "drift", "recovery")

#: Where an event's numbers came from: the cost model, engine measurement,
#: or the runtime's fault supervision.
EVENT_SOURCES = ("model", "measured", "runtime")


def is_auto_variant(variant) -> bool:
    """Whether ``variant`` requests online selection instead of a fixed protocol."""
    return isinstance(variant, str) and variant.strip().lower() == AUTO_VARIANT


class FixedStepClock:
    """Deterministic clock: every reading advances by exactly ``step`` seconds.

    Drop-in for ``time.perf_counter`` wherever a ``clock=`` keyword is
    accepted (e.g. :class:`~repro.simmpi.engine.ExchangeEngine`), so timed
    probe windows — and therefore the whole decision trace — are
    bit-reproducible across runs and runtimes.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0):
        if step <= 0.0:
            raise ValidationError("clock step must be positive")
        self.step = float(step)
        self.now = float(start)

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _variant_value(variant) -> Optional[str]:
    if variant is None:
        return None
    return Variant(variant).value


# -- the trace -----------------------------------------------------------------


@dataclass(frozen=True)
class DecisionEvent:
    """One structured autotuning decision.

    ``estimates`` snapshots the per-variant running cost estimates (seconds)
    known at event time, keyed by variant value; ``samples`` carries the raw
    window measurements the event was derived from; ``window`` is the id of
    the probe window a ``probe`` event completed or a ``commit``/``switch``
    event was justified by.
    """

    kind: str
    level: int
    cycle: int
    variant: Optional[str] = None
    previous: Optional[str] = None
    estimates: Mapping[str, float] = field(default_factory=dict)
    window: Optional[int] = None
    samples: Tuple[float, ...] = ()
    source: str = "measured"
    reason: str = ""

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValidationError(
                f"event kind must be one of {EVENT_KINDS}, got {self.kind!r}")
        if self.source not in EVENT_SOURCES:
            raise ValidationError(
                f"event source must be one of {EVENT_SOURCES}, "
                f"got {self.source!r}")

    def to_dict(self) -> Dict[str, object]:
        """The event as a plain dict — the pinned serialisation schema."""
        return {
            "kind": self.kind,
            "level": int(self.level),
            "cycle": int(self.cycle),
            "variant": self.variant,
            "previous": self.previous,
            "estimates": {key: float(value)
                          for key, value in sorted(self.estimates.items())},
            "window": None if self.window is None else int(self.window),
            "samples": [float(sample) for sample in self.samples],
            "source": self.source,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DecisionEvent":
        """Inverse of :meth:`to_dict`; validates kinds and sources."""
        return cls(
            kind=str(payload["kind"]),
            level=int(payload["level"]),
            cycle=int(payload["cycle"]),
            variant=payload.get("variant"),
            previous=payload.get("previous"),
            estimates=dict(payload.get("estimates", {})),
            window=(None if payload.get("window") is None
                    else int(payload["window"])),
            samples=tuple(float(s) for s in payload.get("samples", ())),
            source=str(payload.get("source", "measured")),
            reason=str(payload.get("reason", "")),
        )


class DecisionTrace:
    """Ordered, queryable record of every autotuning decision.

    The trace is append-only while a selector runs; afterwards it can be
    queried (:meth:`events`, :meth:`choices`), serialised with a stable
    versioned schema (:meth:`to_dict` / :meth:`to_json`), rebuilt
    (:meth:`from_dict` / :meth:`from_json`), and validated
    (:meth:`validate`: every commit/switch must reference a probe window
    that actually ran for that level).
    """

    def __init__(self, events: Sequence[DecisionEvent] = ()):
        self._events: List[DecisionEvent] = list(events)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DecisionEvent]:
        return iter(self._events)

    def __getitem__(self, index) -> DecisionEvent:
        return self._events[index]

    def append(self, event: DecisionEvent) -> None:
        """Record one more decision (selectors call this; users rarely do)."""
        if not isinstance(event, DecisionEvent):
            raise ValidationError("a DecisionTrace holds DecisionEvent objects")
        self._events.append(event)

    # -- queries --------------------------------------------------------------

    def events(self, *, kind: str | None = None,
               level: int | None = None) -> List[DecisionEvent]:
        """Events filtered by kind and/or level, in recording order."""
        selected = self._events
        if kind is not None:
            if kind not in EVENT_KINDS:
                raise ValidationError(
                    f"event kind must be one of {EVENT_KINDS}, got {kind!r}")
            selected = [e for e in selected if e.kind == kind]
        if level is not None:
            selected = [e for e in selected if e.level == level]
        return list(selected)

    def levels(self) -> List[int]:
        """Sorted levels that appear in the trace (recovery events excluded)."""
        return sorted({e.level for e in self._events if e.level >= 0})

    def committed(self, level: int) -> Optional[Variant]:
        """The level's latest choice (last seed/commit event), if any."""
        for event in reversed(self._events):
            if event.level == level and event.kind in ("seed", "commit"):
                return Variant(event.variant)
        return None

    def choices(self) -> Dict[int, Variant]:
        """Latest choice per level — what :meth:`committed` returns, for all."""
        return {level: self.committed(level) for level in self.levels()}

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Versioned plain-dict form: ``{"schema": 1, "events": [...]}``."""
        return {"schema": TRACE_SCHEMA_VERSION,
                "events": [event.to_dict() for event in self._events]}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace variance) of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DecisionTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported decision-trace schema {schema!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})")
        return cls([DecisionEvent.from_dict(event)
                    for event in payload.get("events", [])])

    @classmethod
    def from_json(cls, text: str) -> "DecisionTrace":
        """Rebuild a trace from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ValidationError`.

        Pins the invariant the golden suite relies on: every ``commit`` and
        ``switch`` event references (via ``window``) a ``probe`` window that
        actually ran earlier in the trace, for the same level.
        """
        completed: Dict[int, set] = {}
        for position, event in enumerate(self._events):
            if event.kind == "probe":
                if event.window is None:
                    raise ValidationError(
                        f"event {position}: probe without a window id")
                completed.setdefault(event.level, set()).add(event.window)
            elif event.kind in ("commit", "switch"):
                if event.window is None:
                    raise ValidationError(
                        f"event {position}: {event.kind} without a window id")
                if event.window not in completed.get(event.level, ()):
                    raise ValidationError(
                        f"event {position}: {event.kind} on level "
                        f"{event.level} references probe window "
                        f"{event.window}, which never ran")

    def describe(self) -> str:
        """Human-readable one-line-per-event rendering (figure annotations)."""
        lines = []
        for event in self._events:
            where = f"level {event.level}" if event.level >= 0 else "cycle-wide"
            what = event.variant or "-"
            lines.append(f"[cycle {event.cycle:>3d}] {where}: "
                         f"{event.kind:<8s} {what:<14s} {event.reason}")
        return "\n".join(lines)


# -- the selector --------------------------------------------------------------


class _LevelState:
    """Per-level probe/commit state machine bookkeeping."""

    __slots__ = ("estimates", "committed", "probing", "queue", "samples",
                 "windows", "monitor", "pending", "active")

    def __init__(self, estimates: Dict[Variant, float], committed: Variant):
        self.estimates = estimates
        self.committed = committed
        self.probing = True
        self.queue: List[Variant] = []
        self.samples: List[float] = []
        #: last completed probe-window id per candidate.
        self.windows: Dict[Variant, int] = {}
        #: rolling post-commit samples of the committed variant (drift watch).
        self.monitor: List[float] = []
        #: seconds accumulated for this level during the open cycle.
        self.pending: Optional[float] = None
        #: variant the open cycle is executing on this level.
        self.active: Optional[Variant] = None


class OnlineSelector:
    """Seed → probe → commit state machine over the candidate variants.

    Lifecycle per level: :meth:`seed` installs the cost model's choice and
    schedules one probe window per candidate; each real cycle is bracketed
    by :meth:`begin_cycle` / :meth:`end_cycle` with the caller feeding
    measured seconds through :meth:`record`; after ``window`` cycles on a
    candidate its median becomes the running estimate, and once every
    candidate is measured the cheapest is committed (a ``switch`` event
    marks a change from the current choice).  Committed levels keep a
    rolling median of their measurements; when it departs from the
    estimate by more than ``drift_factor`` (either direction) the level
    re-probes from scratch.

    The selector never reads a clock and ignores :meth:`record` calls
    outside an open cycle (warm-ups, residual checks), so its decisions are
    a pure function of the recorded values.  A cycle ended with
    ``recovered=True`` — the engine retried or fell back mid-cycle — is
    discarded wholesale: its timings include supervision stalls, not
    protocol cost.
    """

    def __init__(self, *, candidates: Sequence[Variant | str] = DEFAULT_CANDIDATES,
                 window: int = 3, drift_factor: float = 2.0,
                 trace: DecisionTrace | None = None):
        if not candidates:
            raise ValidationError("the selector needs at least one candidate")
        self.candidates: Tuple[Variant, ...] = tuple(
            Variant(candidate) for candidate in candidates)
        if len(set(self.candidates)) != len(self.candidates):
            raise ValidationError("candidate variants must be distinct")
        if int(window) < 1:
            raise ValidationError("probe window must be >= 1 cycle")
        if float(drift_factor) <= 1.0:
            raise ValidationError("drift_factor must be > 1")
        self.window = int(window)
        self.drift_factor = float(drift_factor)
        self.trace = trace if trace is not None else DecisionTrace()
        self._levels: Dict[int, _LevelState] = {}
        self._cycle = 0
        self._in_cycle = False
        self._next_window = 0

    # -- introspection --------------------------------------------------------

    @property
    def probe_budget(self) -> int:
        """Cycles a level needs to measure every candidate once."""
        return len(self.candidates) * self.window

    @property
    def cycles(self) -> int:
        """Completed (non-discarded and discarded) cycles so far."""
        return self._cycle

    def seeded_levels(self) -> Tuple[int, ...]:
        """Levels under management, sorted."""
        return tuple(sorted(self._levels))

    def committed(self, level: int) -> Variant:
        """The level's current choice (seeded or measured)."""
        return self._state(level).committed

    def is_probing(self, level: int) -> bool:
        """Whether the level is still walking its probe windows."""
        return self._state(level).probing

    def estimates(self, level: int) -> Dict[Variant, float]:
        """Copy of the level's per-variant running cost estimates (seconds)."""
        return dict(self._state(level).estimates)

    def _state(self, level: int) -> _LevelState:
        try:
            return self._levels[level]
        except KeyError:
            raise ValidationError(f"level {level} was never seeded") from None

    def _argmin(self, estimates: Mapping[Variant, float]) -> Variant:
        """Cheapest candidate; ties break on candidate order (deterministic)."""
        return min(self.candidates,
                   key=lambda v: (estimates[v], self.candidates.index(v)))

    def _snapshot(self, state: _LevelState) -> Dict[str, float]:
        return {variant.value: float(seconds)
                for variant, seconds in state.estimates.items()}

    # -- lifecycle ------------------------------------------------------------

    def seed(self, level: int, modeled: Mapping[Variant | str, float]) -> None:
        """Install the cost model's estimates and choice for one level.

        ``modeled`` must provide a (modeled) seconds value for every
        candidate; the cheapest becomes the level's initial committed
        variant and a full probe schedule is queued so every candidate gets
        measured before the first empirical commit.
        """
        level = int(level)
        if level in self._levels:
            raise ValidationError(f"level {level} is already seeded")
        if self._in_cycle:
            raise ValidationError("cannot seed a level inside an open cycle")
        estimates: Dict[Variant, float] = {}
        for candidate in self.candidates:
            value = modeled.get(candidate)
            if value is None:
                value = modeled.get(candidate.value)
            if value is None:
                raise ValidationError(
                    f"seed for level {level} lacks candidate "
                    f"{candidate.value!r}")
            estimates[candidate] = float(value)
        committed = self._argmin(estimates)
        state = _LevelState(estimates, committed)
        state.queue = list(self.candidates)
        self._levels[level] = state
        self.trace.append(DecisionEvent(
            kind="seed", level=level, cycle=self._cycle,
            variant=committed.value, estimates=self._snapshot(state),
            source="model",
            reason="cost model's cheapest candidate; full probe "
                   "schedule queued"))

    def variant_for(self, level: int) -> Variant:
        """The variant the level should execute on the next/current cycle."""
        state = self._state(level)
        if state.probing and state.queue:
            return state.queue[0]
        return state.committed

    def begin_cycle(self) -> None:
        """Open a measurement cycle; subsequent :meth:`record` calls count."""
        if self._in_cycle:
            raise ValidationError("a measurement cycle is already open")
        self._in_cycle = True
        for state in self._levels.values():
            state.pending = None
            state.active = (state.queue[0] if state.probing and state.queue
                            else state.committed)

    def record(self, level: int, seconds: float) -> None:
        """Attribute measured seconds to a level of the open cycle.

        Silently ignored outside an open cycle (warm-ups, residual-norm
        exchanges) and for levels the selector does not manage.
        """
        if not self._in_cycle:
            return
        state = self._levels.get(int(level))
        if state is None:
            return
        seconds = float(seconds)
        if seconds < 0.0:
            raise ValidationError("measured seconds must be non-negative")
        state.pending = seconds if state.pending is None \
            else state.pending + seconds

    def abort_cycle(self) -> None:
        """Close an open cycle without consuming its measurements.

        For error paths: the cycle neither advances probe windows nor
        counts toward the cycle index, and no event is recorded.
        """
        if not self._in_cycle:
            return
        self._in_cycle = False
        for state in self._levels.values():
            state.pending = None

    def end_cycle(self, *, recovered: bool = False) -> None:
        """Close the cycle and fold its measurements into the estimates.

        ``recovered=True`` discards every measurement of the cycle (they
        include fault-supervision stalls) and records a ``recovery`` event;
        probe windows stay open and re-measure on the next clean cycle.
        """
        if not self._in_cycle:
            raise ValidationError("no measurement cycle is open")
        self._in_cycle = False
        cycle = self._cycle
        self._cycle += 1
        if recovered:
            for state in self._levels.values():
                state.pending = None
            self.trace.append(DecisionEvent(
                kind="recovery", level=-1, cycle=cycle, source="runtime",
                reason="engine recovery overlapped this cycle; its "
                       "measurements were discarded"))
            return
        for level in sorted(self._levels):
            state = self._levels[level]
            sample = state.pending
            state.pending = None
            if sample is None:
                continue
            if state.probing and state.queue and state.active == state.queue[0]:
                self._probe_sample(level, state, cycle, sample)
            else:
                self._monitor_sample(level, state, cycle, sample)

    # -- state transitions ----------------------------------------------------

    def _probe_sample(self, level: int, state: _LevelState, cycle: int,
                      sample: float) -> None:
        state.samples.append(sample)
        if len(state.samples) < self.window:
            return
        variant = state.queue.pop(0)
        estimate = float(statistics.median(state.samples))
        state.estimates[variant] = estimate
        window_id = self._next_window
        self._next_window += 1
        state.windows[variant] = window_id
        self.trace.append(DecisionEvent(
            kind="probe", level=level, cycle=cycle, variant=variant.value,
            estimates=self._snapshot(state), window=window_id,
            samples=tuple(state.samples), source="measured",
            reason=f"median of {self.window} timed cycle(s)"))
        state.samples = []
        if not state.queue:
            self._commit(level, state, cycle)

    def _commit(self, level: int, state: _LevelState, cycle: int) -> None:
        best = self._argmin(state.estimates)
        window_id = state.windows[best]
        previous = state.committed
        self.trace.append(DecisionEvent(
            kind="commit", level=level, cycle=cycle, variant=best.value,
            previous=previous.value, estimates=self._snapshot(state),
            window=window_id, source="measured",
            reason="cheapest measured median across all candidates"))
        if best != previous:
            self.trace.append(DecisionEvent(
                kind="switch", level=level, cycle=cycle, variant=best.value,
                previous=previous.value, estimates=self._snapshot(state),
                window=window_id, source="measured",
                reason=f"measurement overturned {previous.value}"))
        state.committed = best
        state.probing = False
        state.monitor = []

    def _monitor_sample(self, level: int, state: _LevelState, cycle: int,
                        sample: float) -> None:
        state.monitor.append(sample)
        if len(state.monitor) > self.window:
            state.monitor.pop(0)
        if len(state.monitor) < self.window:
            return
        rolling = float(statistics.median(state.monitor))
        estimate = state.estimates[state.committed]
        drifted = rolling > self.drift_factor * estimate or \
            rolling * self.drift_factor < estimate
        if not drifted:
            return
        self.trace.append(DecisionEvent(
            kind="drift", level=level, cycle=cycle,
            variant=state.committed.value, estimates=self._snapshot(state),
            samples=tuple(state.monitor), source="measured",
            reason=f"rolling median {rolling:.3e}s departed from estimate "
                   f"{estimate:.3e}s by more than x{self.drift_factor:g}; "
                   f"re-probing"))
        state.estimates[state.committed] = rolling
        state.probing = True
        state.queue = list(self.candidates)
        state.samples = []
        state.monitor = []

    def choices(self) -> Dict[int, Variant]:
        """Current committed variant per seeded level."""
        return {level: state.committed
                for level, state in sorted(self._levels.items())}


# -- modeled simulation (the drivers' deterministic "auto" series) -------------


@dataclass
class AutoSimulation:
    """Outcome of :func:`simulate_modeled_auto`.

    ``per_cycle[k]`` is the total modeled cost of cycle ``k`` under the
    selector's choices (probe overhead included); ``cumulative[n]`` the cost
    of the first ``n`` cycles (``cumulative[0] == 0``);
    ``steady_per_iteration`` the converged per-cycle cost under the final
    committed choices.
    """

    per_cycle: List[float]
    cumulative: List[float]
    steady_per_iteration: float
    choices: Dict[int, Variant]
    trace: DecisionTrace
    selector: OnlineSelector


def simulate_modeled_auto(level_times: Sequence[Mapping[Variant, float]], *,
                          candidates: Sequence[Variant | str] | None = None,
                          window: int = 3, drift_factor: float = 2.0,
                          n_cycles: int | None = None,
                          selector: OnlineSelector | None = None
                          ) -> AutoSimulation:
    """Drive an :class:`OnlineSelector` with modeled per-level times.

    ``level_times[level][variant]`` is the modeled seconds of one cycle's
    communication on that level under that variant — exactly the numbers
    the cost model supplies to the figures.  The simulation seeds every
    level, then plays ``n_cycles`` cycles (default: one past the probe
    budget, enough to converge) feeding the modeled time of whichever
    variant the selector chose — a perfectly deterministic clock, so the
    resulting series and trace are bit-reproducible.  ``level_times`` is
    read live each cycle; callers may mutate it between cycles to model
    drifting costs.
    """
    if selector is None:
        selector = OnlineSelector(
            candidates=candidates if candidates is not None
            else DEFAULT_CANDIDATES,
            window=window, drift_factor=drift_factor)
    elif candidates is not None:
        raise ValidationError("pass either a selector or candidates, not both")
    for level, times in enumerate(level_times):
        selector.seed(level, {candidate: float(times[candidate])
                              for candidate in selector.candidates})
    if n_cycles is None:
        n_cycles = selector.probe_budget + 1
    if n_cycles < 0:
        raise ValidationError("n_cycles must be non-negative")
    per_cycle: List[float] = []
    cumulative: List[float] = [0.0]
    for _ in range(n_cycles):
        selector.begin_cycle()
        cost = 0.0
        for level, times in enumerate(level_times):
            variant = selector.variant_for(level)
            seconds = float(times[variant])
            selector.record(level, seconds)
            cost += seconds
        selector.end_cycle()
        per_cycle.append(cost)
        cumulative.append(cumulative[-1] + cost)
    choices = selector.choices()
    steady = sum(float(level_times[level][choices[level]])
                 for level in range(len(level_times)))
    return AutoSimulation(per_cycle=per_cycle, cumulative=cumulative,
                          steady_per_iteration=steady, choices=choices,
                          trace=selector.trace, selector=selector)
