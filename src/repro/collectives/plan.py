"""Collective plans: the explicit message schedules of each variant.

A :class:`CollectivePlan` is the planner's output and the common input of

* the statistics used by Figures 8-10 (message counts / sizes per process),
* the performance models that time an iteration (Figures 7, 11-13), and
* the functional executor in :mod:`repro.collectives.persistent` that moves
  real data over the simulated MPI runtime.

Plans are explicit: every message of every phase lists the *slots*
``(origin, item, final_dest)`` it carries, so a plan can be validated against
the original pattern (every required delivery happens exactly once) without
executing anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.pattern.statistics import PatternStatistics
from repro.perfmodel.base import CostModel, MessageCost
from repro.topology.mapping import RankMapping
from repro.utils.errors import PlanError


class Variant(str, enum.Enum):
    """The communication protocols compared throughout the paper."""

    #: Persistent point-to-point as in stock Hypre (reference protocol).
    POINT_TO_POINT = "point_to_point"
    #: Standard neighborhood collective: wraps point-to-point (Section 3.1).
    STANDARD = "standard"
    #: Locality-aware three-step aggregation (Section 3.2).
    PARTIAL = "partial"
    #: Aggregation plus duplicate removal via the index extension (Section 3.3).
    FULL = "full"


class Phase(str, enum.Enum):
    """Communication phases of Algorithm 4.

    ``DIRECT`` is the single phase of the unaggregated variants; the four
    aggregated phases follow the paper's naming: ``l`` fully local, ``s``
    initial intra-region redistribution, ``g`` inter-region, ``r`` final
    intra-region redistribution.
    """

    DIRECT = "direct"
    LOCAL = "l"
    SETUP_REDIST = "s"
    GLOBAL = "g"
    FINAL_REDIST = "r"


#: Phase execution structure: ``s`` must finish before ``g`` starts, ``g``
#: before ``r``; ``l`` overlaps the ``s``+``g`` window (Algorithms 5 and 6).
AGGREGATED_PHASES: Tuple[Phase, ...] = (
    Phase.LOCAL, Phase.SETUP_REDIST, Phase.GLOBAL, Phase.FINAL_REDIST,
)


class Slot(NamedTuple):
    """One routed data item: value ``item`` owned by ``origin`` bound for ``final_dest``."""

    origin: int
    item: int
    final_dest: int


@dataclass
class PlannedMessage:
    """One message of a plan.

    ``slots`` describe the routing work the message performs; ``payload_keys``
    are the ``(origin, item)`` values physically packed into the buffer, in
    packing order.  For deduplicated messages ``len(payload_keys)`` is smaller
    than ``len(slots)``.
    """

    phase: Phase
    src: int
    dest: int
    slots: List[Slot]
    payload_keys: List[Tuple[int, int]] = field(default=None)

    def __post_init__(self):
        if self.src == self.dest:
            raise PlanError(f"message with identical endpoints (rank {self.src})")
        if not self.slots:
            raise PlanError(f"empty message {self.src}->{self.dest} in phase {self.phase}")
        if self.payload_keys is None:
            self.payload_keys = [(slot.origin, slot.item) for slot in self.slots]
        if not self.payload_keys:
            raise PlanError("message carries no payload")

    def payload_count(self) -> int:
        """Number of values physically transferred."""
        return len(self.payload_keys)

    def nbytes(self, item_bytes: int) -> int:
        """Payload size in bytes."""
        return self.payload_count() * item_bytes


@dataclass
class CollectivePlan:
    """Complete message schedule of one collective variant on one pattern."""

    variant: Variant
    pattern: CommPattern
    mapping: RankMapping
    phases: Dict[Phase, List[PlannedMessage]]
    #: Deliveries satisfied without any message (origin already at destination,
    #: or an aggregator that is itself the final destination).
    self_deliveries: List[Slot] = field(default_factory=list)

    # -- iteration ------------------------------------------------------------

    def messages(self, phase: Phase | None = None) -> Iterator[PlannedMessage]:
        """Iterate over all messages, optionally restricted to one phase."""
        if phase is not None:
            yield from self.phases.get(phase, [])
            return
        for messages in self.phases.values():
            yield from messages

    def messages_from(self, rank: int, phase: Phase | None = None) -> List[PlannedMessage]:
        """Messages sent by ``rank``."""
        return [m for m in self.messages(phase) if m.src == rank]

    def messages_to(self, rank: int, phase: Phase | None = None) -> List[PlannedMessage]:
        """Messages received by ``rank``."""
        return [m for m in self.messages(phase) if m.dest == rank]

    @property
    def item_bytes(self) -> int:
        """Bytes per data item (taken from the pattern)."""
        return self.pattern.item_bytes

    @property
    def n_messages(self) -> int:
        """Total message count across all phases."""
        return sum(len(msgs) for msgs in self.phases.values())

    # -- statistics (Figures 8-10) -----------------------------------------------

    def statistics(self) -> PatternStatistics:
        """Per-rank local / inter-region message and byte counts (sender side)."""
        stats = PatternStatistics(n_ranks=self.pattern.n_ranks)
        for message in self.messages():
            is_local = self.mapping.same_region(message.src, message.dest)
            stats.add_message(message.src, is_local, message.nbytes(self.item_bytes))
        return stats

    def max_global_message_bytes(self) -> int:
        """Largest single inter-region message (Figure 10 uses the per-process max)."""
        sizes = [m.nbytes(self.item_bytes) for m in self.messages()
                 if not self.mapping.same_region(m.src, m.dest)]
        return max(sizes, default=0)

    def global_payload_items(self) -> int:
        """Total number of values crossing region boundaries."""
        return sum(m.payload_count() for m in self.messages()
                   if not self.mapping.same_region(m.src, m.dest))

    # -- modeled time (Figures 7, 11-13) --------------------------------------------

    def _phase_time(self, model: CostModel, phase: Phase) -> float:
        per_process: Dict[int, List[MessageCost]] = {}
        for message in self.phases.get(phase, []):
            cost = MessageCost(nbytes=message.nbytes(self.item_bytes),
                               locality=self.mapping.locality(message.src, message.dest))
            per_process.setdefault(message.src, []).append(cost)
        return model.phase_time(per_process)

    def modeled_time(self, model: CostModel) -> float:
        """Modeled Start+Wait time of one iteration of this plan.

        Unaggregated variants have a single phase.  Aggregated variants follow
        Algorithms 5-6: the initial redistribution ``s`` completes before the
        inter-region phase ``g`` starts, while the fully-local phase ``l``
        overlaps both; the final redistribution ``r`` runs after ``g``.
        """
        if self.variant in (Variant.POINT_TO_POINT, Variant.STANDARD):
            return self._phase_time(model, Phase.DIRECT)
        t_l = self._phase_time(model, Phase.LOCAL)
        t_s = self._phase_time(model, Phase.SETUP_REDIST)
        t_g = self._phase_time(model, Phase.GLOBAL)
        t_r = self._phase_time(model, Phase.FINAL_REDIST)
        return max(t_l, t_s + t_g) + t_r

    def setup_costs(self) -> Tuple[int, int]:
        """(message count, byte volume) proxies for per-process initialisation work.

        Aggregated variants must discover and load-balance the aggregated
        pattern during ``*_init``; the work each process performs grows with
        the number of messages it participates in and with the routing
        metadata it must exchange (three integers per slot).  Initialisation
        happens in parallel, so the proxies are the *maximum over processes*,
        not totals.
        """
        messages_per_rank: Dict[int, int] = {}
        slot_bytes_per_rank: Dict[int, int] = {}
        for message in self.messages():
            for endpoint in (message.src, message.dest):
                messages_per_rank[endpoint] = messages_per_rank.get(endpoint, 0) + 1
                slot_bytes_per_rank[endpoint] = (slot_bytes_per_rank.get(endpoint, 0)
                                                 + len(message.slots) * 3 * 8)
        max_messages = max(messages_per_rank.values(), default=0)
        max_slot_bytes = max(slot_bytes_per_rank.values(), default=0)
        return max_messages, max_slot_bytes

    # -- validation -------------------------------------------------------------------

    def required_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        """Multiset of ``(origin, item, final_dest)`` required by the pattern."""
        required: Dict[Tuple[int, int, int], int] = {}
        for src, dest, items in self.pattern.edges():
            for item in items.tolist():
                key = (src, int(item), dest)
                required[key] = required.get(key, 0) + 1
        return required

    def planned_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        """Multiset of deliveries the plan performs (terminal phases only)."""
        terminal = {
            Variant.POINT_TO_POINT: (Phase.DIRECT,),
            Variant.STANDARD: (Phase.DIRECT,),
            Variant.PARTIAL: (Phase.LOCAL, Phase.FINAL_REDIST),
            Variant.FULL: (Phase.LOCAL, Phase.FINAL_REDIST),
        }[self.variant]
        delivered: Dict[Tuple[int, int, int], int] = {}
        for phase in terminal:
            for message in self.phases.get(phase, []):
                for slot in message.slots:
                    if slot.final_dest != message.dest:
                        raise PlanError(
                            f"terminal message {message.src}->{message.dest} carries a slot "
                            f"bound for rank {slot.final_dest}"
                        )
                    key = (slot.origin, slot.item, slot.final_dest)
                    delivered[key] = delivered.get(key, 0) + 1
        for slot in self.self_deliveries:
            key = (slot.origin, slot.item, slot.final_dest)
            delivered[key] = delivered.get(key, 0) + 1
        return delivered

    def validate(self) -> None:
        """Check the plan delivers exactly what the pattern requires.

        Raises :class:`PlanError` on missing, duplicated, or spurious
        deliveries, on messages whose endpoints are out of range, and on
        inter-region messages appearing in intra-region phases (and vice
        versa).
        """
        n = self.pattern.n_ranks
        for message in self.messages():
            if not (0 <= message.src < n and 0 <= message.dest < n):
                raise PlanError(
                    f"message endpoints ({message.src}, {message.dest}) out of range"
                )
            same_region = self.mapping.same_region(message.src, message.dest)
            if message.phase is Phase.GLOBAL and same_region:
                raise PlanError(
                    f"inter-region phase message {message.src}->{message.dest} stays "
                    "inside a region"
                )
            if message.phase in (Phase.LOCAL, Phase.SETUP_REDIST, Phase.FINAL_REDIST) \
                    and not same_region:
                raise PlanError(
                    f"intra-region phase {message.phase.value} message "
                    f"{message.src}->{message.dest} crosses regions"
                )
        required = self.required_deliveries()
        # The pattern may list the same (origin, item, dest) more than once
        # (duplicate entries in a send list); a single delivery satisfies them.
        required_set = set(required)
        delivered = self.planned_deliveries()
        delivered_set = set(delivered)
        missing = required_set - delivered_set
        if missing:
            example = sorted(missing)[:3]
            raise PlanError(f"plan misses {len(missing)} deliveries, e.g. {example}")
        spurious = delivered_set - required_set
        if spurious:
            example = sorted(spurious)[:3]
            raise PlanError(f"plan performs {len(spurious)} spurious deliveries, e.g. {example}")
        duplicated = [key for key, count in delivered.items() if count > 1]
        if duplicated:
            raise PlanError(
                f"plan delivers {len(duplicated)} items more than once, "
                f"e.g. {sorted(duplicated)[:3]}"
            )

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        phase_counts = ", ".join(
            f"{phase.value}:{len(msgs)}" for phase, msgs in sorted(
                self.phases.items(), key=lambda kv: kv[0].value)
            if msgs
        )
        return (f"{self.variant.value} plan: {self.n_messages} messages "
                f"({phase_counts or 'none'})")
