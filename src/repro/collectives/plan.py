"""Collective plans: the explicit message schedules of each variant.

A :class:`CollectivePlan` is the planner's output and the common input of

* the statistics used by Figures 8-10 (message counts / sizes per process),
* the performance models that time an iteration (Figures 7, 11-13), and
* the functional executor in :mod:`repro.collectives.persistent` that moves
  real data over the simulated MPI runtime.

Plans are explicit: every message of every phase lists the *slots*
``(origin, item, final_dest)`` it carries, so a plan can be validated against
the original pattern (every required delivery happens exactly once) without
executing anything.

Slots are stored **columnar**: a :class:`SlotTable` holds three parallel int64
arrays (``origin`` / ``item`` / ``final_dest``), which is what lets the
statistics, setup-cost, and validation passes run as ``np.bincount`` /
``np.unique`` multiset operations instead of per-slot Python loops.  The
scalar :class:`Slot` NamedTuple survives as the element type:
``PlannedMessage.slots`` and iteration over a table materialise Slot views
lazily, so existing per-slot callers keep working unchanged.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.pattern.statistics import PatternStatistics
from repro.perfmodel.base import CostModel, MessageCost
from repro.topology.mapping import RankMapping
from repro.utils.arrays import INDEX_DTYPE, frozen_copy_on_write, run_starts_mask
from repro.utils.errors import PlanError


class Variant(str, enum.Enum):
    """The communication protocols compared throughout the paper."""

    #: Persistent point-to-point as in stock Hypre (reference protocol).
    POINT_TO_POINT = "point_to_point"
    #: Standard neighborhood collective: wraps point-to-point (Section 3.1).
    STANDARD = "standard"
    #: Locality-aware three-step aggregation (Section 3.2).
    PARTIAL = "partial"
    #: Aggregation plus duplicate removal via the index extension (Section 3.3).
    FULL = "full"


class Phase(str, enum.Enum):
    """Communication phases of Algorithm 4.

    ``DIRECT`` is the single phase of the unaggregated variants; the four
    aggregated phases follow the paper's naming: ``l`` fully local, ``s``
    initial intra-region redistribution, ``g`` inter-region, ``r`` final
    intra-region redistribution.
    """

    DIRECT = "direct"
    LOCAL = "l"
    SETUP_REDIST = "s"
    GLOBAL = "g"
    FINAL_REDIST = "r"


#: Phase execution structure: ``s`` must finish before ``g`` starts, ``g``
#: before ``r``; ``l`` overlaps the ``s``+``g`` window (Algorithms 5 and 6).
AGGREGATED_PHASES: Tuple[Phase, ...] = (
    Phase.LOCAL, Phase.SETUP_REDIST, Phase.GLOBAL, Phase.FINAL_REDIST,
)

#: Terminal phases per variant: the phases whose messages (plus
#: self-deliveries) realise the pattern's required deliveries.
TERMINAL_PHASES: Dict[Variant, Tuple[Phase, ...]] = {
    Variant.POINT_TO_POINT: (Phase.DIRECT,),
    Variant.STANDARD: (Phase.DIRECT,),
    Variant.PARTIAL: (Phase.LOCAL, Phase.FINAL_REDIST),
    Variant.FULL: (Phase.LOCAL, Phase.FINAL_REDIST),
}


class Slot(NamedTuple):
    """One routed data item: value ``item`` owned by ``origin`` bound for ``final_dest``."""

    origin: int
    item: int
    final_dest: int


def _index_column(values) -> np.ndarray:
    """Coerce one column to a read-only contiguous int64 array.

    Any result still sharing writable memory with a caller's array (including
    through reshapes or read-only views of writable buffers) is copied before
    freezing, so the stored column can neither mutate through the caller's
    reference nor freeze the caller's own array.  Arrays we created — or that
    are provably immutable — are frozen in place without a copy.
    """
    arr = np.asarray(values, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return frozen_copy_on_write(np.ascontiguousarray(arr), values)


class SlotTable:
    """Columnar slot storage: parallel read-only int64 arrays.

    The table is the unit the planner, the statistics pass, and the validator
    operate on; per-slot access (iteration, indexing, ``to_slots``) exists only
    as a compatibility view and materialises :class:`Slot` tuples on demand.
    """

    __slots__ = ("origin", "item", "final_dest")

    def __init__(self, origin, item, final_dest):
        self.origin = _index_column(origin)
        self.item = _index_column(item)
        self.final_dest = _index_column(final_dest)
        if not (self.origin.size == self.item.size == self.final_dest.size):
            raise PlanError(
                f"slot table columns disagree in length: "
                f"{self.origin.size}/{self.item.size}/{self.final_dest.size}"
            )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def _wrap(cls, origin: np.ndarray, item: np.ndarray,
              final_dest: np.ndarray) -> "SlotTable":
        """Trusted constructor: columns must already be parallel 1-D int64.

        The planners call this with slices of arrays they froze wholesale, so
        per-message construction does no validation or flag work.
        """
        table = cls.__new__(cls)
        table.origin = origin
        table.item = item
        table.final_dest = final_dest
        return table

    @classmethod
    def empty(cls) -> "SlotTable":
        """A table with no slots."""
        zero = np.empty(0, dtype=INDEX_DTYPE)
        return cls(zero, zero, zero)

    @classmethod
    def from_slots(cls, slots: Iterable[Tuple[int, int, int]]) -> "SlotTable":
        """Build a table from an iterable of ``Slot`` (or 3-tuples)."""
        slots = list(slots)
        if not slots:
            return cls.empty()
        triples = np.asarray(slots, dtype=INDEX_DTYPE)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise PlanError("slots must be (origin, item, final_dest) triples")
        return cls(triples[:, 0], triples[:, 1], triples[:, 2])

    @classmethod
    def concat(cls, tables: Sequence["SlotTable"]) -> "SlotTable":
        """Concatenate tables in order (zero-copy for a single table)."""
        tables = [t for t in tables if t.origin.size]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        columns = (np.concatenate([t.origin for t in tables]),
                   np.concatenate([t.item for t in tables]),
                   np.concatenate([t.final_dest for t in tables]))
        for column in columns:
            column.flags.writeable = False
        return cls._wrap(*columns)

    # -- array-level operations ------------------------------------------------

    def take(self, indices: np.ndarray) -> "SlotTable":
        """Rows selected by an index (or boolean mask) array."""
        columns = (self.origin[indices], self.item[indices],
                   self.final_dest[indices])
        for column in columns:
            column.flags.writeable = False
        return SlotTable._wrap(*columns)

    def triples(self) -> np.ndarray:
        """``(n, 3)`` array of ``(origin, item, final_dest)`` rows."""
        return np.column_stack((self.origin, self.item, self.final_dest))

    # -- compatibility views ---------------------------------------------------

    def to_slots(self) -> List[Slot]:
        """Materialise the per-slot view (compatibility; O(n) Python objects)."""
        return [Slot(o, i, d) for o, i, d in zip(self.origin.tolist(),
                                                 self.item.tolist(),
                                                 self.final_dest.tolist())]

    def __len__(self) -> int:
        return int(self.origin.size)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self.to_slots())

    def __getitem__(self, index: int) -> Slot:
        return Slot(int(self.origin[index]), int(self.item[index]),
                    int(self.final_dest[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotTable):
            return NotImplemented
        return (np.array_equal(self.origin, other.origin)
                and np.array_equal(self.item, other.item)
                and np.array_equal(self.final_dest, other.final_dest))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotTable(n={len(self)})"


def _as_slot_table(slots) -> SlotTable:
    """Accept a SlotTable or any iterable of Slot/3-tuples."""
    if isinstance(slots, SlotTable):
        return slots
    return SlotTable.from_slots(slots or [])


class PlannedMessage:
    """One message of a plan.

    The routing work lives in ``table`` (a :class:`SlotTable`); the
    ``(origin, item)`` values physically packed into the buffer live in the
    parallel ``payload_origins`` / ``payload_items`` arrays, in packing order.
    For deduplicated messages the payload is shorter than the table.

    ``slots`` and ``payload_keys`` are lazy per-element compatibility views;
    the constructor also accepts them in their legacy list forms.
    """

    __slots__ = ("phase", "src", "dest", "table",
                 "payload_origins", "payload_items",
                 "_slots_view", "_payload_view")

    def __init__(self, phase: Phase, src: int, dest: int,
                 slots=None, payload_keys=None):
        self.phase = phase
        self.src = int(src)
        self.dest = int(dest)
        if self.src == self.dest:
            raise PlanError(f"message with identical endpoints (rank {self.src})")
        self.table = _as_slot_table(slots)
        if not len(self.table):
            raise PlanError(f"empty message {self.src}->{self.dest} in phase {self.phase}")
        if payload_keys is None:
            self.payload_origins = self.table.origin
            self.payload_items = self.table.item
        else:
            pairs = np.asarray(list(payload_keys), dtype=INDEX_DTYPE)
            if pairs.size == 0:
                raise PlanError("message carries no payload")
            self.payload_origins = _index_column(pairs[:, 0])
            self.payload_items = _index_column(pairs[:, 1])
        if self.payload_origins.size == 0:
            raise PlanError("message carries no payload")
        self._slots_view = None
        self._payload_view = None

    @classmethod
    def from_table(cls, phase: Phase, src: int, dest: int, table: SlotTable,
                   payload_origins: np.ndarray | None = None,
                   payload_items: np.ndarray | None = None) -> "PlannedMessage":
        """Columnar constructor used by the planners (no per-slot objects).

        Payload arrays, when given, are trusted to be parallel 1-D int64.
        """
        message = cls.__new__(cls)
        message.phase = phase
        message.src = int(src)
        message.dest = int(dest)
        if message.src == message.dest:
            raise PlanError(f"message with identical endpoints (rank {message.src})")
        message.table = table
        if not table.origin.size:
            raise PlanError(
                f"empty message {message.src}->{message.dest} in phase {phase}")
        if payload_origins is None:
            message.payload_origins = table.origin
            message.payload_items = table.item
        else:
            message.payload_origins = payload_origins
            message.payload_items = payload_items
        if message.payload_origins.size == 0:
            raise PlanError("message carries no payload")
        message._slots_view = None
        message._payload_view = None
        return message

    # -- compatibility views ---------------------------------------------------

    @property
    def slots(self) -> List[Slot]:
        """Lazy per-slot view of ``table`` (kept for existing callers)."""
        if self._slots_view is None:
            self._slots_view = self.table.to_slots()
        return self._slots_view

    @property
    def payload_keys(self) -> List[Tuple[int, int]]:
        """Lazy ``(origin, item)`` pair view of the packed payload."""
        if self._payload_view is None:
            self._payload_view = list(zip(self.payload_origins.tolist(),
                                          self.payload_items.tolist()))
        return self._payload_view

    # -- sizes -----------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Routing entries the message performs."""
        return len(self.table)

    def payload_count(self) -> int:
        """Number of values physically transferred."""
        return int(self.payload_origins.size)

    def nbytes(self, item_bytes: int) -> int:
        """Payload size in bytes."""
        return self.payload_count() * item_bytes

    def __eq__(self, other: object) -> bool:
        """Field equality, matching the seed's dataclass semantics."""
        if not isinstance(other, PlannedMessage):
            return NotImplemented
        return (self.phase is other.phase
                and self.src == other.src and self.dest == other.dest
                and self.table == other.table
                and np.array_equal(self.payload_origins, other.payload_origins)
                and np.array_equal(self.payload_items, other.payload_items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlannedMessage({self.phase.value}, {self.src}->{self.dest}, "
                f"slots={self.n_slots}, payload={self.payload_count()})")


#: Column triple ``(origins, items, final_dests)`` — the multiset element layout.
_Columns = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _triple_groups(origins: np.ndarray, items: np.ndarray, dests: np.ndarray):
    """Lexicographic group ids of ``(origin, item, dest)`` triples.

    Returns ``(group_of, unique_columns)``: ``group_of[k]`` is the dense id of
    row ``k``'s triple, and ``unique_columns`` holds one representative triple
    per id, sorted lexicographically.  One int64 lexsort — far faster than
    ``np.unique(..., axis=0)``'s void-dtype sort.
    """
    order = np.lexsort((dests, items, origins))
    sorted_origins = origins[order]
    sorted_items = items[order]
    sorted_dests = dests[order]
    new_group = run_starts_mask(sorted_origins, sorted_items, sorted_dests)
    group_sorted = np.cumsum(new_group) - 1
    group_of = np.empty(order.size, dtype=INDEX_DTYPE)
    group_of[order] = group_sorted
    starts = np.flatnonzero(new_group)
    unique_columns = (sorted_origins[starts], sorted_items[starts],
                      sorted_dests[starts])
    return group_of, unique_columns


def _multiset_compare(required: _Columns, delivered: _Columns):
    """Compare two delivery multisets (column triples) with one lexsort pass.

    Returns ``(unique_columns, missing_ids, spurious_ids, duplicated_ids)``
    where the id arrays index into ``unique_columns`` (sorted
    lexicographically, so ids ascend in tuple order).
    """
    n_required = required[0].size
    origins = np.concatenate([required[0], delivered[0]])
    items = np.concatenate([required[1], delivered[1]])
    dests = np.concatenate([required[2], delivered[2]])
    if origins.size == 0:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return (empty, empty, empty), empty, empty, empty
    group_of, unique_columns = _triple_groups(origins, items, dests)
    n_groups = unique_columns[0].size
    required_counts = np.bincount(group_of[:n_required], minlength=n_groups)
    delivered_counts = np.bincount(group_of[n_required:], minlength=n_groups)
    missing = np.flatnonzero((required_counts > 0) & (delivered_counts == 0))
    spurious = np.flatnonzero((delivered_counts > 0) & (required_counts == 0))
    duplicated = np.flatnonzero(delivered_counts > 1)
    return unique_columns, missing, spurious, duplicated


def _example_rows(unique_columns: _Columns, ids: np.ndarray, limit: int = 3):
    """First few offending triples as plain tuples for error messages."""
    origins, items, dests = unique_columns
    return [(int(origins[i]), int(items[i]), int(dests[i]))
            for i in ids[:limit]]


@dataclass
class CollectivePlan:
    """Complete message schedule of one collective variant on one pattern."""

    variant: Variant
    pattern: CommPattern
    mapping: RankMapping
    phases: Dict[Phase, List[PlannedMessage]]
    #: Deliveries satisfied without any message (origin already at destination,
    #: or an aggregator that is itself the final destination).
    self_deliveries: SlotTable = field(default_factory=SlotTable.empty)
    #: Load-balancing strategy the planner used (``None`` for the unaggregated
    #: variants, whose plans are strategy-independent).  Provenance only — it
    #: completes the content key of the plan/exchange cache; two plans built
    #: with different strategies must never share a cache entry.
    strategy: object = field(default=None, compare=False)
    #: Content key stamped by :func:`~repro.collectives.planner.make_plan`
    #: (``None`` on hand-built plans).  The plan/exchange cache only serves
    #: entries for token-carrying plans: the token certifies the plan is the
    #: deterministic planner output for exactly that key, so two plans with
    #: equal tokens are interchangeable — a guarantee a hand-assembled
    #: ``phases`` dict cannot make.
    cache_token: object = field(default=None, compare=False)
    #: Instance memos for the derived per-plan analyses (statistics and
    #: modeled times).  A plan is immutable once planned, so both are pure
    #: functions of the plan (plus, for times, the cost model) — cached
    #: plans served repeatedly to the experiment drivers then answer their
    #: analyses in O(1) instead of re-walking every message.  Modeled times
    #: are keyed by the *live model object* (weakly, so dead models free
    #: their entries): keying by ``repr`` would let a model whose repr
    #: omits behaviour-bearing state — any non-dataclass
    #: :class:`~repro.perfmodel.base.CostModel` subclass with the default
    #: address-based repr, which the GC can reuse — be served another
    #: model's cached time.  Frozen-dataclass models hash by content, so
    #: equal models still share entries.
    _statistics_memo: object = field(default=None, compare=False, repr=False)
    _modeled_time_memo: "weakref.WeakKeyDictionary" = field(
        default_factory=weakref.WeakKeyDictionary, compare=False, repr=False)

    def __post_init__(self):
        if not isinstance(self.self_deliveries, SlotTable):
            self.self_deliveries = SlotTable.from_slots(self.self_deliveries)

    def __getstate__(self):
        # The memos are derived state: excluding them keeps pickles (the
        # disk tier of the plan cache) independent of what analyses happened
        # to run first, and the weak-keyed time memo cannot pickle anyway.
        state = self.__dict__.copy()
        state["_statistics_memo"] = None
        state["_modeled_time_memo"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__["_modeled_time_memo"] = weakref.WeakKeyDictionary()

    # -- iteration ------------------------------------------------------------

    def messages(self, phase: Phase | None = None) -> Iterator[PlannedMessage]:
        """Iterate over all messages, optionally restricted to one phase."""
        if phase is not None:
            yield from self.phases.get(phase, [])
            return
        for messages in self.phases.values():
            yield from messages

    def messages_from(self, rank: int, phase: Phase | None = None) -> List[PlannedMessage]:
        """Messages sent by ``rank``."""
        return [m for m in self.messages(phase) if m.src == rank]

    def messages_to(self, rank: int, phase: Phase | None = None) -> List[PlannedMessage]:
        """Messages received by ``rank``."""
        return [m for m in self.messages(phase) if m.dest == rank]

    @property
    def item_bytes(self) -> int:
        """Bytes per data item (taken from the pattern)."""
        return self.pattern.item_bytes

    @property
    def n_messages(self) -> int:
        """Total message count across all phases."""
        return sum(len(msgs) for msgs in self.phases.values())

    # -- columnar message views ------------------------------------------------

    def _message_columns(self, messages: Sequence[PlannedMessage]):
        """``(srcs, dests, payload_counts, slot_counts)`` arrays of a message list."""
        columns = np.array(
            [(m.src, m.dest, m.payload_origins.size, m.table.origin.size)
             for m in messages], dtype=INDEX_DTYPE).reshape(len(messages), 4)
        return columns[:, 0], columns[:, 1], columns[:, 2], columns[:, 3]

    # -- statistics (Figures 8-10) -----------------------------------------------

    def statistics(self) -> PatternStatistics:
        """Per-rank local / inter-region message and byte counts (sender side).

        Memoized on the plan: the counts are a pure function of the (frozen)
        message schedule, and the experiment drivers re-query them on every
        re-run of a figure sweep.  Treat the returned object as read-only.
        """
        if self._statistics_memo is not None:
            return self._statistics_memo
        stats = self._statistics_memo = self._compute_statistics()
        return stats

    def _compute_statistics(self) -> PatternStatistics:
        stats = PatternStatistics(n_ranks=self.pattern.n_ranks)
        messages = list(self.messages())
        if not messages:
            return stats
        srcs, dests, payloads, _ = self._message_columns(messages)
        is_local = self.mapping.same_region_many(srcs, dests)
        stats.add_messages(srcs, is_local, payloads * self.item_bytes)
        return stats

    def max_global_message_bytes(self) -> int:
        """Largest single inter-region message (Figure 10 uses the per-process max)."""
        messages = list(self.messages())
        if not messages:
            return 0
        srcs, dests, payloads, _ = self._message_columns(messages)
        inter = ~self.mapping.same_region_many(srcs, dests)
        if not inter.any():
            return 0
        return int((payloads[inter] * self.item_bytes).max())

    def global_payload_items(self) -> int:
        """Total number of values crossing region boundaries."""
        messages = list(self.messages())
        if not messages:
            return 0
        srcs, dests, payloads, _ = self._message_columns(messages)
        inter = ~self.mapping.same_region_many(srcs, dests)
        return int(payloads[inter].sum())

    # -- modeled time (Figures 7, 11-13) --------------------------------------------

    def _phase_time(self, model: CostModel, phase: Phase) -> float:
        messages = self.phases.get(phase, [])
        if not messages:
            return model.phase_time({})
        srcs, dests, payloads, _ = self._message_columns(messages)
        nbytes = payloads * self.item_bytes
        localities = self.mapping.locality_many(srcs, dests)
        # Group messages by sender with one sort instead of dict appends.
        order = np.argsort(srcs, kind="stable")
        sorted_srcs = srcs[order]
        starts = np.flatnonzero(run_starts_mask(sorted_srcs))
        bounds = np.append(starts, sorted_srcs.size)
        per_process: Dict[int, List[MessageCost]] = {}
        for begin, end in zip(bounds[:-1], bounds[1:]):
            indices = order[begin:end]
            per_process[int(sorted_srcs[begin])] = [
                MessageCost(nbytes=int(nbytes[i]), locality=localities[i])
                for i in indices
            ]
        return model.phase_time(per_process)

    def modeled_time(self, model: CostModel) -> float:
        """Modeled Start+Wait time of one iteration of this plan.

        Unaggregated variants have a single phase.  Aggregated variants follow
        Algorithms 5-6: the initial redistribution ``s`` completes before the
        inter-region phase ``g`` starts, while the fully-local phase ``l``
        overlaps both; the final redistribution ``r`` runs after ``g``.

        Memoized per live model object (equal frozen-dataclass models share
        the entry); models that cannot be weakly referenced or hashed are
        computed uncached.
        """
        memo = self._modeled_time_memo
        try:
            cached = memo.get(model)
        except TypeError:
            memo = None
            cached = None
        if cached is not None:
            return cached
        if self.variant in (Variant.POINT_TO_POINT, Variant.STANDARD):
            time = self._phase_time(model, Phase.DIRECT)
        else:
            t_l = self._phase_time(model, Phase.LOCAL)
            t_s = self._phase_time(model, Phase.SETUP_REDIST)
            t_g = self._phase_time(model, Phase.GLOBAL)
            t_r = self._phase_time(model, Phase.FINAL_REDIST)
            time = max(t_l, t_s + t_g) + t_r
        if memo is not None:
            try:
                memo[model] = time
            except TypeError:
                pass
        return time

    def setup_costs(self) -> Tuple[int, int]:
        """(message count, byte volume) proxies for per-process initialisation work.

        Aggregated variants must discover and load-balance the aggregated
        pattern during ``*_init``; the work each process performs grows with
        the number of messages it participates in and with the routing
        metadata it must exchange (three integers per slot).  Initialisation
        happens in parallel, so the proxies are the *maximum over processes*,
        not totals.
        """
        messages = list(self.messages())
        if not messages:
            return 0, 0
        srcs, dests, _, slot_counts = self._message_columns(messages)
        endpoints = np.concatenate([srcs, dests])
        slot_bytes = np.concatenate([slot_counts, slot_counts]) * (3 * 8)
        length = int(endpoints.max()) + 1
        messages_per_rank = np.bincount(endpoints, minlength=length)
        slot_bytes_per_rank = np.bincount(endpoints, weights=slot_bytes,
                                          minlength=length)
        return int(messages_per_rank.max()), int(slot_bytes_per_rank.max())

    # -- validation -------------------------------------------------------------------

    def _required_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(origin, item, final_dest)`` columns the pattern requires."""
        origins, dests, items = self.pattern.edge_arrays()
        return origins, items, dests

    def _planned_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Delivery columns the plan performs (terminal phases plus self-deliveries).

        Raises :class:`PlanError` when a terminal message carries a slot whose
        final destination is not the message destination (one vectorized
        comparison over all terminal slots).
        """
        messages = [message
                    for phase in TERMINAL_PHASES[self.variant]
                    for message in self.phases.get(phase, [])]
        parts = [message.table for message in messages]
        if messages:
            final_dests = np.concatenate([t.final_dest for t in parts])
            lengths = np.fromiter((t.origin.size for t in parts),
                                  dtype=INDEX_DTYPE, count=len(parts))
            expected = np.repeat(
                np.fromiter((m.dest for m in messages), dtype=INDEX_DTYPE,
                            count=len(messages)), lengths)
            stray_mask = final_dests != expected
            if stray_mask.any():
                position = int(np.argmax(stray_mask))
                message = messages[int(np.searchsorted(
                    np.cumsum(lengths), position, side="right"))]
                raise PlanError(
                    f"terminal message {message.src}->{message.dest} carries a slot "
                    f"bound for rank {int(final_dests[position])}"
                )
        parts.append(self.self_deliveries)
        table = SlotTable.concat(parts)
        return table.origin, table.item, table.final_dest

    def required_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        """Multiset of ``(origin, item, final_dest)`` required by the pattern."""
        return self._columns_to_multiset(self._required_columns())

    def planned_deliveries(self) -> Dict[Tuple[int, int, int], int]:
        """Multiset of deliveries the plan performs (terminal phases only)."""
        return self._columns_to_multiset(self._planned_columns())

    @staticmethod
    def _columns_to_multiset(columns) -> Dict[Tuple[int, int, int], int]:
        origins, items, dests = columns
        if origins.size == 0:
            return {}
        group_of, (unique_origins, unique_items, unique_dests) = \
            _triple_groups(origins, items, dests)
        counts = np.bincount(group_of)
        return {key: int(count) for key, count in zip(
            zip(unique_origins.tolist(), unique_items.tolist(),
                unique_dests.tolist()), counts.tolist())}

    def _check_message_structure(self) -> None:
        """Vectorized endpoint-range and phase-locality checks."""
        n = self.pattern.n_ranks
        for phase, messages in self.phases.items():
            if not messages:
                continue
            srcs, dests, _, _ = self._message_columns(messages)
            out_of_range = (srcs < 0) | (srcs >= n) | (dests < 0) | (dests >= n)
            if out_of_range.any():
                index = int(np.argmax(out_of_range))
                raise PlanError(
                    f"message endpoints ({int(srcs[index])}, {int(dests[index])}) "
                    "out of range"
                )
            same_region = self.mapping.same_region_many(srcs, dests)
            if phase is Phase.GLOBAL and same_region.any():
                index = int(np.argmax(same_region))
                raise PlanError(
                    f"inter-region phase message {int(srcs[index])}->"
                    f"{int(dests[index])} stays inside a region"
                )
            if phase in (Phase.LOCAL, Phase.SETUP_REDIST, Phase.FINAL_REDIST) \
                    and not same_region.all():
                index = int(np.argmax(~same_region))
                raise PlanError(
                    f"intra-region phase {phase.value} message "
                    f"{int(srcs[index])}->{int(dests[index])} crosses regions"
                )

    def validate(self) -> None:
        """Check the plan delivers exactly what the pattern requires.

        Raises :class:`PlanError` on missing, duplicated, or spurious
        deliveries, on messages whose endpoints are out of range, and on
        inter-region messages appearing in intra-region phases (and vice
        versa).  The delivery check is a single ``np.unique`` multiset
        comparison over the columnar slot tables.
        """
        self._check_message_structure()
        required = self._required_columns()
        delivered = self._planned_columns()
        # The pattern may list the same (origin, item, dest) more than once
        # (duplicate entries in a send list); a single delivery satisfies them.
        unique_rows, missing, spurious, duplicated = _multiset_compare(
            required, delivered)
        if missing.size:
            example = _example_rows(unique_rows, missing)
            raise PlanError(f"plan misses {missing.size} deliveries, e.g. {example}")
        if spurious.size:
            example = _example_rows(unique_rows, spurious)
            raise PlanError(
                f"plan performs {spurious.size} spurious deliveries, e.g. {example}")
        if duplicated.size:
            example = _example_rows(unique_rows, duplicated)
            raise PlanError(
                f"plan delivers {duplicated.size} items more than once, "
                f"e.g. {example}"
            )

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        phase_counts = ", ".join(
            f"{phase.value}:{len(msgs)}" for phase, msgs in sorted(
                self.phases.items(), key=lambda kv: kv[0].value)
            if msgs
        )
        return (f"{self.variant.value} plan: {self.n_messages} messages "
                f"({phase_counts or 'none'})")
