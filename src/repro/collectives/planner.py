"""Planners: from a communication pattern to a message schedule per variant.

``plan_standard`` reproduces Section 3.1 (one persistent message per neighbor,
regardless of locality).  ``plan_partial`` implements the three-step
locality-aware aggregation of Section 3.2, and ``plan_full`` adds the
duplicate-value removal of Section 3.3.  All planners are pure functions of the
pattern and the rank mapping, which is what lets the experiment harness compute
Figures 8-13 for thousands of simulated ranks without executing any
communication.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.collectives.aggregation import (
    AggregationAssignment,
    BalanceStrategy,
    collect_region_traffic,
    setup_aggregation,
)
from repro.collectives.dedup import unique_payload_keys
from repro.collectives.plan import (
    CollectivePlan,
    Phase,
    PlannedMessage,
    Slot,
    Variant,
)
from repro.pattern.comm_pattern import CommPattern
from repro.topology.mapping import RankMapping
from repro.utils.errors import PlanError


def _edge_slots(src: int, dest: int, items: np.ndarray) -> List[Slot]:
    """Slots of one pattern edge, with within-edge duplicates removed."""
    unique_items = np.unique(items)
    return [Slot(origin=src, item=int(item), final_dest=dest) for item in unique_items]


def plan_standard(pattern: CommPattern, mapping: RankMapping, *,
                  variant: Variant = Variant.STANDARD) -> CollectivePlan:
    """One direct message per (source, destination) pair — Algorithms 1-3."""
    if variant not in (Variant.STANDARD, Variant.POINT_TO_POINT):
        raise PlanError(f"plan_standard cannot build variant {variant}")
    direct: List[PlannedMessage] = []
    self_deliveries: List[Slot] = []
    for src, dest, items in pattern.edges():
        slots = _edge_slots(src, dest, items)
        if src == dest:
            self_deliveries.extend(slots)
            continue
        direct.append(PlannedMessage(phase=Phase.DIRECT, src=src, dest=dest, slots=slots))
    return CollectivePlan(variant=variant, pattern=pattern, mapping=mapping,
                          phases={Phase.DIRECT: direct},
                          self_deliveries=self_deliveries)


def _aggregated_plan(pattern: CommPattern, mapping: RankMapping, *,
                     deduplicate: bool,
                     strategy: BalanceStrategy,
                     assignment: AggregationAssignment | None = None) -> CollectivePlan:
    variant = Variant.FULL if deduplicate else Variant.PARTIAL
    if assignment is None:
        assignment = setup_aggregation(pattern, mapping, strategy=strategy)
    traffic = collect_region_traffic(pattern, mapping)

    local: List[PlannedMessage] = []
    self_deliveries: List[Slot] = []

    # Phase l: messages that never leave the region go directly to their
    # destination, exactly as in the standard plan.
    for src, dest, items in pattern.edges():
        if src != dest and not mapping.same_region(src, dest):
            continue
        slots = _edge_slots(src, dest, items)
        if src == dest:
            self_deliveries.extend(slots)
        else:
            local.append(PlannedMessage(phase=Phase.LOCAL, src=src, dest=dest, slots=slots))

    # Inter-region traffic: accumulate the three aggregated phases.  Messages
    # sharing endpoints within a phase are merged (one buffer per pair of
    # ranks per phase), which is what a real implementation posts.
    setup_slots: Dict[Tuple[int, int], List[Slot]] = {}
    global_slots: Dict[Tuple[int, int], List[Slot]] = {}
    final_slots: Dict[Tuple[int, int], List[Slot]] = {}

    for src_region, region_traffic in sorted(traffic.items()):
        for dest_region in region_traffic.dest_regions():
            send_leader, recv_leader = assignment.leaders_for(src_region, dest_region)
            pair_slots: List[Slot] = []
            for src, dest, items in region_traffic.per_pair[dest_region]:
                pair_slots.extend(_edge_slots(src, dest, items))
            if not pair_slots:
                continue

            # Phase s: every rank forwards its contribution to the send leader.
            by_origin: Dict[int, List[Slot]] = {}
            for slot in pair_slots:
                by_origin.setdefault(slot.origin, []).append(slot)
            for origin in sorted(by_origin):
                if origin == send_leader:
                    continue
                setup_slots.setdefault((origin, send_leader), []).extend(by_origin[origin])

            # Phase g: one aggregated message between the leaders.
            if mapping.same_region(send_leader, recv_leader):
                raise PlanError(
                    f"leaders for region pair ({src_region}, {dest_region}) share a region"
                )
            global_slots.setdefault((send_leader, recv_leader), []).extend(pair_slots)

            # Phase r: the receive leader forwards to final destinations.
            by_dest: Dict[int, List[Slot]] = {}
            for slot in pair_slots:
                by_dest.setdefault(slot.final_dest, []).append(slot)
            for dest in sorted(by_dest):
                if dest == recv_leader:
                    self_deliveries.extend(by_dest[dest])
                    continue
                final_slots.setdefault((recv_leader, dest), []).extend(by_dest[dest])

    def build(phase: Phase, grouped: Dict[Tuple[int, int], List[Slot]]) -> List[PlannedMessage]:
        messages = []
        for (src, dest), slots in sorted(grouped.items()):
            payload = unique_payload_keys(slots) if deduplicate else \
                [(slot.origin, slot.item) for slot in slots]
            messages.append(PlannedMessage(phase=phase, src=src, dest=dest,
                                           slots=slots, payload_keys=payload))
        return messages

    phases = {
        Phase.LOCAL: local,
        Phase.SETUP_REDIST: build(Phase.SETUP_REDIST, setup_slots),
        Phase.GLOBAL: build(Phase.GLOBAL, global_slots),
        Phase.FINAL_REDIST: build(Phase.FINAL_REDIST, final_slots),
    }
    return CollectivePlan(variant=variant, pattern=pattern, mapping=mapping,
                          phases=phases, self_deliveries=self_deliveries)


def plan_partial(pattern: CommPattern, mapping: RankMapping, *,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 assignment: AggregationAssignment | None = None) -> CollectivePlan:
    """Three-step locality-aware aggregation without duplicate removal (Section 3.2)."""
    return _aggregated_plan(pattern, mapping, deduplicate=False, strategy=strategy,
                            assignment=assignment)


def plan_full(pattern: CommPattern, mapping: RankMapping, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES,
              assignment: AggregationAssignment | None = None) -> CollectivePlan:
    """Aggregation plus duplicate-value removal via the index extension (Section 3.3)."""
    return _aggregated_plan(pattern, mapping, deduplicate=True, strategy=strategy,
                            assignment=assignment)


def make_plan(pattern: CommPattern, mapping: RankMapping, variant: Variant | str, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES) -> CollectivePlan:
    """Dispatch to the planner for ``variant``."""
    variant = Variant(variant)
    if variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        return plan_standard(pattern, mapping, variant=variant)
    if variant is Variant.PARTIAL:
        return plan_partial(pattern, mapping, strategy=strategy)
    if variant is Variant.FULL:
        return plan_full(pattern, mapping, strategy=strategy)
    raise PlanError(f"unknown variant {variant!r}")


def all_plans(pattern: CommPattern, mapping: RankMapping, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES
              ) -> Dict[Variant, CollectivePlan]:
    """Plans for every variant, sharing one aggregation assignment.

    Sharing the assignment mirrors the paper's note that the partially
    optimized implementation "simply wraps" the fully optimized one, and keeps
    the partial/full comparison (Figure 10) apples-to-apples.
    """
    assignment = setup_aggregation(pattern, mapping, strategy=strategy)
    return {
        Variant.POINT_TO_POINT: plan_standard(pattern, mapping,
                                              variant=Variant.POINT_TO_POINT),
        Variant.STANDARD: plan_standard(pattern, mapping, variant=Variant.STANDARD),
        Variant.PARTIAL: plan_partial(pattern, mapping, strategy=strategy,
                                      assignment=assignment),
        Variant.FULL: plan_full(pattern, mapping, strategy=strategy,
                                assignment=assignment),
    }
