"""Planners: from a communication pattern to a message schedule per variant.

``plan_standard`` reproduces Section 3.1 (one persistent message per neighbor,
regardless of locality).  ``plan_partial`` implements the three-step
locality-aware aggregation of Section 3.2, and ``plan_full`` adds the
duplicate-value removal of Section 3.3.  All planners are pure functions of the
pattern and the rank mapping, which is what lets the experiment harness compute
Figures 8-13 for thousands of simulated ranks without executing any
communication.

Compilation is columnar: the pattern's expanded edge table (three parallel
int64 arrays) is deduplicated, routed, and grouped into messages with a
handful of ``np.lexsort`` passes — per-row leader assignment via ``np.repeat``
over the region-pair segments, one sort per phase, boundary detection for the
message runs — so planning cost no longer scales with one Python loop
iteration per routed item.  The slot-list implementation this replaced is
preserved verbatim in :mod:`repro.collectives.reference` and pinned to this
planner by the golden-equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.collectives.aggregation import (
    AggregationAssignment,
    BalanceStrategy,
    setup_aggregation,
)
from repro.collectives.dedup import unique_pairs_segmented
from repro.collectives.plan import (
    CollectivePlan,
    Phase,
    PlannedMessage,
    SlotTable,
    Variant,
)
from repro.collectives import plan_cache
from repro.pattern.comm_pattern import CommPattern
from repro.topology.mapping import RankMapping
from repro.utils.arrays import INDEX_DTYPE, counts_to_displs, run_starts_mask
from repro.utils.errors import PlanError


def _group_bounds(*columns: np.ndarray) -> np.ndarray:
    """Group boundaries of pre-sorted parallel key columns.

    Returns offsets ``b`` such that group ``i`` spans ``[b[i], b[i + 1])``.
    """
    n = columns[0].size
    if n == 0:
        return np.zeros(1, dtype=INDEX_DTYPE)
    starts = np.flatnonzero(run_starts_mask(*columns))
    return np.append(starts, n).astype(INDEX_DTYPE, copy=False)


def _freeze(*arrays: np.ndarray) -> None:
    """Mark arrays read-only so every slice handed to a SlotTable inherits it."""
    for array in arrays:
        if array.flags.writeable:
            array.flags.writeable = False


def _self_delivery_table(origins: np.ndarray, items: np.ndarray,
                         dests: np.ndarray) -> SlotTable:
    """Wrap freshly-masked planner columns as a SlotTable without re-copying."""
    _freeze(origins, items, dests)
    return SlotTable._wrap(origins, items, dests)


def _phase_messages(phase: Phase, srcs: np.ndarray, dests: np.ndarray,
                    origins: np.ndarray, items: np.ndarray,
                    final_dests: np.ndarray, *,
                    deduplicate: bool = False) -> List[PlannedMessage]:
    """One message per ``(src, dest)`` run of pre-sorted per-row endpoint columns.

    ``srcs``/``dests`` give every row's message endpoints and must be the
    primary sort keys of all six columns.  With ``deduplicate`` the payload
    unique of every message of the phase runs as one segmented lexsort
    instead of one small sort per message.
    """
    if origins.size == 0:
        return []
    _freeze(origins, items, final_dests)
    bounds = _group_bounds(srcs, dests)
    n_messages = bounds.size - 1
    starts = bounds[:-1]
    src_values = srcs[starts].tolist()
    dest_values = dests[starts].tolist()
    offsets = bounds.tolist()

    payload_offsets = payload_origins = payload_items = None
    if deduplicate:
        segments = np.repeat(np.arange(n_messages, dtype=INDEX_DTYPE),
                             np.diff(bounds))
        payload_origins, payload_items, counts = unique_pairs_segmented(
            segments, origins, items, n_messages)
        _freeze(payload_origins, payload_items)
        payload_offsets = counts_to_displs(counts).tolist()

    messages: List[PlannedMessage] = []
    for index in range(n_messages):
        begin, end = offsets[index], offsets[index + 1]
        table = SlotTable._wrap(origins[begin:end], items[begin:end],
                                final_dests[begin:end])
        if deduplicate:
            p_begin, p_end = payload_offsets[index], payload_offsets[index + 1]
            message = PlannedMessage.from_table(
                phase, src_values[index], dest_values[index], table,
                payload_origins[p_begin:p_end], payload_items[p_begin:p_end])
        else:
            message = PlannedMessage.from_table(
                phase, src_values[index], dest_values[index], table)
        messages.append(message)
    return messages


def plan_standard(pattern: CommPattern, mapping: RankMapping, *,
                  variant: Variant = Variant.STANDARD) -> CollectivePlan:
    """One direct message per (source, destination) pair — Algorithms 1-3."""
    if variant not in (Variant.STANDARD, Variant.POINT_TO_POINT):
        raise PlanError(f"plan_standard cannot build variant {variant}")
    origins, dests, items = pattern.unique_edge_table()
    self_mask = origins == dests
    self_deliveries = _self_delivery_table(origins[self_mask], items[self_mask],
                                           dests[self_mask])
    keep = ~self_mask
    origins, dests, items = origins[keep], dests[keep], items[keep]
    direct = _phase_messages(Phase.DIRECT, origins, dests,
                             origins, items, dests)
    return CollectivePlan(variant=variant, pattern=pattern, mapping=mapping,
                          phases={Phase.DIRECT: direct},
                          self_deliveries=self_deliveries)


def _aggregated_plan(pattern: CommPattern, mapping: RankMapping, *,
                     deduplicate: bool,
                     strategy: BalanceStrategy,
                     assignment: AggregationAssignment | None = None) -> CollectivePlan:
    variant = Variant.FULL if deduplicate else Variant.PARTIAL
    if assignment is None:
        assignment = setup_aggregation(pattern, mapping, strategy=strategy)

    origins, dests, items = pattern.unique_edge_table()
    regions = mapping.regions_array()
    origin_regions = mapping.region_of_many(origins)
    dest_region_ids = mapping.region_of_many(dests)
    self_mask = origins == dests
    same_region = origin_regions == dest_region_ids

    # Phase l: messages that never leave the region go directly to their
    # destination, exactly as in the standard plan; self-edges are satisfied
    # without any message.
    self_parts: List[SlotTable] = [
        _self_delivery_table(origins[self_mask], items[self_mask],
                             dests[self_mask])]
    local_mask = same_region & ~self_mask
    local = _phase_messages(Phase.LOCAL, origins[local_mask],
                            dests[local_mask], origins[local_mask],
                            items[local_mask], dests[local_mask])

    # Inter-region traffic: the three aggregated phases.  Rows are first
    # segmented by (source region, destination region); the leaders of each
    # region pair fan out to per-row arrays with one np.repeat, and each phase
    # is then a single lexsort + boundary grouping:
    #
    # * phase s groups by (origin, send leader), skipping rows the leader
    #   already holds,
    # * phase g groups by the leader pair (one aggregated message per region
    #   pair), and
    # * phase r groups by (receive leader, final destination); rows whose
    #   destination *is* the receive leader become self-deliveries.
    #
    # Messages sharing endpoints within a phase merge automatically (one
    # buffer per pair of ranks per phase), which is what a real implementation
    # posts.
    phases: Dict[Phase, List[PlannedMessage]] = {
        Phase.LOCAL: local,
        Phase.SETUP_REDIST: [],
        Phase.GLOBAL: [],
        Phase.FINAL_REDIST: [],
    }

    inter_mask = ~same_region
    if inter_mask.any():
        row_origins = origins[inter_mask]
        row_dests = dests[inter_mask]
        row_items = items[inter_mask]
        row_src_regions = origin_regions[inter_mask]
        row_dest_regions = dest_region_ids[inter_mask]

        # Per-row leaders via dense (src_region, dest_region) lookup tables —
        # no pre-sort by region pair needed.
        n_regions = mapping.n_regions
        send_table = np.full((n_regions, n_regions), -1, dtype=INDEX_DTYPE)
        recv_table = np.full((n_regions, n_regions), -1, dtype=INDEX_DTYPE)
        for (src_region, dest_region), rank in assignment.send_leader.items():
            send_table[src_region, dest_region] = rank
        for (src_region, dest_region), rank in assignment.recv_leader.items():
            recv_table[src_region, dest_region] = rank
        row_send = send_table[row_src_regions, row_dest_regions]
        row_recv = recv_table[row_src_regions, row_dest_regions]
        unassigned = (row_send < 0) | (row_recv < 0)
        if unassigned.any():
            index = int(np.argmax(unassigned))
            key = (int(row_src_regions[index]), int(row_dest_regions[index]))
            raise PlanError(f"no aggregation leaders assigned for region pair {key}")
        shared = regions[row_send] == regions[row_recv]
        if shared.any():
            index = int(np.argmax(shared))
            raise PlanError(
                f"leaders for region pair ({int(row_src_regions[index])}, "
                f"{int(row_dest_regions[index])}) share a region"
            )

        # Phase s: every rank forwards its contribution to the send leader.
        # Sorting with the skip flag as the most significant key puts the
        # leader's own rows last, so the forwarded block is one slice.
        skip = row_origins == row_send
        order = np.lexsort((row_items, row_dests, row_dest_regions,
                            row_send, row_origins, skip))
        selection = order[:order.size - int(np.count_nonzero(skip))]
        setup_origins = row_origins[selection]
        phases[Phase.SETUP_REDIST] = _phase_messages(
            Phase.SETUP_REDIST, setup_origins, row_send[selection],
            setup_origins, row_items[selection], row_dests[selection],
            deduplicate=deduplicate)

        # Phase g: one aggregated message between the leaders of each pair.
        order = np.lexsort((row_items, row_dests, row_origins,
                            row_recv, row_send))
        phases[Phase.GLOBAL] = _phase_messages(
            Phase.GLOBAL, row_send[order], row_recv[order],
            row_origins[order], row_items[order], row_dests[order],
            deduplicate=deduplicate)

        # Phase r: the receive leader forwards to final destinations; rows it
        # keeps for itself are satisfied without a message (same flag trick,
        # self-kept rows sorted into the tail in self-delivery order).
        keep_self = row_dests == row_recv
        n_kept = int(np.count_nonzero(keep_self))
        if n_kept:
            order = np.lexsort((row_items, row_origins, row_dests,
                                row_dest_regions, row_src_regions, keep_self))
            selection = order[order.size - n_kept:]
            self_parts.append(_self_delivery_table(row_origins[selection],
                                                   row_items[selection],
                                                   row_dests[selection]))
        order = np.lexsort((row_items, row_origins, row_src_regions,
                            row_dests, row_recv, keep_self))
        selection = order[:order.size - n_kept]
        final_dests = row_dests[selection]
        phases[Phase.FINAL_REDIST] = _phase_messages(
            Phase.FINAL_REDIST, row_recv[selection], final_dests,
            row_origins[selection], row_items[selection], final_dests,
            deduplicate=deduplicate)

    return CollectivePlan(variant=variant, pattern=pattern, mapping=mapping,
                          phases=phases,
                          self_deliveries=SlotTable.concat(self_parts),
                          strategy=strategy)


def plan_partial(pattern: CommPattern, mapping: RankMapping, *,
                 strategy: BalanceStrategy = BalanceStrategy.BYTES,
                 assignment: AggregationAssignment | None = None) -> CollectivePlan:
    """Three-step locality-aware aggregation without duplicate removal (Section 3.2)."""
    return _aggregated_plan(pattern, mapping, deduplicate=False, strategy=strategy,
                            assignment=assignment)


def plan_full(pattern: CommPattern, mapping: RankMapping, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES,
              assignment: AggregationAssignment | None = None) -> CollectivePlan:
    """Aggregation plus duplicate-value removal via the index extension (Section 3.3)."""
    return _aggregated_plan(pattern, mapping, deduplicate=True, strategy=strategy,
                            assignment=assignment)


def make_plan(pattern: CommPattern, mapping: RankMapping, variant: Variant | str, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES,
              use_cache: bool = True) -> CollectivePlan:
    """Dispatch to the planner for ``variant``.

    Results are served from the content-addressed plan cache when possible
    (see :mod:`repro.collectives.plan_cache`): planning is deterministic in
    ``(pattern, mapping, variant, strategy)``, so a hit is the same plan a
    cold build would produce.  Pass ``use_cache=False`` to force a cold
    build (the cold plan is still stored for later callers).
    """
    variant = Variant(variant)
    if use_cache:
        cached = plan_cache.fetch_plan(pattern, mapping, variant, strategy)
        if cached is not None:
            return cached
    if variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        plan = plan_standard(pattern, mapping, variant=variant)
    elif variant is Variant.PARTIAL:
        plan = plan_partial(pattern, mapping, strategy=strategy)
    elif variant is Variant.FULL:
        plan = plan_full(pattern, mapping, strategy=strategy)
    else:
        raise PlanError(f"unknown variant {variant!r}")
    plan.cache_token = plan_cache.plan_key(pattern, mapping, variant, strategy)
    plan_cache.store_plan(plan)
    return plan


def all_plans(pattern: CommPattern, mapping: RankMapping, *,
              strategy: BalanceStrategy = BalanceStrategy.BYTES,
              use_cache: bool = True) -> Dict[Variant, CollectivePlan]:
    """Plans for every variant, sharing one aggregation assignment.

    Sharing the assignment mirrors the paper's note that the partially
    optimized implementation "simply wraps" the fully optimized one, and keeps
    the partial/full comparison (Figure 10) apples-to-apples.  Variants
    already in the plan cache are served from it — ``setup_aggregation`` is
    deterministic in ``(pattern, mapping, strategy)``, so a shared and a
    per-plan assignment produce the same plan and may share cache entries.
    The aggregation setup only runs when an aggregated variant misses.
    """
    plans: Dict[Variant, CollectivePlan] = {}
    if use_cache:
        for variant in (Variant.POINT_TO_POINT, Variant.STANDARD,
                        Variant.PARTIAL, Variant.FULL):
            cached = plan_cache.fetch_plan(pattern, mapping, variant, strategy)
            if cached is not None:
                plans[variant] = cached

    def built(variant: Variant, plan: CollectivePlan) -> CollectivePlan:
        plan.cache_token = plan_cache.plan_key(pattern, mapping, variant,
                                               strategy)
        plan_cache.store_plan(plan)
        return plan

    if Variant.POINT_TO_POINT not in plans:
        plans[Variant.POINT_TO_POINT] = built(
            Variant.POINT_TO_POINT,
            plan_standard(pattern, mapping, variant=Variant.POINT_TO_POINT))
    if Variant.STANDARD not in plans:
        plans[Variant.STANDARD] = built(
            Variant.STANDARD,
            plan_standard(pattern, mapping, variant=Variant.STANDARD))
    if Variant.PARTIAL not in plans or Variant.FULL not in plans:
        assignment = setup_aggregation(pattern, mapping, strategy=strategy)
        if Variant.PARTIAL not in plans:
            plans[Variant.PARTIAL] = built(
                Variant.PARTIAL,
                plan_partial(pattern, mapping, strategy=strategy,
                             assignment=assignment))
        if Variant.FULL not in plans:
            plans[Variant.FULL] = built(
                Variant.FULL,
                plan_full(pattern, mapping, strategy=strategy,
                          assignment=assignment))
    return {variant: plans[variant]
            for variant in (Variant.POINT_TO_POINT, Variant.STANDARD,
                            Variant.PARTIAL, Variant.FULL)}
