"""Functional execution of collective plans on the simulated MPI runtime.

A :class:`PersistentNeighborCollective` is one rank's handle on a persistent
neighborhood collective: it is created once (``init``), then every iteration
packs its send buffers, starts communication, and unpacks received values —
the Start/Wait cycle the paper times.  The handle executes whatever
:class:`~repro.collectives.plan.CollectivePlan` it is given, so the same class
runs the standard, partially optimized and fully optimized variants; the
difference is entirely in the plan.

Values are float64 scalars keyed by item id (for a SpMV halo exchange, the
vector entries keyed by global row index).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.collectives.plan import (
    CollectivePlan,
    Phase,
    PlannedMessage,
    Variant,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.request import PersistentRecvRequest, PersistentSendRequest
from repro.utils.errors import CommunicationError, PlanError

#: Tag offsets per phase so concurrent phases never match each other's traffic.
_PHASE_TAGS = {
    Phase.DIRECT: 10,
    Phase.LOCAL: 11,
    Phase.SETUP_REDIST: 12,
    Phase.GLOBAL: 13,
    Phase.FINAL_REDIST: 14,
}


class _PhaseEndpoint:
    """One rank's sends and receives for one phase of a plan."""

    def __init__(self, comm: SimComm, plan: CollectivePlan, phase: Phase, rank: int):
        tag = _PHASE_TAGS[phase]
        self.phase = phase
        self.send_messages: List[PlannedMessage] = plan.messages_from(rank, phase)
        self.recv_messages: List[PlannedMessage] = plan.messages_to(rank, phase)
        self.send_buffers: List[np.ndarray] = [
            np.empty(m.payload_count(), dtype=np.float64) for m in self.send_messages
        ]
        self.recv_buffers: List[np.ndarray] = [
            np.empty(m.payload_count(), dtype=np.float64) for m in self.recv_messages
        ]
        self.send_requests: List[PersistentSendRequest] = [
            comm.send_init(buf, dest=m.dest, tag=tag)
            for m, buf in zip(self.send_messages, self.send_buffers)
        ]
        self.recv_requests: List[PersistentRecvRequest] = [
            comm.recv_init(buf, source=m.src, tag=tag)
            for m, buf in zip(self.recv_messages, self.recv_buffers)
        ]

    # -- per-iteration operations ---------------------------------------------

    def pack(self, known_values: Dict[Tuple[int, int], float]) -> None:
        """Fill send buffers from the values this rank currently holds."""
        for message, buffer in zip(self.send_messages, self.send_buffers):
            for position, key in enumerate(message.payload_keys):
                try:
                    buffer[position] = known_values[key]
                except KeyError:
                    raise PlanError(
                        f"rank holds no value for origin {key[0]}, item {key[1]} needed "
                        f"by a phase-{message.phase.value} message"
                    ) from None

    def start(self) -> None:
        """Start all persistent requests of the phase (MPI_Startall)."""
        for request in self.recv_requests:
            request.start()
        for request in self.send_requests:
            request.start()

    def wait(self, known_values: Dict[Tuple[int, int], float]) -> None:
        """Complete the phase and merge received values into ``known_values``."""
        for request in self.recv_requests:
            request.wait()
        for request in self.send_requests:
            request.wait()
        for message, buffer in zip(self.recv_messages, self.recv_buffers):
            for position, key in enumerate(message.payload_keys):
                known_values[key] = float(buffer[position])

    @property
    def n_messages(self) -> int:
        """Messages this rank sends in the phase."""
        return len(self.send_messages)


class PersistentNeighborCollective:
    """One rank's persistent handle for a planned neighborhood collective."""

    def __init__(self, comm: SimComm, plan: CollectivePlan, *,
                 duplicate_comm: bool = True):
        self.comm = comm.dup() if duplicate_comm else comm
        self.plan = plan
        self.rank = comm.rank
        self.variant = plan.variant
        if plan.pattern.n_ranks > comm.size:
            raise CommunicationError(
                "plan was built for more ranks than the communicator provides"
            )
        if self.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
            self._phases = [_PhaseEndpoint(self.comm, plan, Phase.DIRECT, self.rank)]
        else:
            self._phases = [
                _PhaseEndpoint(self.comm, plan, phase, self.rank)
                for phase in (Phase.LOCAL, Phase.SETUP_REDIST, Phase.GLOBAL,
                              Phase.FINAL_REDIST)
            ]
        self._phase_by_name = {endpoint.phase: endpoint for endpoint in self._phases}
        # Items this rank must hand back to the caller after every exchange.
        recv_map = plan.pattern.recv_map(self.rank)
        self._expected_items: Dict[int, int] = {}
        for src, items in recv_map.items():
            for item in items.tolist():
                self._expected_items[int(item)] = int(src)
        self._known_values: Dict[Tuple[int, int], float] = {}
        self._started = False

    # -- persistent life-cycle ----------------------------------------------------

    def start(self, values: Mapping[int, float]) -> None:
        """Begin one iteration of communication (MPI_Start).

        ``values`` maps the item ids this rank *owns* to their current values.
        Following Algorithm 5, the fully local phase and the initial
        redistribution are started immediately; the redistribution is completed
        inside ``start`` so the inter-region phase can begin.
        """
        if self._started:
            raise CommunicationError("collective started twice without wait")
        self._known_values = {(self.rank, int(item)): float(value)
                              for item, value in values.items()}
        if self.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
            direct = self._phase_by_name[Phase.DIRECT]
            direct.pack(self._known_values)
            direct.start()
        else:
            local = self._phase_by_name[Phase.LOCAL]
            setup = self._phase_by_name[Phase.SETUP_REDIST]
            global_phase = self._phase_by_name[Phase.GLOBAL]
            local.pack(self._known_values)
            local.start()
            setup.pack(self._known_values)
            setup.start()
            setup.wait(self._known_values)
            global_phase.pack(self._known_values)
            global_phase.start()
        self._started = True

    def wait(self) -> Dict[int, float]:
        """Complete the iteration (MPI_Wait) and return received values.

        Returns a mapping from item id to value covering every item this rank
        receives in the pattern (plus items it sends to itself).
        """
        if not self._started:
            raise CommunicationError("wait called before start")
        if self.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
            self._phase_by_name[Phase.DIRECT].wait(self._known_values)
        else:
            local = self._phase_by_name[Phase.LOCAL]
            global_phase = self._phase_by_name[Phase.GLOBAL]
            final = self._phase_by_name[Phase.FINAL_REDIST]
            local.wait(self._known_values)
            global_phase.wait(self._known_values)
            final.pack(self._known_values)
            final.start()
            final.wait(self._known_values)
        self._started = False
        result: Dict[int, float] = {}
        for item, src in self._expected_items.items():
            key = (src, item)
            if key not in self._known_values:
                raise CommunicationError(
                    f"rank {self.rank} did not receive item {item} from rank {src}"
                )
            result[item] = self._known_values[key]
        return result

    def exchange(self, values: Mapping[int, float]) -> Dict[int, float]:
        """Convenience start-then-wait for a single iteration."""
        self.start(values)
        return self.wait()

    # -- introspection ---------------------------------------------------------------

    def messages_per_iteration(self) -> int:
        """Number of messages this rank sends every iteration."""
        return sum(endpoint.n_messages for endpoint in self._phases)

    def describe(self) -> str:
        """Short human-readable summary."""
        return (f"rank {self.rank}: {self.variant.value} collective, "
                f"{self.messages_per_iteration()} messages/iteration")
