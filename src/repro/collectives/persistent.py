"""Functional execution of collective plans on the simulated MPI runtime.

A :class:`PersistentNeighborCollective` is one rank's handle on a persistent
neighborhood collective: it is created once (``init``), then every iteration
packs its send buffers, starts communication, and unpacks received values —
the Start/Wait cycle the paper times.  The handle executes whatever
:class:`~repro.collectives.plan.CollectivePlan` it is given, so the same class
runs the standard, partially optimized and fully optimized variants; the
difference is entirely in the plan.

The data path is array-native: at init time the plan is compiled into
gather/scatter index arrays (:mod:`repro.collectives.exchange`), and every
iteration moves a dense value array of any dtype (float32/float64/int64/
complex128/…) with any number of components per item.  Packing is one fancy
index per phase into a contiguous send arena whose per-message slices are
posted directly as the persistent send buffers; unpacking is the mirror
scatter.  No per-item Python loop runs between ``start`` and ``wait``.

The original item-keyed-dict interface (``start({item: value})`` /
``wait() -> {item: value}``) is kept as a thin **deprecated** compatibility
wrapper that converts at the boundary and runs the same array core.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Union

import numpy as np

from repro.collectives.exchange import (
    PHASE_TAGS,
    CompiledExchange,
    CompiledPhase,
    ExchangeSpec,
    WorldExchange,
    compile_exchange,
    compile_world_exchange,
)
from repro.collectives import plan_cache
from repro.collectives.plan import CollectivePlan, Phase, Variant
from repro.simmpi.comm import SimComm
from repro.simmpi.engine import ExchangeEngine, WorldValues
from repro.simmpi.profiler import TrafficProfiler
from repro.simmpi.request import PersistentRecvRequest, PersistentSendRequest
from repro.utils.errors import CommunicationError, PlanError, ValidationError
from repro.utils.validation import check_value_preserving_cast

#: Tag offsets per phase so concurrent phases never match each other's traffic
#: (shared with the world engine's bulk accounting).
_PHASE_TAGS = PHASE_TAGS


def _gather_into(work: np.ndarray, indices: np.ndarray, out: np.ndarray) -> None:
    """Pack: one fancy-index gather from the work array into a send arena.

    Kept as a module-level seam so tests can shim it and count invocations —
    the count must scale with the number of phases, never with item count.
    """
    np.take(work, indices, axis=0, out=out)


def _scatter_from(work: np.ndarray, indices: np.ndarray, arena: np.ndarray) -> None:
    """Unpack: one fancy-index scatter from a receive arena into the work array."""
    work[indices] = arena


class _PhaseEndpoint:
    """One rank's sends and receives for one phase of a compiled plan.

    The send (receive) buffers of all messages of the phase live in one
    contiguous arena; each persistent request posts an arena *slice*, so the
    wire sees exactly the bytes the gather produced, with no per-message copy
    on the pack side.
    """

    def __init__(self, comm: SimComm, compiled: CompiledPhase, spec: ExchangeSpec):
        tag = _PHASE_TAGS[compiled.phase]
        self.phase = compiled.phase
        self._gather = compiled.gather
        self._scatter = compiled.scatter
        self.send_messages = compiled.send_messages
        self.recv_messages = compiled.recv_messages
        self.send_arena = np.empty((compiled.gather.size, spec.item_size),
                                   dtype=spec.dtype)
        self.recv_arena = np.empty((compiled.scatter.size, spec.item_size),
                                   dtype=spec.dtype)
        offsets = compiled.send_offsets
        self.send_requests: List[PersistentSendRequest] = [
            comm.send_init(self.send_arena[offsets[i]:offsets[i + 1]],
                           dest=message.dest, tag=tag)
            for i, message in enumerate(self.send_messages)
        ]
        offsets = compiled.recv_offsets
        self.recv_requests: List[PersistentRecvRequest] = [
            comm.recv_init(self.recv_arena[offsets[i]:offsets[i + 1]],
                           source=message.src, tag=tag)
            for i, message in enumerate(self.recv_messages)
        ]

    # -- per-iteration operations ---------------------------------------------

    def pack(self, work: np.ndarray) -> None:
        """Fill the send arena from the work array (single gather)."""
        if self._gather.size:
            _gather_into(work, self._gather, self.send_arena)

    def start(self) -> None:
        """Start all persistent requests of the phase (MPI_Startall)."""
        for request in self.recv_requests:
            request.start()
        for request in self.send_requests:
            request.start()

    def wait(self, work: np.ndarray) -> None:
        """Complete the phase and scatter received values into the work array."""
        for request in self.recv_requests:
            request.wait()
        for request in self.send_requests:
            request.wait()
        if self._scatter.size:
            _scatter_from(work, self._scatter, self.recv_arena)

    @property
    def n_messages(self) -> int:
        """Messages this rank sends in the phase."""
        return len(self.send_messages)


#: Caller-side value container: a dense array (canonical) or the deprecated
#: item-keyed mapping.
Values = Union[np.ndarray, Mapping[int, float]]


class PersistentNeighborCollective:
    """One rank's persistent handle for a planned neighborhood collective.

    The canonical interface is array-native: ``start`` takes a dense array of
    the rank's owned item values in ``owned_item_ids`` order (shape
    ``(n_owned,)``, or ``(n_owned, item_size)`` for vector-valued items) and
    ``wait`` returns the received values in ``recv_item_ids`` order.  Passing a
    ``{item id: value}`` mapping instead still works but converts at the
    boundary and is deprecated.
    """

    def __init__(self, comm: SimComm, plan: CollectivePlan, *,
                 dtype: np.dtype | type | str | None = None,
                 item_size: int | None = None,
                 duplicate_comm: bool = True):
        self.comm = comm.dup() if duplicate_comm else comm
        self.plan = plan
        self.rank = comm.rank
        self.variant = plan.variant
        if plan.pattern.n_ranks > comm.size:
            raise CommunicationError(
                "plan was built for more ranks than the communicator provides"
            )
        self.spec = ExchangeSpec(
            dtype=np.dtype(dtype) if dtype is not None else plan.pattern.dtype,
            item_size=int(item_size) if item_size is not None
            else plan.pattern.item_size,
        )
        self.compiled: CompiledExchange = compile_exchange(plan, self.rank, self.spec)
        self._phases = [_PhaseEndpoint(self.comm, phase, self.spec)
                        for phase in self.compiled.phases]
        self._phase_by_name = {endpoint.phase: endpoint for endpoint in self._phases}
        self._work = np.zeros((self.compiled.n_rows, self.spec.item_size),
                              dtype=self.spec.dtype)
        self._started = False
        self._dict_mode = False

    # -- array API: index metadata ---------------------------------------------

    @property
    def owned_item_ids(self) -> np.ndarray:
        """Item ids of the dense input, in input order (ascending)."""
        return self.compiled.owned_items

    @property
    def recv_item_ids(self) -> np.ndarray:
        """Item ids of the dense output of ``wait``, in output order (ascending)."""
        return self.compiled.result_items

    @property
    def recv_item_sources(self) -> np.ndarray:
        """Owning rank of every entry of ``recv_item_ids``."""
        return self.compiled.result_sources

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the exchange."""
        return self.spec.dtype

    @property
    def item_size(self) -> int:
        """Components per item."""
        return self.spec.item_size

    # -- persistent life-cycle ----------------------------------------------------

    def start(self, values: Values) -> None:
        """Begin one iteration of communication (MPI_Start).

        ``values`` holds the current values of the items this rank *owns*: a
        dense array in ``owned_item_ids`` order, or (deprecated) an item-keyed
        mapping.  Following Algorithm 5, the fully local phase and the initial
        redistribution are started immediately; the redistribution is completed
        inside ``start`` so the inter-region phase can begin.
        """
        if self._started:
            raise CommunicationError("collective started twice without wait")
        self._dict_mode = isinstance(values, Mapping)
        if self._dict_mode:
            values = self._array_from_mapping(values)
        self._load_owned(values)
        work = self._work
        if self.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
            direct = self._phase_by_name[Phase.DIRECT]
            direct.pack(work)
            direct.start()
        else:
            local = self._phase_by_name[Phase.LOCAL]
            setup = self._phase_by_name[Phase.SETUP_REDIST]
            global_phase = self._phase_by_name[Phase.GLOBAL]
            local.pack(work)
            local.start()
            setup.pack(work)
            setup.start()
            setup.wait(work)
            global_phase.pack(work)
            global_phase.start()
        self._started = True

    def wait(self) -> Union[np.ndarray, Dict[int, float]]:
        """Complete the iteration (MPI_Wait) and return received values.

        Returns the values of every item this rank receives in the pattern
        (plus items it sends to itself) in ``recv_item_ids`` order — as a dense
        array, or as an item-keyed dict when ``start`` was given a mapping.
        """
        if not self._started:
            raise CommunicationError("wait called before start")
        work = self._work
        if self.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
            self._phase_by_name[Phase.DIRECT].wait(work)
        else:
            local = self._phase_by_name[Phase.LOCAL]
            global_phase = self._phase_by_name[Phase.GLOBAL]
            final = self._phase_by_name[Phase.FINAL_REDIST]
            local.wait(work)
            global_phase.wait(work)
            final.pack(work)
            final.start()
            final.wait(work)
        self._started = False
        result = work[self.compiled.result_rows]
        if self.spec.item_size == 1:
            result = result.reshape(-1)
        if self._dict_mode:
            return self._mapping_from_array(result)
        return result

    def exchange(self, values: Values) -> Union[np.ndarray, Dict[int, float]]:
        """Convenience start-then-wait for a single iteration."""
        self.start(values)
        return self.wait()

    # -- deprecated dict boundary ---------------------------------------------------

    def _array_from_mapping(self, values: Mapping[int, float]) -> np.ndarray:
        """Convert an item-keyed mapping into the dense input array (deprecated path).

        One ``np.fromiter`` over the keys plus one ``searchsorted`` lookup —
        the boundary cost is O(n log n) array work, not a per-item Python loop.
        """
        wanted = self.compiled.owned_items
        ids = np.fromiter(values.keys(), dtype=np.int64, count=len(values))
        table = np.asarray(list(values.values()))
        self._check_input_dtype(table.dtype)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        positions = np.searchsorted(sorted_ids, wanted)
        found = positions < sorted_ids.size
        found[found] = sorted_ids[positions[found]] == wanted[found]
        if not found.all():
            missing = int(wanted[int(np.argmax(~found))])
            raise PlanError(
                f"rank {self.rank} holds no value for item {missing} needed by "
                "the exchange"
            )
        array = table[order[positions]].astype(self.spec.dtype, copy=False)
        if array.ndim == 1 and self.spec.item_size > 1:
            # Scalar values broadcast across the item row, as the per-item
            # assignment loop did.
            array = np.broadcast_to(array[:, None],
                                    (array.shape[0], self.spec.item_size))
        return np.ascontiguousarray(array).reshape(self.compiled.n_owned,
                                                   self.spec.item_size)

    def _mapping_from_array(self, result: np.ndarray) -> Dict[int, float]:
        """Convert the dense output back into an item-keyed dict (deprecated path).

        Built with one ``dict(zip(...))`` over ``ndarray.tolist()`` columns —
        C-level iteration, no per-item numpy scalar boxing.
        """
        items = self.compiled.result_items.tolist()
        if self.spec.item_size == 1:
            return dict(zip(items, result.tolist()))
        return dict(zip(items, np.ascontiguousarray(result)))

    def _check_input_dtype(self, dtype: np.dtype) -> None:
        """Reject value-corrupting input casts (same rule for array and dict input).

        Delegates to the rule shared with the world-stepped engine.
        """
        check_value_preserving_cast(dtype, self.spec.dtype)

    def _load_owned(self, values: np.ndarray) -> None:
        """Copy the caller's dense input into the owned rows of the work array."""
        n_owned = self.compiled.n_owned
        expected = (n_owned,) if self.spec.item_size == 1 else \
            (n_owned, self.spec.item_size)
        array = np.asarray(values)
        self._check_input_dtype(array.dtype)
        array = array.astype(self.spec.dtype, copy=False)
        if array.shape != expected and array.shape != (n_owned, self.spec.item_size):
            raise ValidationError(
                f"rank {self.rank} owns {n_owned} items of size {self.spec.item_size}; "
                f"values must have shape {expected}, got {array.shape}"
            )
        self._work[:n_owned] = array.reshape(n_owned, self.spec.item_size)

    # -- introspection ---------------------------------------------------------------

    def messages_per_iteration(self) -> int:
        """Number of messages this rank sends every iteration."""
        return sum(endpoint.n_messages for endpoint in self._phases)

    def describe(self) -> str:
        """Short human-readable summary."""
        return (f"rank {self.rank}: {self.variant.value} collective, "
                f"{self.messages_per_iteration()} messages/iteration, "
                f"{self.spec.item_size}x{self.spec.dtype.name} items")


class WorldNeighborCollective:
    """All ranks' persistent handles, fused into one world-stepped collective.

    Where :class:`PersistentNeighborCollective` is one rank's view of a plan
    (run one instance per simulated-rank thread), a world collective holds
    *every* rank's compiled gather/scatter arrays and executes a whole
    iteration for the whole communicator through the batched
    :class:`~repro.simmpi.engine.ExchangeEngine` — O(phases) numpy calls, no
    per-message envelopes, no threads.  Results are byte-identical to running
    the per-rank executor on the envelope-routed runtime, and an attached
    profiler sees identical data-path byte/message totals.

    ``exchange`` takes one dense array per rank (each in that rank's
    ``owned_item_ids`` order, or one flat concatenation in rank order) and
    returns one dense array per rank in ``recv_item_ids`` order.

    ``runtime`` / ``n_workers`` select and size the engine backend
    (``"engine"`` fused single-process, ``"procs"`` shared-memory worker
    pool) and ``on_failure`` the worker-failure policy (``"retry"`` /
    ``"fallback"`` / ``"raise"``) when the collective creates its own
    private engine; they cannot be combined with a shared ``engine``, which
    already fixed its runtime.  ``close`` (or using the collective as a
    context manager) releases a private engine's workers and shared
    segments deterministically — a shared engine is left to its owner.
    """

    def __init__(self, plan: CollectivePlan, *,
                 dtype: np.dtype | type | str | None = None,
                 item_size: int | None = None,
                 engine: ExchangeEngine | None = None,
                 profiler: TrafficProfiler | None = None,
                 runtime: str | None = None,
                 n_workers: int | None = None,
                 on_failure: str | None = None):
        if engine is not None and profiler is not None \
                and engine.profiler is not profiler:
            raise ValidationError(
                "pass either an engine (with its own profiler) or a profiler, "
                "not both"
            )
        if engine is not None and (runtime is not None or n_workers is not None
                                   or on_failure is not None):
            raise ValidationError(
                "a shared engine already fixed its runtime; pass runtime/"
                "n_workers/on_failure only when the collective creates its "
                "own engine"
            )
        self.plan = plan
        self.variant = plan.variant
        self.spec = ExchangeSpec(
            dtype=np.dtype(dtype) if dtype is not None else plan.pattern.dtype,
            item_size=int(item_size) if item_size is not None
            else plan.pattern.item_size,
        )
        # Planner-built plans carry a content token, so the compiled world
        # program can be served from (and feed) the plan/exchange cache; a
        # hit is byte-identical to the cold compile and registration never
        # mutates it, so one world may back many collectives/engines.
        world = plan_cache.fetch_world(plan, self.spec)
        if world is None:
            world = compile_world_exchange(plan, self.spec)
            plan_cache.store_world(plan, self.spec, world)
        self.world: WorldExchange = world
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else \
            ExchangeEngine(self.world.n_ranks, profiler=profiler,
                           runtime=runtime, n_workers=n_workers,
                           on_failure=on_failure)
        self._handle = self.engine.register(self.world)

    @property
    def handle(self) -> int:
        """This collective's registration handle on :attr:`engine`.

        The key the engine's per-round timing hook reports, so callers
        (e.g. the online autotuner) can attribute measured rounds back to
        the collective that ran.
        """
        return self._handle

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release the private engine's resources (no-op on a shared engine)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "WorldNeighborCollective":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- index metadata (per rank) --------------------------------------------

    @property
    def n_ranks(self) -> int:
        """Ranks of the communicator the collective spans."""
        return self.world.n_ranks

    def owned_item_ids(self, rank: int) -> np.ndarray:
        """Item ids of ``rank``'s dense input, in input order (ascending)."""
        return self.world.owned_item_ids(rank)

    def recv_item_ids(self, rank: int) -> np.ndarray:
        """Item ids of ``rank``'s dense output, in output order (ascending)."""
        return self.world.recv_item_ids(rank)

    def recv_item_sources(self, rank: int) -> np.ndarray:
        """Owning rank of every entry of ``recv_item_ids(rank)``."""
        return self.world.recv_item_sources(rank)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the exchange."""
        return self.spec.dtype

    @property
    def item_size(self) -> int:
        """Components per item."""
        return self.spec.item_size

    # -- execution -------------------------------------------------------------

    def exchange(self, values: WorldValues) -> List[np.ndarray]:
        """One full iteration for every rank (start + wait, world-stepped)."""
        return self.engine.run(self._handle, values)

    # -- introspection ----------------------------------------------------------

    def messages_per_iteration(self) -> int:
        """Messages the whole communicator sends every iteration."""
        return self.world.n_messages

    def describe(self) -> str:
        """Short human-readable summary."""
        return (f"world {self.variant.value} collective over "
                f"{self.world.n_ranks} ranks, "
                f"{self.messages_per_iteration()} messages/iteration, "
                f"{self.spec.item_size}x{self.spec.dtype.name} items")
