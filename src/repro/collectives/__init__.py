"""Persistent neighborhood collectives with locality-aware aggregation.

This package is the reproduction of the paper's core contribution:

* :mod:`repro.collectives.planner` — pure planners turning a communication
  pattern plus rank mapping into explicit message schedules for the standard
  (Section 3.1), partially optimized (Section 3.2, three-step aggregation) and
  fully optimized (Section 3.3, duplicate removal) variants;
* :mod:`repro.collectives.persistent` — a per-rank persistent handle that
  executes any plan on the simulated MPI runtime (init / start / wait);
* :mod:`repro.collectives.api` — the MPI-Advance-style entry points
  applications call;
* :mod:`repro.collectives.selection` — model-driven dynamic selection of the
  cheapest variant (the paper's future-work extension);
* :mod:`repro.collectives.autotune` — the *online* half of that future work:
  measured probe windows per level, empirical commits, and an auditable
  decision trace.
"""

from repro.collectives.plan import (
    Variant,
    Phase,
    Slot,
    SlotTable,
    PlannedMessage,
    CollectivePlan,
    AGGREGATED_PHASES,
    TERMINAL_PHASES,
)
from repro.collectives.aggregation import (
    BalanceStrategy,
    AggregationAssignment,
    setup_aggregation,
    collect_region_traffic,
)
from repro.collectives.dedup import (
    unique_payload_keys,
    unique_pairs_first_appearance,
    duplicate_item_count,
    dedup_savings_fraction,
    group_slots_by_final_dest,
)
from repro.collectives.planner import (
    plan_standard,
    plan_partial,
    plan_full,
    make_plan,
    all_plans,
)
from repro.collectives.exchange import (
    ExchangeSpec,
    CompiledExchange,
    CompiledPhase,
    WorldExchange,
    WorldPhaseProgram,
    compile_exchange,
    compile_world_exchange,
    compile_world_exchange_reference,
)
from repro.collectives.plan_cache import (
    PlanCacheWarning,
    clear_plan_cache,
    plan_cache_stats,
)
from repro.collectives.kernels import (
    HAVE_NUMBA,
    KERNELS_ENV,
    KernelBackend,
    active_backend,
    available_backends,
    select_backend,
)
from repro.collectives.persistent import (
    PersistentNeighborCollective,
    WorldNeighborCollective,
)
from repro.collectives.api import (
    CollectiveRequest,
    neighbor_alltoallv_init,
    neighbor_alltoallv_init_many,
    neighbor_alltoallv_init_world,
    neighbor_alltoallv,
    pack_alltoallv_buffers,
    unpack_alltoallv_buffers,
)
from repro.collectives.selection import SelectionResult, select_variant, best_per_pattern
from repro.collectives.autotune import (
    AUTO_VARIANT,
    DEFAULT_CANDIDATES,
    TRACE_SCHEMA_VERSION,
    AutoSimulation,
    DecisionEvent,
    DecisionTrace,
    FixedStepClock,
    OnlineSelector,
    is_auto_variant,
    simulate_modeled_auto,
)

__all__ = [
    "Variant",
    "Phase",
    "Slot",
    "SlotTable",
    "PlannedMessage",
    "CollectivePlan",
    "AGGREGATED_PHASES",
    "TERMINAL_PHASES",
    "BalanceStrategy",
    "AggregationAssignment",
    "setup_aggregation",
    "collect_region_traffic",
    "unique_payload_keys",
    "unique_pairs_first_appearance",
    "duplicate_item_count",
    "dedup_savings_fraction",
    "group_slots_by_final_dest",
    "plan_standard",
    "plan_partial",
    "plan_full",
    "make_plan",
    "all_plans",
    "ExchangeSpec",
    "CompiledExchange",
    "CompiledPhase",
    "WorldExchange",
    "WorldPhaseProgram",
    "compile_exchange",
    "compile_world_exchange",
    "compile_world_exchange_reference",
    "PlanCacheWarning",
    "clear_plan_cache",
    "plan_cache_stats",
    "HAVE_NUMBA",
    "KERNELS_ENV",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "select_backend",
    "PersistentNeighborCollective",
    "WorldNeighborCollective",
    "CollectiveRequest",
    "neighbor_alltoallv_init",
    "neighbor_alltoallv_init_many",
    "neighbor_alltoallv_init_world",
    "neighbor_alltoallv",
    "pack_alltoallv_buffers",
    "unpack_alltoallv_buffers",
    "SelectionResult",
    "select_variant",
    "best_per_pattern",
    "AUTO_VARIANT",
    "DEFAULT_CANDIDATES",
    "TRACE_SCHEMA_VERSION",
    "AutoSimulation",
    "DecisionEvent",
    "DecisionTrace",
    "FixedStepClock",
    "OnlineSelector",
    "is_auto_variant",
    "simulate_modeled_auto",
]
