"""Compiled, array-native execution form of a collective plan.

A :class:`CollectivePlan` describes *what* moves (slot tables and payload
keys); this module compiles one rank's share of a plan into *how* it moves on
dense numpy buffers.  The compiled form replaces the item-keyed-dict data
path: every value a rank ever holds during one exchange — its owned items plus
everything it receives in any phase — is assigned a row of a dense *work
array*, and every message gets a precomputed gather (pack) or scatter (unpack)
index into that array.  Per-iteration packing is then a single fancy-index per
phase (``arena = work[gather]``) and unpacking its mirror
(``work[scatter] = arena``), with no per-item Python loops anywhere on the
Start/Wait path.

Compilation itself is columnar too: it consumes each message's payload arrays
directly and resolves all keys of a schedule step with one lexsort-based
batch lookup, instead of walking slot objects through a Python dict one key at
a time.

The compilation is dtype-generic: an :class:`ExchangeSpec` carries the element
dtype and the number of components per item (``item_size`` — e.g. the
distribution set of a lattice-Boltzmann site, or the DOFs of a multi-component
unknown), and the work array has shape ``(n_rows, item_size)``.

Beyond the per-rank form, :func:`compile_world_exchange` concatenates every
rank's compiled exchange into one *world program*: a single work array spanning
all ranks (per-rank row blocks), and per phase one world gather, one wire
permutation, and one world scatter.  The
:class:`~repro.simmpi.engine.ExchangeEngine` executes that program with
O(phases) numpy calls for the whole communicator — no per-message envelopes,
no per-rank Python loop on the data path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.collectives.plan import (
    AGGREGATED_PHASES,
    CollectivePlan,
    Phase,
    PlannedMessage,
    Variant,
)
from repro.utils.arrays import (
    INDEX_DTYPE,
    concatenate_or_empty,
    counts_to_displs,
    gather_ranges,
    run_starts_mask,
)
from repro.utils.errors import PlanError, ValidationError
from repro.utils.validation import check_value_preserving_cast

#: Compile-time availability schedules, mirroring the *runtime* order of the
#: executor exactly: a ``("send", phase)`` step may only gather keys that are
#: owned or were registered by an earlier ``("recv", phase)`` step.  In the
#: aggregated protocol (Algorithms 5-6) the setup redistribution completes
#: inside ``start`` before the global phase packs, but the local and global
#: receives only land in ``wait`` — so the final redistribution is the only
#: phase allowed to forward what they delivered.
_DIRECT_SCHEDULE: Tuple[Tuple[str, Phase], ...] = (
    ("send", Phase.DIRECT), ("recv", Phase.DIRECT),
)
_AGGREGATED_SCHEDULE: Tuple[Tuple[str, Phase], ...] = (
    ("send", Phase.LOCAL),
    ("send", Phase.SETUP_REDIST),
    ("recv", Phase.SETUP_REDIST),
    ("send", Phase.GLOBAL),
    ("recv", Phase.LOCAL),
    ("recv", Phase.GLOBAL),
    ("send", Phase.FINAL_REDIST),
    ("recv", Phase.FINAL_REDIST),
)

#: Tag offsets per phase so concurrent phases never match each other's traffic.
#: Shared by the per-rank executor (request tags) and the world engine (bulk
#: traffic accounting), so both report identical per-tag profiler data.
PHASE_TAGS: Dict[Phase, int] = {
    Phase.DIRECT: 10,
    Phase.LOCAL: 11,
    Phase.SETUP_REDIST: 12,
    Phase.GLOBAL: 13,
    Phase.FINAL_REDIST: 14,
}


def check_input_dtype(spec: ExchangeSpec, dtype: np.dtype) -> None:
    """Reject value-corrupting input casts into an exchange of ``spec``.

    Thin spec-flavoured wrapper over
    :func:`repro.utils.validation.check_value_preserving_cast`, the rule the
    per-rank executor and the world engine share.
    """
    check_value_preserving_cast(dtype, spec.dtype)


@dataclass(frozen=True)
class ExchangeSpec:
    """Element type of an exchange: dtype plus components per item."""

    dtype: np.dtype = np.dtype(np.float64)
    item_size: int = 1

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(self, "item_size", int(self.item_size))
        if self.item_size < 1:
            raise ValidationError(f"item_size must be >= 1, got {self.item_size}")

    @property
    def item_bytes(self) -> int:
        """Bytes of one item (all components)."""
        return self.item_size * self.dtype.itemsize


@dataclass
class CompiledPhase:
    """One rank's compiled sends and receives for one phase.

    ``gather`` concatenates the work-array rows of every send message's payload
    in message order; message ``i`` packs rows
    ``gather[send_offsets[i]:send_offsets[i + 1]]`` and its wire buffer is the
    matching slice of the phase's contiguous send arena.  ``scatter`` is the
    mirror image for receives.
    """

    phase: Phase
    send_messages: List[PlannedMessage]
    recv_messages: List[PlannedMessage]
    gather: np.ndarray
    scatter: np.ndarray
    send_offsets: np.ndarray
    recv_offsets: np.ndarray


@dataclass
class CompiledExchange:
    """One rank's complete compiled exchange.

    ``owned_items`` fixes the caller-side input order: element ``i`` of the
    dense input array is the value of item ``owned_items[i]`` (rows
    ``[0, owned_items.size)`` of the work array).  ``result_rows`` gathers the
    output: item ``result_items[i]`` (sent by ``result_sources[i]``) is row
    ``result_rows[i]``.
    """

    rank: int
    variant: Variant
    spec: ExchangeSpec
    n_rows: int
    owned_items: np.ndarray
    result_items: np.ndarray
    result_sources: np.ndarray
    result_rows: np.ndarray
    phases: List[CompiledPhase] = field(default_factory=list)

    @property
    def n_owned(self) -> int:
        """Items the caller supplies per iteration."""
        return int(self.owned_items.size)

    @property
    def n_result(self) -> int:
        """Items handed back to the caller per iteration."""
        return int(self.result_items.size)


class _RowMap:
    """Vectorized ``(origin, item) -> work-array row`` mapping.

    Rows are assigned in registration order: the owned keys occupy rows
    ``[0, n_owned)`` and every batch of newly received keys appends rows in
    first-appearance order — exactly the order the per-key dict of the
    slot-list compiler produced.
    """

    def __init__(self, origins: np.ndarray, items: np.ndarray):
        self._origin_chunks = [np.asarray(origins, dtype=INDEX_DTYPE)]
        self._item_chunks = [np.asarray(items, dtype=INDEX_DTYPE)]
        self.n_rows = int(self._origin_chunks[0].size)

    def _known(self) -> Tuple[np.ndarray, np.ndarray]:
        if len(self._origin_chunks) > 1:
            self._origin_chunks = [np.concatenate(self._origin_chunks)]
            self._item_chunks = [np.concatenate(self._item_chunks)]
        return self._origin_chunks[0], self._item_chunks[0]

    def resolve(self, query_origins: np.ndarray, query_items: np.ndarray, *,
                allow_new: bool) -> np.ndarray:
        """Rows of the queried keys; unknown keys are registered or marked -1.

        One lexsort over (known keys + queries) recovers the key groups; known
        keys seed each group with their row, queries inherit it.  With
        ``allow_new`` the unmatched groups get fresh rows in first-appearance
        order of the query batch.
        """
        if query_origins.size == 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        known_origins, known_items = self._known()
        n_known = known_origins.size
        all_origins = np.concatenate([known_origins, query_origins])
        all_items = np.concatenate([known_items, query_items])
        order = np.lexsort((all_items, all_origins))
        new_group = run_starts_mask(all_origins[order], all_items[order])
        group_sorted = np.cumsum(new_group) - 1
        group_of = np.empty(order.size, dtype=INDEX_DTYPE)
        group_of[order] = group_sorted
        row_of_group = np.full(int(group_sorted[-1]) + 1, -1, dtype=INDEX_DTYPE)
        row_of_group[group_of[:n_known]] = np.arange(n_known, dtype=INDEX_DTYPE)

        query_groups = group_of[n_known:]
        rows = row_of_group[query_groups]
        unknown = rows < 0
        if not unknown.any() or not allow_new:
            return rows
        missing_groups = query_groups[unknown]
        unique_groups, first_position = np.unique(missing_groups,
                                                  return_index=True)
        appearance = np.argsort(first_position, kind="stable")
        row_of_group[unique_groups[appearance]] = self.n_rows + np.arange(
            unique_groups.size, dtype=INDEX_DTYPE)
        rows[unknown] = row_of_group[missing_groups]
        # Register the new keys in row order so later lookups resolve them.
        unknown_positions = np.flatnonzero(unknown)
        firsts = unknown_positions[first_position[appearance]]
        self._origin_chunks.append(np.asarray(query_origins[firsts],
                                              dtype=INDEX_DTYPE))
        self._item_chunks.append(np.asarray(query_items[firsts],
                                            dtype=INDEX_DTYPE))
        self.n_rows += int(unique_groups.size)
        return rows


def _payload_columns(messages: Sequence[PlannedMessage]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated payload key columns and per-message offsets of a step."""
    if not messages:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, empty, np.zeros(1, dtype=INDEX_DTYPE)
    counts = np.fromiter((m.payload_origins.size for m in messages),
                         dtype=INDEX_DTYPE, count=len(messages))
    origins = np.concatenate([m.payload_origins for m in messages])
    items = np.concatenate([m.payload_items for m in messages])
    return origins, items, counts_to_displs(counts)


def compile_exchange(plan: CollectivePlan, rank: int,
                     spec: ExchangeSpec | None = None) -> CompiledExchange:
    """Compile ``rank``'s share of ``plan`` into gather/scatter index arrays.

    The compilation walks the phases in execution order, resolving every send
    against the keys the rank holds so far (owned items first, then whatever
    earlier phases delivered); a send of an unobtainable key is a
    :class:`PlanError` at compile time rather than a runtime failure.
    """
    spec = spec or ExchangeSpec()
    pattern = plan.pattern

    # Rows [0, n_owned) are the rank's owned items in ascending-id order; that
    # order is the array API's input convention.
    send_map = pattern.send_map(rank)
    if send_map:
        owned_ids = np.unique(np.concatenate(list(send_map.values())))
    else:
        owned_ids = np.empty(0, dtype=INDEX_DTYPE)
    rows = _RowMap(np.full(owned_ids.size, rank, dtype=INDEX_DTYPE), owned_ids)

    if plan.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        order, schedule = (Phase.DIRECT,), _DIRECT_SCHEDULE
    else:
        order, schedule = AGGREGATED_PHASES, _AGGREGATED_SCHEDULE
    gathers: Dict[Phase, Tuple[np.ndarray, np.ndarray]] = {}
    scatters: Dict[Phase, Tuple[np.ndarray, np.ndarray]] = {}
    send_lists: Dict[Phase, List[PlannedMessage]] = {}
    recv_lists: Dict[Phase, List[PlannedMessage]] = {}
    for side, phase in schedule:
        if side == "send":
            messages = plan.messages_from(rank, phase)
            origins, items, offsets = _payload_columns(messages)
            indices = rows.resolve(origins, items, allow_new=False)
            unknown = indices < 0
            if unknown.any():
                position = int(np.argmax(unknown))
                message = messages[int(np.searchsorted(offsets, position,
                                                       side="right")) - 1]
                raise PlanError(
                    f"phase-{phase.value} message {message.src}->"
                    f"{message.dest} packs origin {int(origins[position])}, item "
                    f"{int(items[position])} which the "
                    "sending rank neither owns nor received in an earlier phase"
                )
            send_lists[phase] = messages
            gathers[phase] = (indices, offsets)
        else:
            messages = plan.messages_to(rank, phase)
            origins, items, offsets = _payload_columns(messages)
            indices = rows.resolve(origins, items, allow_new=True)
            recv_lists[phase] = messages
            scatters[phase] = (indices, offsets)
    phases: List[CompiledPhase] = []
    for phase in order:
        gather, send_offsets = gathers[phase]
        scatter, recv_offsets = scatters[phase]
        phases.append(CompiledPhase(
            phase=phase,
            send_messages=send_lists[phase],
            recv_messages=recv_lists[phase],
            gather=np.ascontiguousarray(gather, dtype=INDEX_DTYPE),
            scatter=np.ascontiguousarray(scatter, dtype=INDEX_DTYPE),
            send_offsets=np.ascontiguousarray(send_offsets, dtype=INDEX_DTYPE),
            recv_offsets=np.ascontiguousarray(recv_offsets, dtype=INDEX_DTYPE),
        ))

    # Output view: every item the pattern says this rank receives (including
    # self-sends) must have a row by now — either owned, or delivered by some
    # phase, or a self-delivery of the aggregation (the receive leader is the
    # final destination, so the key arrived with the global phase).
    recv_map = pattern.recv_map(rank)
    if recv_map:
        sources = np.concatenate([
            np.full(items.size, src, dtype=INDEX_DTYPE)
            for src, items in recv_map.items()
        ])
        received = np.concatenate(list(recv_map.values()))
        # When several sources declare the same item the last declaration
        # wins, matching the dict-accumulation order of the seed compiler.
        result_items, reversed_first = np.unique(received[::-1],
                                                 return_index=True)
        last_occurrence = received.size - 1 - reversed_first
        result_sources = sources[last_occurrence]
    else:
        result_items = np.empty(0, dtype=INDEX_DTYPE)
        result_sources = np.empty(0, dtype=INDEX_DTYPE)
    result_rows = rows.resolve(result_sources, result_items, allow_new=False)
    undelivered = result_rows < 0
    if undelivered.any():
        position = int(np.argmax(undelivered))
        raise PlanError(
            f"rank {rank} expects item {int(result_items[position])} from rank "
            f"{int(result_sources[position])} but no phase of "
            "the plan delivers it"
        )

    return CompiledExchange(
        rank=rank,
        variant=plan.variant,
        spec=spec,
        n_rows=rows.n_rows,
        owned_items=np.ascontiguousarray(owned_ids, dtype=INDEX_DTYPE),
        result_items=np.ascontiguousarray(result_items, dtype=INDEX_DTYPE),
        result_sources=np.ascontiguousarray(result_sources, dtype=INDEX_DTYPE),
        result_rows=np.ascontiguousarray(result_rows, dtype=INDEX_DTYPE),
        phases=phases,
    )


# -- world-level compilation -----------------------------------------------------


@dataclass
class WorldPhaseProgram:
    """All ranks' sends and receives of one phase, as three index arrays.

    Executing the phase against the world work array is exactly

    ``wire = work[gather]`` (every rank's send arenas, concatenated in rank
    order) followed by ``work[scatter] = wire[wire_perm]`` (every rank's
    receive arenas, reordered from wire/send order into receive order).

    ``msg_sources`` / ``msg_dests`` / ``msg_nbytes`` describe every message of
    the phase in wire order; the engine hands them to the profiler as one bulk
    record per iteration, preserving the per-envelope byte/message accounting
    without creating an envelope per message.

    Both ``gather`` and ``scatter`` concatenate the per-rank index arrays in
    rank order; ``gather_rank_offsets`` / ``scatter_rank_offsets`` (each
    ``n_ranks + 1`` entries) delimit rank ``r``'s segment.  Because a rank's
    gather and scatter indices only ever address its own row block, any
    contiguous range of ranks owns a contiguous, disjoint slice of each array
    — the property the shared-memory procs runtime uses to carve the phase
    into per-worker slabs (the wire is laid out in gather order, so a worker's
    wire segment shares the gather offsets).
    """

    phase: Phase
    tag: int
    gather: np.ndarray
    scatter: np.ndarray
    wire_perm: np.ndarray
    msg_sources: np.ndarray
    msg_dests: np.ndarray
    msg_nbytes: np.ndarray
    gather_rank_offsets: np.ndarray
    scatter_rank_offsets: np.ndarray


@dataclass
class WorldExchange:
    """Every rank's compiled exchange, concatenated into one world program.

    Rank ``r``'s work-array rows live in the world block
    ``[rank_bases[r], rank_bases[r] + compiled[r].n_rows)``.  ``owned_rows``
    and ``result_rows`` are world-row index arrays for loading all ranks'
    dense inputs and gathering all ranks' dense outputs with one fancy index
    each; ``owned_offsets`` / ``result_offsets`` delimit each rank's slice of
    those concatenations.  ``steps`` is the runtime schedule: ``("send", p)``
    packs phase ``p``'s wire, ``("recv", p)`` delivers it — the same order the
    per-rank executor interleaves its ``pack``/``start``/``wait`` calls.

    The per-rank item metadata is stored columnar: ``owned_items_all`` /
    ``result_items_all`` / ``result_sources_all`` concatenate every rank's
    owned-input and result-output id columns, delimited by ``owned_offsets``
    and ``result_offsets`` — the accessors below slice them.  ``compiled``
    (the per-rank :class:`CompiledExchange` list) is only populated by the
    pinned reference compiler; the world-level pass never materialises it,
    which also keeps a :class:`WorldExchange` free of plan-object references
    and therefore cheap to pickle for the on-disk plan cache.
    """

    variant: Variant
    spec: ExchangeSpec
    n_ranks: int
    n_world_rows: int
    rank_bases: np.ndarray
    owned_rows: np.ndarray
    owned_offsets: np.ndarray
    result_rows: np.ndarray
    result_offsets: np.ndarray
    steps: Tuple[Tuple[str, Phase], ...]
    programs: Dict[Phase, WorldPhaseProgram]
    owned_items_all: np.ndarray
    result_items_all: np.ndarray
    result_sources_all: np.ndarray
    compiled: List[CompiledExchange] | None = None

    @property
    def n_messages(self) -> int:
        """Messages of one iteration across all ranks and phases."""
        return sum(int(p.msg_sources.size) for p in self.programs.values())

    def owned_item_ids(self, rank: int) -> np.ndarray:
        """Item ids of ``rank``'s dense input, in input order (ascending)."""
        return self.owned_items_all[
            self.owned_offsets[rank]:self.owned_offsets[rank + 1]]

    def recv_item_ids(self, rank: int) -> np.ndarray:
        """Item ids of ``rank``'s dense output, in output order (ascending)."""
        return self.result_items_all[
            self.result_offsets[rank]:self.result_offsets[rank + 1]]

    def recv_item_sources(self, rank: int) -> np.ndarray:
        """Owning rank of every entry of ``recv_item_ids(rank)``."""
        return self.result_sources_all[
            self.result_offsets[rank]:self.result_offsets[rank + 1]]


def compile_world_exchange_reference(plan: CollectivePlan,
                                     spec: ExchangeSpec | None = None
                                     ) -> WorldExchange:
    """Compile all ranks' shares of ``plan`` into one batched world program.

    Pinned per-rank reference per the repo's golden-equivalence convention:
    every rank is compiled with :func:`compile_exchange` (so the world program
    is the per-rank programs, verbatim, re-based into one row space), then each
    phase's messages are matched sender-to-receiver: the ``k``-th send from
    ``src`` to ``dest`` in ``src``'s message order pairs with the ``k``-th
    receive from ``src`` in ``dest``'s order — the same FIFO matching the
    mailbox fabric performs — and the pairing becomes the phase's static
    ``wire_perm``.  ``spec`` defaults to the pattern's dtype/item_size.

    This walks a Python loop over ranks (and scans the phase message lists
    once per rank), which is O(ranks × messages); the production
    :func:`compile_world_exchange` emits identical arrays with one world-level
    pass and is what every caller should use.
    """
    if spec is None:
        spec = ExchangeSpec(dtype=plan.pattern.dtype,
                            item_size=plan.pattern.item_size)
    n_ranks = plan.pattern.n_ranks
    compiled = [compile_exchange(plan, rank, spec) for rank in range(n_ranks)]

    rank_bases = counts_to_displs(np.fromiter((c.n_rows for c in compiled),
                                              dtype=INDEX_DTYPE, count=n_ranks))
    owned_rows = np.concatenate([
        rank_bases[rank] + np.arange(c.n_owned, dtype=INDEX_DTYPE)
        for rank, c in enumerate(compiled)
    ]) if n_ranks else np.empty(0, dtype=INDEX_DTYPE)
    owned_offsets = counts_to_displs(np.fromiter(
        (c.n_owned for c in compiled), dtype=INDEX_DTYPE, count=n_ranks))
    result_rows = np.concatenate([
        rank_bases[rank] + c.result_rows for rank, c in enumerate(compiled)
    ]) if n_ranks else np.empty(0, dtype=INDEX_DTYPE)
    result_offsets = counts_to_displs(np.fromiter(
        (c.n_result for c in compiled), dtype=INDEX_DTYPE, count=n_ranks))

    if plan.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        order, schedule = (Phase.DIRECT,), _DIRECT_SCHEDULE
    else:
        order, schedule = AGGREGATED_PHASES, _AGGREGATED_SCHEDULE

    programs: Dict[Phase, WorldPhaseProgram] = {}
    for index, phase in enumerate(order):
        gather_parts: List[np.ndarray] = []
        scatter_parts: List[np.ndarray] = []
        sources: List[int] = []
        dests: List[int] = []
        counts: List[int] = []
        # Wire layout: rank by rank, message by message, in send order.  The
        # dict maps each message (by identity — every PlannedMessage appears in
        # exactly one sender's and one receiver's list) to its wire slice.
        wire_slices: Dict[int, Tuple[int, int]] = {}
        offset = 0
        for rank, world in enumerate(compiled):
            cp = world.phases[index]
            gather_parts.append(rank_bases[rank] + cp.gather)
            send_offsets = cp.send_offsets
            for i, message in enumerate(cp.send_messages):
                start = offset + int(send_offsets[i])
                stop = offset + int(send_offsets[i + 1])
                wire_slices[id(message)] = (start, stop)
                sources.append(message.src)
                dests.append(message.dest)
                counts.append(stop - start)
            offset += int(cp.gather.size)
        perm_parts: List[np.ndarray] = []
        for rank, world in enumerate(compiled):
            cp = world.phases[index]
            scatter_parts.append(rank_bases[rank] + cp.scatter)
            recv_offsets = cp.recv_offsets
            for i, message in enumerate(cp.recv_messages):
                start, stop = wire_slices[id(message)]
                expected = int(recv_offsets[i + 1] - recv_offsets[i])
                if stop - start != expected:
                    raise PlanError(
                        f"phase-{phase.value} message {message.src}->"
                        f"{message.dest} packs {stop - start} items but the "
                        f"receiver unpacks {expected}"
                    )
                perm_parts.append(np.arange(start, stop, dtype=INDEX_DTYPE))
        gather = concatenate_or_empty(gather_parts)
        scatter = concatenate_or_empty(scatter_parts)
        wire_perm = concatenate_or_empty(perm_parts)
        if wire_perm.size != scatter.size:
            raise PlanError(
                f"phase-{phase.value} wire permutation covers {wire_perm.size} "
                f"items but the world scatter expects {scatter.size}"
            )
        programs[phase] = WorldPhaseProgram(
            phase=phase,
            tag=PHASE_TAGS[phase],
            gather=gather,
            scatter=scatter,
            wire_perm=wire_perm,
            msg_sources=np.asarray(sources, dtype=INDEX_DTYPE),
            msg_dests=np.asarray(dests, dtype=INDEX_DTYPE),
            msg_nbytes=np.asarray(counts, dtype=INDEX_DTYPE) * spec.item_bytes,
            gather_rank_offsets=counts_to_displs(np.fromiter(
                (c.phases[index].gather.size for c in compiled),
                dtype=INDEX_DTYPE, count=n_ranks)),
            scatter_rank_offsets=counts_to_displs(np.fromiter(
                (c.phases[index].scatter.size for c in compiled),
                dtype=INDEX_DTYPE, count=n_ranks)),
        )

    return WorldExchange(
        variant=plan.variant,
        spec=spec,
        n_ranks=n_ranks,
        n_world_rows=int(rank_bases[-1]),
        rank_bases=rank_bases,
        owned_rows=owned_rows,
        owned_offsets=owned_offsets,
        result_rows=result_rows,
        result_offsets=result_offsets,
        steps=schedule,
        programs=programs,
        owned_items_all=concatenate_or_empty(
            [c.owned_items for c in compiled]),
        result_items_all=concatenate_or_empty(
            [c.result_items for c in compiled]),
        result_sources_all=concatenate_or_empty(
            [c.result_sources for c in compiled]),
        compiled=compiled,
    )


def _phase_message_columns(messages: Sequence[PlannedMessage]):
    """Columnar form of one phase's message list (one O(messages) pass).

    Returns ``(srcs, dests, counts, offsets, pay_origins, pay_items,
    send_order, recv_order)``: endpoint/count columns in plan list order, the
    concatenated payload key columns, and the stable message permutations that
    sort the list by sender (the wire layout) and by receiver (the scatter
    layout).  Stability is what preserves each rank's per-message order, so
    sender-side position ``k`` still pairs with receiver-side position ``k``
    of the same ``(src, dest)`` stream — the FIFO matching of the fabric.
    """
    n = len(messages)
    srcs = np.fromiter((m.src for m in messages), dtype=INDEX_DTYPE, count=n)
    dests = np.fromiter((m.dest for m in messages), dtype=INDEX_DTYPE, count=n)
    counts = np.fromiter((m.payload_origins.size for m in messages),
                         dtype=INDEX_DTYPE, count=n)
    offsets = counts_to_displs(counts)
    pay_origins = concatenate_or_empty([m.payload_origins for m in messages])
    pay_items = concatenate_or_empty([m.payload_items for m in messages])
    send_order = np.argsort(srcs, kind="stable")
    recv_order = np.argsort(dests, kind="stable")
    return (srcs, dests, counts, offsets, pay_origins, pay_items,
            send_order, recv_order)


def compile_world_exchange(plan: CollectivePlan,
                           spec: ExchangeSpec | None = None) -> WorldExchange:
    """Compile all ranks' shares of ``plan`` in one world-level pass.

    Emits arrays byte-identical to
    :func:`compile_world_exchange_reference` (the pinned per-rank compiler)
    without ever instantiating a per-rank :class:`CompiledExchange`: instead
    of resolving each rank's keys through its own :class:`_RowMap`, the pass
    replays *every* rank's registration chronology at once.

    The world row space is derived from one *registration stream*: segment 0
    holds all ranks' owned keys ``(holder, holder, item)`` in (holder, item)
    order, and each ``("recv", phase)`` schedule step appends the phase's
    payload keys in (receiver, message, position) order.  Deduplicating the
    stream by ``(holder, origin, item)`` with a stable lexsort keeps exactly
    the first occurrence of every key — the moment the per-rank ``_RowMap``
    would have registered it — so numbering the surviving keys by
    ``(holder, first occurrence)`` reproduces every rank's row assignment,
    pre-based into the world row space.  Sends (and the result view) then
    resolve against that key table with one batched lexsort join; a send may
    only use keys whose first occurrence lies in an earlier schedule step,
    which reproduces the per-rank compiler's availability errors.
    """
    if spec is None:
        spec = ExchangeSpec(dtype=plan.pattern.dtype,
                            item_size=plan.pattern.item_size)
    pattern = plan.pattern
    n_ranks = pattern.n_ranks

    if plan.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        order, schedule = (Phase.DIRECT,), _DIRECT_SCHEDULE
    else:
        order, schedule = AGGREGATED_PHASES, _AGGREGATED_SCHEDULE
    phase_cols = {phase: _phase_message_columns(plan.phases.get(phase, []))
                  for phase in order}

    # -- owned keys: unique (origin, item) pairs of the send side ------------
    edge_origins, edge_dests, edge_items = pattern.edge_arrays()
    if edge_items.size:
        owned_sort = np.lexsort((edge_items, edge_origins))
        o_sorted = edge_origins[owned_sort]
        i_sorted = edge_items[owned_sort]
        keep = run_starts_mask(o_sorted, i_sorted)
        owned_holders = np.ascontiguousarray(o_sorted[keep])
        owned_items_all = np.ascontiguousarray(i_sorted[keep])
    else:
        owned_holders = np.empty(0, dtype=INDEX_DTYPE)
        owned_items_all = np.empty(0, dtype=INDEX_DTYPE)
    owned_offsets = counts_to_displs(
        np.bincount(owned_holders, minlength=n_ranks).astype(INDEX_DTYPE))

    # -- registration stream: owned keys, then each recv step's payloads ----
    seg_holders: List[np.ndarray] = [owned_holders]
    seg_origins: List[np.ndarray] = [owned_holders]
    seg_items: List[np.ndarray] = [owned_items_all]
    recv_segment: Dict[Phase, int] = {}
    for side, phase in schedule:
        if side != "recv":
            continue
        _, dests, counts, offsets, pay_o, pay_i, _, recv_order = \
            phase_cols[phase]
        starts, lens = offsets[recv_order], counts[recv_order]
        seg_holders.append(np.repeat(dests[recv_order], lens))
        seg_origins.append(gather_ranges(pay_o, starts, lens))
        seg_items.append(gather_ranges(pay_i, starts, lens))
        recv_segment[phase] = len(seg_holders) - 1
    seg_sizes = np.fromiter((h.size for h in seg_holders), dtype=INDEX_DTYPE,
                            count=len(seg_holders))
    seg_bounds = counts_to_displs(seg_sizes)
    stream_holder = concatenate_or_empty(seg_holders)
    stream_origin = concatenate_or_empty(seg_origins)
    stream_item = concatenate_or_empty(seg_items)
    stream_step = np.repeat(np.arange(seg_sizes.size, dtype=INDEX_DTYPE),
                            seg_sizes)

    # -- world rows: first occurrence per (holder, origin, item) ------------
    key_sort = np.lexsort((stream_item, stream_origin, stream_holder))
    h_s = stream_holder[key_sort]
    o_s = stream_origin[key_sort]
    i_s = stream_item[key_sort]
    starts_mask = run_starts_mask(h_s, o_s, i_s)
    group_sorted = np.cumsum(starts_mask) - 1
    group_of = np.empty(key_sort.size, dtype=INDEX_DTYPE)
    group_of[key_sort] = group_sorted
    # The lexsort is stable, so the first row of each run is the smallest
    # stream position — the registration moment of that key.
    first_pos = key_sort[starts_mask]
    key_holder = h_s[starts_mask]
    key_origin = o_s[starts_mask]
    key_item = i_s[starts_mask]
    key_step = stream_step[first_pos]
    n_keys = int(key_holder.size)
    row_sort = np.lexsort((first_pos, key_holder))
    key_row = np.empty(n_keys, dtype=INDEX_DTYPE)
    key_row[row_sort] = np.arange(n_keys, dtype=INDEX_DTYPE)
    stream_row = key_row[group_of] if n_keys else \
        np.empty(0, dtype=INDEX_DTYPE)
    rank_bases = counts_to_displs(
        np.bincount(key_holder, minlength=n_ranks).astype(INDEX_DTYPE))
    owned_rows = np.ascontiguousarray(stream_row[:seg_bounds[1]])

    # -- result view: per receiver, last-declaring source wins per item -----
    if edge_items.size:
        entry_sort = np.lexsort((edge_origins, edge_dests))
        d_e = edge_dests[entry_sort]
        s_e = edge_origins[entry_sort]
        i_e = edge_items[entry_sort]
        last_sort = np.lexsort((i_e, d_e))
        d_l, i_l = d_e[last_sort], i_e[last_sort]
        run_start = run_starts_mask(d_l, i_l)
        starts_idx = np.flatnonzero(run_start)
        ends_idx = np.append(starts_idx[1:], d_l.size) - 1
        result_holders = np.ascontiguousarray(d_l[starts_idx])
        result_items_all = np.ascontiguousarray(i_l[starts_idx])
        result_sources_all = np.ascontiguousarray(s_e[last_sort][ends_idx])
    else:
        result_holders = np.empty(0, dtype=INDEX_DTYPE)
        result_items_all = np.empty(0, dtype=INDEX_DTYPE)
        result_sources_all = np.empty(0, dtype=INDEX_DTYPE)
    result_offsets = counts_to_displs(
        np.bincount(result_holders, minlength=n_ranks).astype(INDEX_DTYPE))

    # -- batched key resolution: all send steps plus the result view --------
    send_steps: List[Tuple[Phase, int]] = []
    query_parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    recvs_before = 0
    for side, phase in schedule:
        if side == "recv":
            recvs_before += 1
            continue
        srcs, _, counts, offsets, pay_o, pay_i, send_order, _ = \
            phase_cols[phase]
        starts, lens = offsets[send_order], counts[send_order]
        query_parts.append((np.repeat(srcs[send_order], lens),
                            gather_ranges(pay_o, starts, lens),
                            gather_ranges(pay_i, starts, lens)))
        send_steps.append((phase, recvs_before))
    query_parts.append((result_holders, result_sources_all, result_items_all))
    q_holder = concatenate_or_empty([p[0] for p in query_parts])
    q_origin = concatenate_or_empty([p[1] for p in query_parts])
    q_item = concatenate_or_empty([p[2] for p in query_parts])
    q_bounds = counts_to_displs(np.fromiter(
        (p[0].size for p in query_parts), dtype=INDEX_DTYPE,
        count=len(query_parts)))

    all_h = np.concatenate([key_holder, q_holder])
    all_o = np.concatenate([key_origin, q_origin])
    all_i = np.concatenate([key_item, q_item])
    join_sort = np.lexsort((all_i, all_o, all_h))
    join_starts = run_starts_mask(all_h[join_sort], all_o[join_sort],
                                  all_i[join_sort])
    jgroup_sorted = np.cumsum(join_starts) - 1
    jgroup = np.empty(join_sort.size, dtype=INDEX_DTYPE)
    jgroup[join_sort] = jgroup_sorted
    n_jgroups = int(jgroup_sorted[-1]) + 1 if join_sort.size else 0
    row_of_jgroup = np.full(n_jgroups, -1, dtype=INDEX_DTYPE)
    step_of_jgroup = np.full(n_jgroups, np.iinfo(INDEX_DTYPE).max,
                             dtype=INDEX_DTYPE)
    row_of_jgroup[jgroup[:n_keys]] = key_row
    step_of_jgroup[jgroup[:n_keys]] = key_step
    q_rows = row_of_jgroup[jgroup[n_keys:]]
    q_steps = step_of_jgroup[jgroup[n_keys:]]

    # -- availability errors, reproducing the per-rank compiler's checks ----
    for index, (phase, allowed) in enumerate(send_steps):
        lo, hi = int(q_bounds[index]), int(q_bounds[index + 1])
        bad = (q_rows[lo:hi] < 0) | (q_steps[lo:hi] > allowed)
        if bad.any():
            position = int(np.argmax(bad))
            _, _, counts, _, _, _, send_order, _ = phase_cols[phase]
            messages = plan.phases.get(phase, [])
            send_displs = counts_to_displs(counts[send_order])
            slot = int(np.searchsorted(send_displs, position,
                                       side="right")) - 1
            message = messages[int(send_order[slot])]
            raise PlanError(
                f"phase-{phase.value} message {message.src}->"
                f"{message.dest} packs origin "
                f"{int(q_origin[lo + position])}, item "
                f"{int(q_item[lo + position])} which the "
                "sending rank neither owns nor received in an earlier phase"
            )
    lo = int(q_bounds[-2])
    result_rows = np.ascontiguousarray(q_rows[lo:])
    undelivered = result_rows < 0
    if undelivered.any():
        position = int(np.argmax(undelivered))
        raise PlanError(
            f"rank {int(result_holders[position])} expects item "
            f"{int(result_items_all[position])} from rank "
            f"{int(result_sources_all[position])} but no phase of "
            "the plan delivers it"
        )

    # -- per-phase programs --------------------------------------------------
    programs: Dict[Phase, WorldPhaseProgram] = {}
    for index, (phase, _) in enumerate(send_steps):
        srcs, dests, counts, _, _, _, send_order, recv_order = \
            phase_cols[phase]
        gather = np.ascontiguousarray(
            q_rows[q_bounds[index]:q_bounds[index + 1]])
        segment = recv_segment[phase]
        scatter = np.ascontiguousarray(
            stream_row[seg_bounds[segment]:seg_bounds[segment + 1]])
        counts_send = counts[send_order]
        wire_displs = counts_to_displs(counts_send)
        wire_start_of_msg = np.empty(counts.size, dtype=INDEX_DTYPE)
        wire_start_of_msg[send_order] = wire_displs[:-1]
        counts_recv = counts[recv_order]
        recv_displs = counts_to_displs(counts_recv)
        total = int(recv_displs[-1])
        wire_perm = (np.arange(total, dtype=INDEX_DTYPE)
                     - np.repeat(recv_displs[:-1], counts_recv)
                     + np.repeat(wire_start_of_msg[recv_order], counts_recv))
        if wire_perm.size != scatter.size:
            raise PlanError(
                f"phase-{phase.value} wire permutation covers {wire_perm.size} "
                f"items but the world scatter expects {scatter.size}"
            )
        programs[phase] = WorldPhaseProgram(
            phase=phase,
            tag=PHASE_TAGS[phase],
            gather=gather,
            scatter=scatter,
            wire_perm=wire_perm,
            msg_sources=np.ascontiguousarray(srcs[send_order]),
            msg_dests=np.ascontiguousarray(dests[send_order]),
            msg_nbytes=np.ascontiguousarray(counts_send) * spec.item_bytes,
            gather_rank_offsets=counts_to_displs(np.bincount(
                srcs, weights=counts, minlength=n_ranks).astype(INDEX_DTYPE)),
            scatter_rank_offsets=counts_to_displs(np.bincount(
                dests, weights=counts, minlength=n_ranks).astype(INDEX_DTYPE)),
        )

    return WorldExchange(
        variant=plan.variant,
        spec=spec,
        n_ranks=n_ranks,
        n_world_rows=n_keys,
        rank_bases=rank_bases,
        owned_rows=owned_rows,
        owned_offsets=owned_offsets,
        result_rows=result_rows,
        result_offsets=result_offsets,
        steps=schedule,
        programs=programs,
        owned_items_all=owned_items_all,
        result_items_all=result_items_all,
        result_sources_all=result_sources_all,
        compiled=None,
    )
