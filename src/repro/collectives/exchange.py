"""Compiled, array-native execution form of a collective plan.

A :class:`CollectivePlan` describes *what* moves (slots and payload keys); this
module compiles one rank's share of a plan into *how* it moves on dense numpy
buffers.  The compiled form replaces the item-keyed-dict data path: every value
a rank ever holds during one exchange — its owned items plus everything it
receives in any phase — is assigned a row of a dense *work array*, and every
message gets a precomputed gather (pack) or scatter (unpack) index into that
array.  Per-iteration packing is then a single fancy-index per phase
(``arena = work[gather]``) and unpacking its mirror (``work[scatter] = arena``),
with no per-item Python loops anywhere on the Start/Wait path.

The compilation is dtype-generic: an :class:`ExchangeSpec` carries the element
dtype and the number of components per item (``item_size`` — e.g. the
distribution set of a lattice-Boltzmann site, or the DOFs of a multi-component
unknown), and the work array has shape ``(n_rows, item_size)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.collectives.plan import (
    AGGREGATED_PHASES,
    CollectivePlan,
    Phase,
    PlannedMessage,
    Variant,
)
from repro.utils.arrays import INDEX_DTYPE
from repro.utils.errors import PlanError, ValidationError

#: Compile-time availability schedules, mirroring the *runtime* order of the
#: executor exactly: a ``("send", phase)`` step may only gather keys that are
#: owned or were registered by an earlier ``("recv", phase)`` step.  In the
#: aggregated protocol (Algorithms 5-6) the setup redistribution completes
#: inside ``start`` before the global phase packs, but the local and global
#: receives only land in ``wait`` — so the final redistribution is the only
#: phase allowed to forward what they delivered.
_DIRECT_SCHEDULE: Tuple[Tuple[str, Phase], ...] = (
    ("send", Phase.DIRECT), ("recv", Phase.DIRECT),
)
_AGGREGATED_SCHEDULE: Tuple[Tuple[str, Phase], ...] = (
    ("send", Phase.LOCAL),
    ("send", Phase.SETUP_REDIST),
    ("recv", Phase.SETUP_REDIST),
    ("send", Phase.GLOBAL),
    ("recv", Phase.LOCAL),
    ("recv", Phase.GLOBAL),
    ("send", Phase.FINAL_REDIST),
    ("recv", Phase.FINAL_REDIST),
)


@dataclass(frozen=True)
class ExchangeSpec:
    """Element type of an exchange: dtype plus components per item."""

    dtype: np.dtype = np.dtype(np.float64)
    item_size: int = 1

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(self, "item_size", int(self.item_size))
        if self.item_size < 1:
            raise ValidationError(f"item_size must be >= 1, got {self.item_size}")

    @property
    def item_bytes(self) -> int:
        """Bytes of one item (all components)."""
        return self.item_size * self.dtype.itemsize


@dataclass
class CompiledPhase:
    """One rank's compiled sends and receives for one phase.

    ``gather`` concatenates the work-array rows of every send message's payload
    in message order; message ``i`` packs rows
    ``gather[send_offsets[i]:send_offsets[i + 1]]`` and its wire buffer is the
    matching slice of the phase's contiguous send arena.  ``scatter`` is the
    mirror image for receives.
    """

    phase: Phase
    send_messages: List[PlannedMessage]
    recv_messages: List[PlannedMessage]
    gather: np.ndarray
    scatter: np.ndarray
    send_offsets: np.ndarray
    recv_offsets: np.ndarray


@dataclass
class CompiledExchange:
    """One rank's complete compiled exchange.

    ``owned_items`` fixes the caller-side input order: element ``i`` of the
    dense input array is the value of item ``owned_items[i]`` (rows
    ``[0, owned_items.size)`` of the work array).  ``result_rows`` gathers the
    output: item ``result_items[i]`` (sent by ``result_sources[i]``) is row
    ``result_rows[i]``.
    """

    rank: int
    variant: Variant
    spec: ExchangeSpec
    n_rows: int
    owned_items: np.ndarray
    result_items: np.ndarray
    result_sources: np.ndarray
    result_rows: np.ndarray
    phases: List[CompiledPhase] = field(default_factory=list)

    @property
    def n_owned(self) -> int:
        """Items the caller supplies per iteration."""
        return int(self.owned_items.size)

    @property
    def n_result(self) -> int:
        """Items handed back to the caller per iteration."""
        return int(self.result_items.size)


def _message_rows(message: PlannedMessage, rows: Dict[Tuple[int, int], int],
                  *, allow_new: bool) -> List[int]:
    """Work-array rows of a message's payload keys, in packing order."""
    out: List[int] = []
    for key in message.payload_keys:
        row = rows.get(key)
        if row is None:
            if not allow_new:
                raise PlanError(
                    f"phase-{message.phase.value} message {message.src}->"
                    f"{message.dest} packs origin {key[0]}, item {key[1]} which the "
                    "sending rank neither owns nor received in an earlier phase"
                )
            row = len(rows)
            rows[key] = row
        out.append(row)
    return out


def compile_exchange(plan: CollectivePlan, rank: int,
                     spec: ExchangeSpec | None = None) -> CompiledExchange:
    """Compile ``rank``'s share of ``plan`` into gather/scatter index arrays.

    The compilation walks the phases in execution order, resolving every send
    against the keys the rank holds so far (owned items first, then whatever
    earlier phases delivered); a send of an unobtainable key is a
    :class:`PlanError` at compile time rather than a runtime failure.
    """
    spec = spec or ExchangeSpec()
    pattern = plan.pattern

    # Rows [0, n_owned) are the rank's owned items in ascending-id order; that
    # order is the array API's input convention.
    send_map = pattern.send_map(rank)
    owned_ids = sorted({int(item) for items in send_map.values()
                        for item in items.tolist()})
    rows: Dict[Tuple[int, int], int] = {(rank, item): position
                                        for position, item in enumerate(owned_ids)}

    if plan.variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        order, schedule = (Phase.DIRECT,), _DIRECT_SCHEDULE
    else:
        order, schedule = AGGREGATED_PHASES, _AGGREGATED_SCHEDULE
    gathers: Dict[Phase, Tuple[List[int], List[int]]] = {}
    scatters: Dict[Phase, Tuple[List[int], List[int]]] = {}
    for side, phase in schedule:
        indices: List[int] = []
        offsets = [0]
        if side == "send":
            for message in plan.messages_from(rank, phase):
                indices.extend(_message_rows(message, rows, allow_new=False))
                offsets.append(len(indices))
            gathers[phase] = (indices, offsets)
        else:
            for message in plan.messages_to(rank, phase):
                indices.extend(_message_rows(message, rows, allow_new=True))
                offsets.append(len(indices))
            scatters[phase] = (indices, offsets)
    phases: List[CompiledPhase] = []
    for phase in order:
        gather, send_offsets = gathers[phase]
        scatter, recv_offsets = scatters[phase]
        phases.append(CompiledPhase(
            phase=phase,
            send_messages=plan.messages_from(rank, phase),
            recv_messages=plan.messages_to(rank, phase),
            gather=np.asarray(gather, dtype=INDEX_DTYPE),
            scatter=np.asarray(scatter, dtype=INDEX_DTYPE),
            send_offsets=np.asarray(send_offsets, dtype=INDEX_DTYPE),
            recv_offsets=np.asarray(recv_offsets, dtype=INDEX_DTYPE),
        ))

    # Output view: every item the pattern says this rank receives (including
    # self-sends) must have a row by now — either owned, or delivered by some
    # phase, or a self-delivery of the aggregation (the receive leader is the
    # final destination, so the key arrived with the global phase).
    expected: Dict[int, int] = {}
    for src, items in pattern.recv_map(rank).items():
        for item in items.tolist():
            expected[int(item)] = int(src)
    result_items = np.asarray(sorted(expected), dtype=INDEX_DTYPE)
    result_sources = np.asarray([expected[int(item)] for item in result_items],
                                dtype=INDEX_DTYPE)
    result_rows = np.empty(result_items.size, dtype=INDEX_DTYPE)
    for position, (item, src) in enumerate(zip(result_items.tolist(),
                                               result_sources.tolist())):
        row = rows.get((src, item))
        if row is None:
            raise PlanError(
                f"rank {rank} expects item {item} from rank {src} but no phase of "
                "the plan delivers it"
            )
        result_rows[position] = row

    return CompiledExchange(
        rank=rank,
        variant=plan.variant,
        spec=spec,
        n_rows=len(rows),
        owned_items=np.asarray(owned_ids, dtype=INDEX_DTYPE),
        result_items=result_items,
        result_sources=result_sources,
        result_rows=result_rows,
        phases=phases,
    )
