"""Content-addressed cache for collective plans and compiled world exchanges.

Setup at scale pays two distinct costs: *planning* (pattern → message
schedule) and *world compilation* (plan → concatenated gather/scatter/wire
programs).  Both are pure functions of content — a pattern's CSR columns, the
rank mapping, the variant/strategy, and the element spec — so drivers that
rebuild the same problem (the figure harness, repeated ``WorldVCycle``
setups, every warm re-run of a weak-scaling sweep) can reuse earlier results
instead of recompiling.

Two tiers share one content key:

* an **in-process LRU** (always on) keyed on the live objects —
  :class:`~repro.pattern.comm_pattern.CommPattern` hashes by content, the
  mapping contributes its placement token — serving repeated setups inside
  one driver process, and
* an optional **on-disk store** under ``REPRO_PLAN_CACHE=<dir>`` persisting
  pickled plans/worlds across processes and runs.  Entries are
  content-addressed by a SHA-256 digest of the full key, carry a format
  version, and are *verified on load*: a corrupted, truncated, or
  stale-format file is discarded with a :class:`PlanCacheWarning` and the
  caller recompiles — a cache can produce a miss, never a wrong result.

Cache hits are byte-identical to cold compiles (the golden cache tests pin
this) and a cached :class:`~repro.collectives.exchange.WorldExchange` can be
re-registered with any engine runtime — registration never mutates the world
program.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import warnings
from collections import OrderedDict
from typing import Any, Dict, Tuple

import numpy as np

#: Environment variable naming the on-disk cache directory (absent = no disk).
ENV_VAR = "REPRO_PLAN_CACHE"

#: Bump when the pickled layout of plans/worlds changes; older on-disk
#: entries are then discarded as stale instead of being unpickled blindly.
CACHE_FORMAT_VERSION = 1

#: Entries kept per in-process tier (plans and worlds count separately).
MEMORY_CACHE_SIZE = 128

_MAGIC = b"repro-plan-cache"


class PlanCacheWarning(UserWarning):
    """Structured warning for discarded (corrupted or stale) cache entries."""


class _LRUCache:
    """A tiny thread-safe LRU keyed on hashable content tuples."""

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_plan_lru = _LRUCache(MEMORY_CACHE_SIZE)
_world_lru = _LRUCache(MEMORY_CACHE_SIZE)
_disk_hits = 0
_disk_misses = 0


# -- content keys -----------------------------------------------------------------


def _strategy_token(strategy) -> str:
    """Stable string form of a balance strategy (enum value or repr)."""
    if strategy is None:
        return "none"
    value = getattr(strategy, "value", strategy)
    return str(value)


def mapping_token(mapping) -> Tuple:
    """Hashable content token of a :class:`RankMapping` placement.

    A mapping has no content ``__hash__`` of its own; its cache identity is
    the machine geometry plus the rank→core placement array — everything the
    planner's locality queries can observe.
    """
    machine = mapping.machine
    return (machine.name, machine.nodes, machine.sockets_per_node,
            machine.cores_per_socket, mapping.n_ranks, mapping.kind.value,
            mapping.region_kind, mapping.ranks_per_node,
            mapping.cores_array().tobytes())


def plan_key(pattern, mapping, variant, strategy) -> Tuple:
    """In-process cache key of a plan: pattern content + mapping + protocol.

    The unaggregated variants ignore the balance strategy, so it is
    normalised out of their key — ``standard`` plans built under different
    strategies are the same plan.
    """
    from repro.collectives.plan import Variant

    variant = Variant(variant)
    if variant in (Variant.STANDARD, Variant.POINT_TO_POINT):
        strategy = None
    return (pattern, mapping_token(mapping), variant.value,
            _strategy_token(strategy))


def world_key(plan, spec) -> Tuple | None:
    """In-process cache key of a compiled world exchange, or ``None``.

    Extends the plan's :func:`plan_key` token with the element spec —
    ``(dtype, item_size)`` changes the wire sizes — and the rank count
    (already implied by the pattern, kept explicit per the cache-key
    contract).  Plans without a ``cache_token`` (hand-built ``phases``
    dicts) are uncacheable: the inputs alone do not determine their message
    schedule, so serving a cached world for them could be wrong.
    """
    if plan.cache_token is None:
        return None
    return (plan.cache_token
            + (spec.dtype.str, int(spec.item_size), plan.pattern.n_ranks))


def _digest(kind: str, key: Tuple) -> str:
    """SHA-256 content digest of a cache key, stable across processes.

    ``hash()`` of the in-process key is salted per interpreter
    (``PYTHONHASHSEED``), so the on-disk address re-derives everything from
    raw bytes: the pattern's CSR columns and element meta, the mapping token,
    and the protocol/spec strings.
    """
    pattern = key[0]
    hasher = hashlib.sha256()
    hasher.update(_MAGIC)
    hasher.update(f":v{CACHE_FORMAT_VERSION}:{kind}".encode())
    src_offsets, dests, item_offsets, items = pattern.csr()
    for label, column in (("src_offsets", src_offsets), ("dests", dests),
                          ("item_offsets", item_offsets), ("items", items)):
        hasher.update(label.encode())
        hasher.update(np.ascontiguousarray(column).tobytes())
    hasher.update(f"{pattern.n_ranks}:{pattern.dtype.str}:"
                  f"{pattern.item_size}:{pattern.item_bytes}".encode())
    for part in key[1:]:
        if isinstance(part, tuple):
            for piece in part:
                hasher.update(repr(piece).encode()
                              if not isinstance(piece, bytes) else piece)
        else:
            hasher.update(repr(part).encode())
    return hasher.hexdigest()


# -- on-disk tier -----------------------------------------------------------------


def cache_dir() -> str | None:
    """The configured on-disk cache directory, or ``None`` when disabled."""
    directory = os.environ.get(ENV_VAR, "").strip()
    return directory or None


def _entry_path(directory: str, kind: str, digest: str) -> str:
    return os.path.join(directory, f"{kind}-{digest}.pkl")


def _discard(path: str, reason: str) -> None:
    """Drop a bad on-disk entry with a structured warning; never raise."""
    warnings.warn(
        f"discarding plan-cache entry {os.path.basename(path)}: {reason}",
        PlanCacheWarning, stacklevel=4)
    try:
        os.unlink(path)
    except OSError:
        pass


def _disk_load(kind: str, digest: str):
    """Load and verify one on-disk entry; ``None`` on miss or any defect."""
    global _disk_hits, _disk_misses
    directory = cache_dir()
    if directory is None:
        return None
    path = _entry_path(directory, kind, digest)
    if not os.path.exists(path):
        _disk_misses += 1
        return None
    try:
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
    except Exception as exc:  # noqa: BLE001 - any unpickling defect is a miss
        _discard(path, f"unreadable ({type(exc).__name__}: {exc})")
        _disk_misses += 1
        return None
    if not isinstance(envelope, dict) \
            or envelope.get("format") != CACHE_FORMAT_VERSION:
        _discard(path, "stale cache format")
        _disk_misses += 1
        return None
    if envelope.get("kind") != kind or envelope.get("digest") != digest:
        _discard(path, "content digest mismatch")
        _disk_misses += 1
        return None
    _disk_hits += 1
    return envelope.get("payload")


def _disk_store(kind: str, digest: str, payload) -> None:
    """Persist one entry (atomic rename); failures degrade to no caching."""
    directory = cache_dir()
    if directory is None:
        return
    try:
        os.makedirs(directory, exist_ok=True)
        path = _entry_path(directory, kind, digest)
        # Unique per writer: concurrent simulated ranks (threads) may store
        # the same digest, and a shared staging path would let one writer's
        # rename snatch the file out from under another's.
        staging = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(staging, "wb") as handle:
            pickle.dump({"format": CACHE_FORMAT_VERSION, "kind": kind,
                         "digest": digest, "payload": payload}, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(staging, path)
    except OSError as exc:
        warnings.warn(f"plan cache write failed: {exc}", PlanCacheWarning,
                      stacklevel=4)


# -- public fetch/store API --------------------------------------------------------


def fetch_plan(pattern, mapping, variant, strategy):
    """A cached plan for the key, or ``None`` (memory first, then disk)."""
    key = plan_key(pattern, mapping, variant, strategy)
    plan = _plan_lru.get(key)
    if plan is not None:
        return plan
    plan = _disk_load("plan", _digest("plan", key))
    if plan is not None:
        _plan_lru.put(key, plan)
    return plan


def store_plan(plan) -> None:
    """Cache a freshly built plan in both tiers."""
    key = plan_key(plan.pattern, plan.mapping, plan.variant, plan.strategy)
    _plan_lru.put(key, plan)
    _disk_store("plan", _digest("plan", key), plan)


def fetch_world(plan, spec):
    """A cached world exchange for ``(plan key, spec)``, or ``None``."""
    key = world_key(plan, spec)
    if key is None:
        return None
    world = _world_lru.get(key)
    if world is not None:
        return world
    world = _disk_load("world", _digest("world", key))
    if world is not None:
        _world_lru.put(key, world)
    return world


def store_world(plan, spec, world) -> None:
    """Cache a freshly compiled world exchange in both tiers.

    Only worlds without the per-rank ``compiled`` list are persisted to disk
    (the world-level compiler never builds it); reference-compiled worlds
    drag the whole plan object graph into the pickle, so they stay
    memory-only.
    """
    key = world_key(plan, spec)
    if key is None:
        return
    _world_lru.put(key, world)
    if world.compiled is None:
        _disk_store("world", _digest("world", key), world)


def clear_plan_cache(*, disk: bool = False) -> None:
    """Reset the in-process tiers (and optionally delete the disk entries)."""
    global _disk_hits, _disk_misses
    _plan_lru.clear()
    _world_lru.clear()
    _disk_hits = 0
    _disk_misses = 0
    directory = cache_dir()
    if disk and directory and os.path.isdir(directory):
        for name in os.listdir(directory):
            if name.endswith(".pkl") and "-" in name:
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass


def plan_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of every tier (for tests and benchmarks)."""
    return {
        "plan_memory_hits": _plan_lru.hits,
        "plan_memory_misses": _plan_lru.misses,
        "world_memory_hits": _world_lru.hits,
        "world_memory_misses": _world_lru.misses,
        "disk_hits": _disk_hits,
        "disk_misses": _disk_misses,
    }
