"""Duplicate-value removal (Section 3.3 of the paper).

The persistent neighborhood API only describes *how much* data goes to each
neighbor; it does not say *which values*, so an implementation cannot tell that
two destinations are being sent the same value.  The paper's proposed extension
passes per-value indices, which lets the aggregated inter-region message carry
each ``(origin, item)`` value once no matter how many final destinations need
it.  The helpers here perform that deduplication on columnar slot tables (a
single lexsort-unique) and quantify how much payload it saves; the original
slot-list entry points remain as thin wrappers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.collectives.plan import Slot, SlotTable
from repro.utils.arrays import INDEX_DTYPE, run_starts_mask


def unique_pairs_first_appearance(origins: np.ndarray, items: np.ndarray
                                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Unique ``(origin, item)`` pairs in first-appearance order, columnar.

    The order is deterministic so that the sending and receiving sides of a
    deduplicated message pack and unpack values identically.  One lexsort
    finds the duplicate groups; ``np.minimum.reduceat`` recovers the first
    appearance of each group, replacing the seed's per-slot dict loop.
    """
    origins = np.asarray(origins, dtype=INDEX_DTYPE)
    items = np.asarray(items, dtype=INDEX_DTYPE)
    n = origins.size
    if n == 0:
        return origins[:0], items[:0]
    order = np.lexsort((items, origins))
    new_group = run_starts_mask(origins[order], items[order])
    firsts = np.minimum.reduceat(order, np.flatnonzero(new_group))
    firsts.sort()
    return origins[firsts], items[firsts]


def unique_pairs_segmented(segments: np.ndarray, origins: np.ndarray,
                           items: np.ndarray, n_segments: int
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment first-appearance unique pairs in one lexsort.

    ``segments`` must be non-decreasing (rows of segment ``k`` contiguous), as
    produced by concatenating per-message payloads.  Returns the deduplicated
    ``(origins, items)`` columns — segment blocks in order, first-appearance
    order within each block — plus the per-segment unique counts.  This batches
    the payload deduplication of every message of a phase into one pass.
    """
    n = origins.size
    counts = np.zeros(n_segments, dtype=INDEX_DTYPE)
    if n == 0:
        return origins[:0], items[:0], counts
    order = np.lexsort((items, origins, segments))
    new_group = run_starts_mask(segments[order], origins[order], items[order])
    firsts = np.minimum.reduceat(order, np.flatnonzero(new_group))
    firsts.sort()
    counts += np.bincount(segments[firsts], minlength=n_segments)
    return origins[firsts], items[firsts], counts


def _pair_columns(slots) -> Tuple[np.ndarray, np.ndarray]:
    """``(origins, items)`` columns of a SlotTable or slot sequence."""
    if isinstance(slots, SlotTable):
        return slots.origin, slots.item
    slots = list(slots)
    if not slots:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return empty, empty
    triples = np.asarray(slots, dtype=INDEX_DTYPE)
    return triples[:, 0], triples[:, 1]


def unique_payload_keys(slots: Sequence[Slot] | SlotTable) -> List[Tuple[int, int]]:
    """Unique ``(origin, item)`` pairs of ``slots`` in first-appearance order."""
    origins, items = _pair_columns(slots)
    origins, items = unique_pairs_first_appearance(origins, items)
    return list(zip(origins.tolist(), items.tolist()))


def duplicate_item_count(slots: Sequence[Slot] | SlotTable) -> int:
    """Number of payload values saved by deduplicating ``slots``."""
    origins, items = _pair_columns(slots)
    unique_origins, _ = unique_pairs_first_appearance(origins, items)
    return int(origins.size - unique_origins.size)


def group_slots_by_final_dest(slots: Iterable[Slot] | SlotTable) -> Dict[int, List[Slot]]:
    """Partition slots by their final destination rank (deterministic order)."""
    if isinstance(slots, SlotTable):
        order = np.argsort(slots.final_dest, kind="stable")
        dests = slots.final_dest[order]
        groups: Dict[int, List[Slot]] = {}
        bounds = np.append(np.flatnonzero(run_starts_mask(dests)), dests.size)
        for begin, end in zip(bounds[:-1], bounds[1:]):
            groups[int(dests[begin])] = slots.take(order[begin:end]).to_slots()
        return groups
    groups = {}
    for slot in slots:
        groups.setdefault(slot.final_dest, []).append(slot)
    return {dest: groups[dest] for dest in sorted(groups)}


def dedup_savings_fraction(slots: Sequence[Slot] | SlotTable) -> float:
    """Fraction of the payload removed by deduplication (0 when nothing saved)."""
    if not len(slots):
        return 0.0
    return duplicate_item_count(slots) / len(slots)
