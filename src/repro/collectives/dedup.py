"""Duplicate-value removal (Section 3.3 of the paper).

The persistent neighborhood API only describes *how much* data goes to each
neighbor; it does not say *which values*, so an implementation cannot tell that
two destinations are being sent the same value.  The paper's proposed extension
passes per-value indices, which lets the aggregated inter-region message carry
each ``(origin, item)`` value once no matter how many final destinations need
it.  The helpers here perform that deduplication on slot lists and quantify how
much payload it saves.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.collectives.plan import Slot


def unique_payload_keys(slots: Sequence[Slot]) -> List[Tuple[int, int]]:
    """Unique ``(origin, item)`` pairs of ``slots`` in first-appearance order.

    The order is deterministic so that the sending and receiving sides of a
    deduplicated message pack and unpack values identically.
    """
    seen: Dict[Tuple[int, int], None] = {}
    for slot in slots:
        seen.setdefault((slot.origin, slot.item), None)
    return list(seen.keys())


def duplicate_item_count(slots: Sequence[Slot]) -> int:
    """Number of payload values saved by deduplicating ``slots``."""
    return len(slots) - len(unique_payload_keys(slots))


def group_slots_by_final_dest(slots: Iterable[Slot]) -> Dict[int, List[Slot]]:
    """Partition slots by their final destination rank (deterministic order)."""
    groups: Dict[int, List[Slot]] = {}
    for slot in slots:
        groups.setdefault(slot.final_dest, []).append(slot)
    return {dest: groups[dest] for dest in sorted(groups)}


def dedup_savings_fraction(slots: Sequence[Slot]) -> float:
    """Fraction of the payload removed by deduplication (0 when nothing saved)."""
    if not slots:
        return 0.0
    return duplicate_item_count(slots) / len(slots)
