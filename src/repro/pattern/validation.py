"""Structural validation of communication patterns.

The planner assumes a handful of invariants (ranks in range, no empty item
lists, item ids unique per (src, dest) edge when deduplication is requested).
:func:`validate_pattern` checks them once up front so that plan construction
can stay free of defensive code.
"""

from __future__ import annotations

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.utils.errors import ValidationError


def validate_pattern(pattern: CommPattern, *, require_unique_items: bool = False,
                     allow_self_messages: bool = True) -> None:
    """Raise :class:`ValidationError` if ``pattern`` violates structural invariants.

    Parameters
    ----------
    require_unique_items:
        When True, the item ids on every (src, dest) edge must be unique —
        duplicates *within one message* would make the deduplicating collective
        ambiguous.  (Duplicates *across* destinations are expected; removing
        them is the whole point of the fully-optimized variant.)
    allow_self_messages:
        When False, edges with ``src == dest`` are rejected.
    """
    n = pattern.n_ranks
    for src, dest, items in pattern.edges():
        if not (0 <= src < n) or not (0 <= dest < n):
            raise ValidationError(f"edge ({src}, {dest}) outside communicator of size {n}")
        if not allow_self_messages and src == dest:
            raise ValidationError(f"self message on rank {src} not allowed here")
        if items.size == 0:
            raise ValidationError(f"edge ({src}, {dest}) carries no items")
        if items.min() < 0:
            raise ValidationError(f"edge ({src}, {dest}) has negative item ids")
        if require_unique_items and np.unique(items).size != items.size:
            raise ValidationError(
                f"edge ({src}, {dest}) repeats item ids within a single message"
            )


def patterns_equivalent(a: CommPattern, b: CommPattern) -> bool:
    """True when two patterns deliver the same multiset of items per (src, dest).

    Unlike ``CommPattern.__eq__`` this ignores the order of items within a
    message, which is the right notion of equivalence after a round-trip
    through transpose or serialization.
    """
    if a.n_ranks != b.n_ranks or a.item_bytes != b.item_bytes:
        return False
    edges_a = {(s, d): tuple(sorted(items.tolist())) for s, d, items in a.edges()}
    edges_b = {(s, d): tuple(sorted(items.tolist())) for s, d, items in b.edges()}
    return edges_a == edges_b
