"""Pattern statistics: the quantities the paper's Figures 8-10 report.

For the *standard* collective these statistics come straight from the pattern
(one message per (src, dest) pair).  For the aggregated variants they come from
the planner's phase plans; :mod:`repro.collectives.planner` re-uses the same
:class:`PatternStatistics` container so the experiment code can treat all
variants uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.pattern.comm_pattern import CommPattern
from repro.topology.machine import Locality
from repro.topology.mapping import RankMapping
from repro.utils.errors import ValidationError


@dataclass
class PatternStatistics:
    """Per-rank message counts and byte counts, split local vs inter-region.

    "Local" means source and destination share an aggregation region (the
    paper's intra-region messages); "global" means they do not.
    """

    n_ranks: int
    local_messages: np.ndarray = field(default=None)
    global_messages: np.ndarray = field(default=None)
    local_bytes: np.ndarray = field(default=None)
    global_bytes: np.ndarray = field(default=None)

    def __post_init__(self):
        for name in ("local_messages", "global_messages", "local_bytes", "global_bytes"):
            value = getattr(self, name)
            if value is None:
                value = np.zeros(self.n_ranks, dtype=np.int64)
            else:
                value = np.asarray(value, dtype=np.int64)
                if value.shape != (self.n_ranks,):
                    raise ValidationError(f"{name} must have shape ({self.n_ranks},)")
            setattr(self, name, value)

    # -- the numbers the figures plot ------------------------------------------

    @property
    def max_local_messages(self) -> int:
        """Figure 8: max number of intra-region messages sent by any process."""
        return int(self.local_messages.max(initial=0))

    @property
    def max_global_messages(self) -> int:
        """Figure 9: max number of inter-region messages sent by any process."""
        return int(self.global_messages.max(initial=0))

    @property
    def max_local_bytes(self) -> int:
        """Max intra-region bytes sent by any process."""
        return int(self.local_bytes.max(initial=0))

    @property
    def max_global_bytes(self) -> int:
        """Figure 10: max inter-region bytes sent by any process."""
        return int(self.global_bytes.max(initial=0))

    @property
    def total_local_messages(self) -> int:
        """Total intra-region message count."""
        return int(self.local_messages.sum())

    @property
    def total_global_messages(self) -> int:
        """Total inter-region message count."""
        return int(self.global_messages.sum())

    @property
    def total_global_bytes(self) -> int:
        """Total inter-region byte count."""
        return int(self.global_bytes.sum())

    def add_message(self, src: int, is_local: bool, nbytes: int) -> None:
        """Account one message sent by ``src``."""
        if src < 0 or src >= self.n_ranks:
            raise ValidationError(f"rank {src} out of range")
        if is_local:
            self.local_messages[src] += 1
            self.local_bytes[src] += int(nbytes)
        else:
            self.global_messages[src] += 1
            self.global_bytes[src] += int(nbytes)

    def add_messages(self, srcs: np.ndarray, is_local_mask: np.ndarray,
                     nbytes: np.ndarray) -> None:
        """Bulk-account one message per entry of the parallel input arrays.

        ``srcs[k]`` sent ``nbytes[k]`` bytes; ``is_local_mask[k]`` says whether
        the message stayed inside its region.  The accounting is two
        ``np.bincount`` passes per locality class — no per-message Python loop.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        is_local_mask = np.asarray(is_local_mask, dtype=bool)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        if not (srcs.shape == is_local_mask.shape == nbytes.shape):
            raise ValidationError("add_messages arrays must have matching shapes")
        if srcs.size == 0:
            return
        if int(srcs.min()) < 0 or int(srcs.max()) >= self.n_ranks:
            raise ValidationError("rank out of range")
        for mask, messages, byte_totals in (
                (is_local_mask, self.local_messages, self.local_bytes),
                (~is_local_mask, self.global_messages, self.global_bytes)):
            if not mask.any():
                continue
            selected = srcs[mask]
            messages += np.bincount(selected, minlength=self.n_ranks)
            byte_totals += np.bincount(
                selected, weights=nbytes[mask], minlength=self.n_ranks
            ).astype(np.int64)

    def merged_with(self, other: "PatternStatistics") -> "PatternStatistics":
        """Element-wise sum of two statistics objects (e.g. across phases)."""
        if other.n_ranks != self.n_ranks:
            raise ValidationError("cannot merge statistics of different sizes")
        return PatternStatistics(
            n_ranks=self.n_ranks,
            local_messages=self.local_messages + other.local_messages,
            global_messages=self.global_messages + other.global_messages,
            local_bytes=self.local_bytes + other.local_bytes,
            global_bytes=self.global_bytes + other.global_bytes,
        )

    def as_dict(self) -> Dict[str, int]:
        """Summary dictionary used by reports and EXPERIMENTS.md tables."""
        return {
            "max_local_messages": self.max_local_messages,
            "max_global_messages": self.max_global_messages,
            "max_local_bytes": self.max_local_bytes,
            "max_global_bytes": self.max_global_bytes,
            "total_local_messages": self.total_local_messages,
            "total_global_messages": self.total_global_messages,
            "total_global_bytes": self.total_global_bytes,
        }


def _edge_columns(pattern: CommPattern):
    """Per-edge ``(srcs, dests, item_counts)`` arrays of a pattern.

    Straight off the CSR storage: the destination column is the stored array
    and the counts are one ``diff`` over the item offsets.
    """
    _, dests, _, _ = pattern.csr()
    return pattern.edge_sources(), dests, pattern.edge_item_counts()


def pattern_statistics(pattern: CommPattern, mapping: RankMapping) -> PatternStatistics:
    """Statistics of the *standard* (unaggregated) communication of ``pattern``."""
    if mapping.n_ranks < pattern.n_ranks:
        raise ValidationError(
            f"mapping covers {mapping.n_ranks} ranks but pattern has {pattern.n_ranks}"
        )
    stats = PatternStatistics(n_ranks=pattern.n_ranks)
    srcs, dests, counts = _edge_columns(pattern)
    off_rank = srcs != dests
    if not off_rank.any():
        return stats
    srcs, dests, counts = srcs[off_rank], dests[off_rank], counts[off_rank]
    stats.add_messages(srcs, mapping.same_region_many(srcs, dests),
                       counts * pattern.item_bytes)
    return stats


def locality_message_counts(pattern: CommPattern,
                            mapping: RankMapping) -> Dict[Locality, int]:
    """Total message counts split by full locality class (not just local/global)."""
    counts: Dict[Locality, int] = {loc: 0 for loc in Locality}
    srcs, dests, _ = _edge_columns(pattern)
    for locality in mapping.locality_many(srcs, dests):
        counts[locality] += 1
    return counts


def locality_byte_counts(pattern: CommPattern,
                         mapping: RankMapping) -> Dict[Locality, int]:
    """Total byte counts split by full locality class."""
    counts: Dict[Locality, int] = {loc: 0 for loc in Locality}
    srcs, dests, item_counts = _edge_columns(pattern)
    nbytes = item_counts * pattern.item_bytes
    for locality, edge_bytes in zip(mapping.locality_many(srcs, dests),
                                    nbytes.tolist()):
        counts[locality] += edge_bytes
    return counts


def average_neighbors(pattern: CommPattern, ranks: Iterable[int] | None = None) -> float:
    """Average out-degree over the given ranks (default: all ranks)."""
    if ranks is None:
        ranks = range(pattern.n_ranks)
    ranks = list(ranks)
    if not ranks:
        return 0.0
    return float(np.mean([len(pattern.send_ranks(r)) for r in ranks]))
